//! Workspace umbrella crate. The library is intentionally empty: this
//! package exists to own the cross-crate integration tests in `tests/` and
//! the runnable walkthroughs in `examples/`. The actual functionality
//! lives in the `crates/` members (see the README for the map).
