//! Acceptance tests for the `iostore` persistence layer (ISSUE 3):
//!
//! - restarting the service with the same `--state-dir` answers a
//!   previously-seen batch with **zero** LLM calls;
//! - a snapshot-loaded `VectorIndex` produces **byte-identical** diagnoses
//!   to a freshly built one;
//! - a corpus or embedder-config change invalidates the snapshot and
//!   triggers a rebuild instead of silently serving stale retrievals.

use ioagent_core::{AgentConfig, IndexProvenance, IoAgent, IvfParams, Retriever, Sq8Params};
use ioagentd::{DiagnosisService, JobRequest, ServiceConfig};
use simllm::SimLlm;
use std::path::PathBuf;
use std::sync::Arc;
use tracebench::TraceBench;

/// Unique self-cleaning temp directory (no tempfile crate offline).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("persistence-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn jobs(suite: &TraceBench, n: usize) -> Vec<JobRequest> {
    suite
        .entries
        .iter()
        .take(n)
        .map(|e| JobRequest::new(e.spec.id, e.trace.clone(), "gpt-4o-mini"))
        .collect()
}

#[test]
fn restarted_service_answers_previous_batch_with_zero_llm_calls() {
    let tmp = TempDir::new("restart");
    let suite = TraceBench::generate();

    // Generation 1: fresh state dir, every job does real work.
    let first_results = {
        let service = DiagnosisService::start(ServiceConfig::with_workers(2).state_dir(&tmp.0));
        assert!(service.persistence_active());
        let results = service.run_batch(jobs(&suite, 3)).unwrap();
        assert!(results.iter().all(|r| !r.cached));
        assert!(results.iter().all(|r| r.metrics.llm_calls > 0));
        let stats = service.stats();
        assert_eq!(stats.cache_misses, 3);
        assert_eq!(stats.persisted_entries, 3);
        assert!(stats.journal_bytes > 0);
        service.shutdown();
        results
    };

    // Generation 2: a brand-new process-equivalent service over the same
    // state dir. The knowledge index loads from the snapshot and the
    // repeat batch is answered entirely from the journal.
    let service = DiagnosisService::start(ServiceConfig::with_workers(2).state_dir(&tmp.0));
    assert_eq!(service.index_provenance(), Some(&IndexProvenance::Snapshot));
    let repeat = service.run_batch(jobs(&suite, 3)).unwrap();
    let total_calls: usize = repeat.iter().map(|r| r.metrics.llm_calls).sum();
    assert_eq!(
        total_calls, 0,
        "restart must serve the repeat batch for free"
    );
    assert!(repeat.iter().all(|r| r.cached));
    for (a, b) in first_results.iter().zip(&repeat) {
        assert_eq!(a.diagnosis, b.diagnosis, "persisted diagnosis must match");
    }
    let stats = service.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (3, 0));
    service.shutdown();
}

#[test]
fn snapshot_loaded_index_diagnoses_byte_identically() {
    let tmp = TempDir::new("snapshot-identical");
    let suite = TraceBench::generate();
    let state = iostore::StateDir::new(&tmp.0).unwrap();

    let (fresh, provenance) = Retriever::build_or_load(&state);
    assert!(matches!(provenance, IndexProvenance::Rebuilt(_)));
    let (loaded, provenance) = Retriever::build_or_load(&state);
    assert_eq!(provenance, IndexProvenance::Snapshot);

    let fresh = Arc::new(fresh);
    let loaded = Arc::new(loaded);
    for entry in suite.entries.iter().take(3) {
        let model_a = SimLlm::new("gpt-4o");
        let agent_a =
            IoAgent::with_shared_retriever(&model_a, AgentConfig::default(), Arc::clone(&fresh));
        let model_b = SimLlm::new("gpt-4o");
        let agent_b =
            IoAgent::with_shared_retriever(&model_b, AgentConfig::default(), Arc::clone(&loaded));
        let a = agent_a.diagnose(&entry.trace);
        let b = agent_b.diagnose(&entry.trace);
        assert_eq!(
            a, b,
            "trace {}: snapshot-loaded index must not change output",
            entry.spec.id
        );
        assert_eq!(
            model_a.usage().calls,
            model_b.usage().calls,
            "identical call pattern expected"
        );
    }
}

#[test]
fn corpus_change_invalidates_snapshot_and_rebuilds() {
    let tmp = TempDir::new("corpus-invalidation");
    let state = iostore::StateDir::new(&tmp.0).unwrap();

    // Write a snapshot that claims a different corpus hash — what a
    // corpus edit between deployments looks like from the new binary.
    let built = Retriever::build();
    iostore::save_index(
        &state.index_path(),
        built.index(),
        knowledge::corpus_hash().wrapping_add(1),
    )
    .unwrap();

    let (_retriever, provenance) = Retriever::build_or_load(&state);
    let IndexProvenance::Rebuilt(reason) = provenance else {
        panic!("stale snapshot must trigger a rebuild");
    };
    assert!(reason.contains("corpus"), "reason: {reason}");

    // The rebuild re-saved a valid snapshot.
    let (_retriever, provenance) = Retriever::build_or_load(&state);
    assert_eq!(provenance, IndexProvenance::Snapshot);
}

#[test]
fn embedder_config_change_invalidates_snapshot() {
    let tmp = TempDir::new("embedder-invalidation");
    let state = iostore::StateDir::new(&tmp.0).unwrap();
    let built = Retriever::build();
    iostore::save_index(&state.index_path(), built.index(), knowledge::corpus_hash()).unwrap();

    // The snapshot is valid for the current embedder…
    let spec = Retriever::index_spec();
    assert!(iostore::load_index(&state.index_path(), &spec).is_ok());

    // …but a binary compiled with different retrieval hyper-parameters
    // must reject it rather than serve vectors from another geometry.
    let mut other = Retriever::index_spec();
    other.embedder_dim = 512;
    assert!(matches!(
        iostore::load_index(&state.index_path(), &other).unwrap_err(),
        iostore::SnapshotError::ConfigMismatch(_)
    ));
    let mut other = Retriever::index_spec();
    other.chunk_size = 256;
    assert!(matches!(
        iostore::load_index(&state.index_path(), &other).unwrap_err(),
        iostore::SnapshotError::ConfigMismatch(_)
    ));
}

#[test]
fn journal_survives_torn_tail_across_service_generations() {
    let tmp = TempDir::new("torn-service");
    let suite = TraceBench::generate();

    let service = DiagnosisService::start(ServiceConfig::with_workers(1).state_dir(&tmp.0));
    service.run_batch(jobs(&suite, 2)).unwrap();
    service.shutdown();

    // Tear the journal mid-record, as a crash during append would. Byte
    // slicing on purpose: a real torn write does not respect UTF-8
    // character boundaries, and the journal must tolerate that too.
    let journal = tmp.0.join(iostore::RESULTS_FILE);
    let raw = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &raw[..raw.len() - 30]).unwrap();

    // The next generation starts, keeps the intact record, and re-runs
    // only the torn one.
    let service = DiagnosisService::start(ServiceConfig::with_workers(1).state_dir(&tmp.0));
    assert!(service.persistence_active());
    let results = service.run_batch(jobs(&suite, 2)).unwrap();
    let cached = results.iter().filter(|r| r.cached).count();
    assert_eq!(
        cached, 1,
        "the un-torn record must still be served from disk"
    );
    service.shutdown();
}

/// ISSUE 4: a snapshot written **before** the arena rebuild (the seed-era
/// one-`Vec<f32>`-per-entry engine) must load into the new flat-arena
/// representation without a rebuild and diagnose byte-identically.
///
/// The on-disk layout did not change — same header, same
/// `format_version: 1`, same hex-encoded vectors — so a pre-existing
/// snapshot is reproduced here by writing the v1 format by hand (the
/// literal line shapes the old writer emitted) rather than through
/// today's `save_index`.
#[test]
fn pre_existing_snapshot_loads_into_the_arena_without_rebuild() {
    use std::fmt::Write as _;

    let tmp = TempDir::new("pre-arena-snapshot");
    let state = iostore::StateDir::new(&tmp.0).unwrap();
    let suite = TraceBench::generate();

    // What the old binary would have serialised: the same entries and
    // bit-exact vectors the corpus index holds.
    let built = Retriever::build();
    let ix = built.index();
    let corpus_hash = knowledge::corpus_hash();
    let escape = |s: &str| {
        // Minimal JSON string escaping for the fields this corpus uses.
        let mut out = String::new();
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    };
    let mut raw = format!(
        "{{\"chunk_size\":{},\"corpus_hash\":\"0x{:016x}\",\"embedder_dim\":{},\
         \"entries\":{},\"format_version\":1,\"magic\":\"ioagent-index\",\"overlap\":{}}}\n",
        ix.chunk_size(),
        corpus_hash,
        ix.embedder().dim,
        ix.len(),
        ix.overlap(),
    );
    for (i, entry) in ix.entries().iter().enumerate() {
        let mut hex = String::with_capacity(ix.embedder().dim * 8);
        for lane in ix.vector(i) {
            let _ = write!(hex, "{:08x}", lane.to_bits());
        }
        let _ = writeln!(
            raw,
            "{{\"chunk_no\":{},\"citation\":\"{}\",\"doc_id\":\"{}\",\"text\":\"{}\",\"vector\":\"{}\"}}",
            entry.chunk_no,
            escape(&entry.citation),
            escape(&entry.doc_id),
            escape(&entry.text),
            hex,
        );
    }
    std::fs::write(state.index_path(), raw).unwrap();

    // The new engine serves it without rebuilding…
    let (loaded, provenance) = Retriever::build_or_load(&state);
    assert_eq!(
        provenance,
        IndexProvenance::Snapshot,
        "pre-arena snapshot must load, not trigger a rebuild"
    );

    // …into the arena representation, bit-identical to the fresh build.
    let loaded_ix = loaded.index();
    assert_eq!(loaded_ix.len(), ix.len());
    assert_eq!(loaded_ix.arena().len(), loaded_ix.len());
    assert_eq!(loaded_ix.arena().dim(), ix.embedder().dim);
    for i in 0..ix.len() {
        let a: Vec<u32> = ix.vector(i).iter().map(|f| f.to_bits()).collect();
        let b: Vec<u32> = loaded_ix.vector(i).iter().map(|f| f.to_bits()).collect();
        assert_eq!(a, b, "entry {i} vector changed across the format boundary");
    }

    // …including when the loading deployment asks for IVF: the v1
    // snapshot (which predates clustering records) is served, lazily
    // clustered — no rebuild, no re-embedding — and re-saved as v2 so
    // the next start skips the clustering too (ISSUE 5).
    let ivf_params = IvfParams {
        clusters: 8,
        nprobe: 8,
    };
    let (probed, provenance) = Retriever::build_or_load_with(&state, Some(ivf_params));
    assert_eq!(
        provenance,
        IndexProvenance::Snapshot,
        "v1 snapshot + IVF config must lazily cluster, not rebuild"
    );
    let clustered = probed
        .index()
        .ivf()
        .expect("lazy clustering must attach IVF");
    assert_eq!(clustered.clusters(), 8);
    let (resumed, provenance) = Retriever::build_or_load_with(&state, Some(ivf_params));
    assert_eq!(provenance, IndexProvenance::Snapshot);
    assert_eq!(
        resumed
            .index()
            .ivf()
            .expect("v2 re-save carries the clustering")
            .assignments(),
        clustered.assignments(),
        "second start must reuse the persisted clustering byte-identically"
    );
    // Exact-mode probing (nprobe = clusters) over the lazily-clustered
    // index retrieves byte-identically to the flat index.
    let q = "small writes on a single stripe";
    let flat_hits: Vec<(u32, usize)> = ix
        .search(q, 15)
        .iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect();
    let probed_hits: Vec<(u32, usize)> = probed
        .index()
        .search(q, 15)
        .iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect();
    assert_eq!(flat_hits, probed_hits);

    // …and diagnoses byte-identically to the fresh build.
    let fresh = Arc::new(built);
    let loaded = Arc::new(loaded);
    for entry in suite.entries.iter().take(2) {
        let model_a = SimLlm::new("gpt-4o");
        let agent_a =
            IoAgent::with_shared_retriever(&model_a, AgentConfig::default(), Arc::clone(&fresh));
        let model_b = SimLlm::new("gpt-4o");
        let agent_b =
            IoAgent::with_shared_retriever(&model_b, AgentConfig::default(), Arc::clone(&loaded));
        assert_eq!(
            agent_a.diagnose(&entry.trace),
            agent_b.diagnose(&entry.trace),
            "trace {}: pre-arena snapshot changed a diagnosis",
            entry.spec.id
        );
    }
}

/// ISSUE 10: a snapshot written by the **v2** (clustered, pre-SQ8) writer
/// must load into the v3 engine — no rebuild, no re-clustering — and
/// diagnose byte-identically. When the loading deployment also asks for
/// SQ8, the codebook is lazily trained from the snapshot's vectors and
/// the file is upgraded to v3 so the next start loads it directly.
///
/// Like the v1 test above, the fixture is written by hand in the literal
/// line shapes the v2 writer emitted (header, external-order entry lines,
/// one trailing IVF record) rather than through today's `save_index`.
#[test]
fn v2_snapshot_loads_into_the_v3_engine_and_upgrades_lazily() {
    use std::fmt::Write as _;

    let tmp = TempDir::new("v2-snapshot");
    let state = iostore::StateDir::new(&tmp.0).unwrap();
    let suite = TraceBench::generate();

    // What the v2 binary would have serialised: the corpus index clustered
    // at the deployment's pinned configuration. Entry vectors are written
    // in *external* row order — the cluster-major permutation is a v3
    // detail the v2 writer knew nothing about.
    let flat = Retriever::build();
    let flat_ix = flat.index();
    let ivf_params = IvfParams {
        clusters: 8,
        nprobe: 8,
    };
    let mut clustered_ix = flat_ix.clone();
    clustered_ix.enable_ivf(ivf_params.clusters, ivf_params.nprobe);
    let ivf = clustered_ix.ivf().unwrap();
    let hex_u32s = |values: &[u32]| {
        let mut hex = String::with_capacity(values.len() * 8);
        for v in values {
            let _ = write!(hex, "{v:08x}");
        }
        hex
    };
    let hex_f32s = |values: &[f32]| {
        let mut hex = String::with_capacity(values.len() * 8);
        for v in values {
            let _ = write!(hex, "{:08x}", v.to_bits());
        }
        hex
    };
    let mut raw = format!(
        "{{\"chunk_size\":{},\"corpus_hash\":\"0x{:016x}\",\"embedder_dim\":{},\
         \"entries\":{},\"format_version\":2,\"magic\":\"ioagent-index\",\"overlap\":{}}}\n",
        flat_ix.chunk_size(),
        knowledge::corpus_hash(),
        flat_ix.embedder().dim,
        flat_ix.len(),
        flat_ix.overlap(),
    );
    for (i, entry) in flat_ix.entries().iter().enumerate() {
        let _ = writeln!(
            raw,
            "{{\"chunk_no\":{},\"citation\":\"{}\",\"doc_id\":\"{}\",\"text\":\"{}\",\"vector\":\"{}\"}}",
            entry.chunk_no,
            entry.citation,
            entry.doc_id,
            entry.text,
            hex_f32s(flat_ix.vector(i)),
        );
    }
    let _ = writeln!(
        raw,
        "{{\"ivf_assignments\":\"{}\",\"ivf_centroids\":\"{}\",\"ivf_clusters\":{},\"ivf_nprobe\":{}}}",
        hex_u32s(ivf.assignments()),
        hex_f32s(ivf.centroids()),
        ivf.clusters(),
        ivf.nprobe(),
    );
    std::fs::write(state.index_path(), raw).unwrap();

    // A v3 deployment asking for IVF + SQ8 serves the v2 snapshot: the
    // clustering is reused byte-identically, only the codebook is trained.
    let sq8_params = Sq8Params { rerank_pool: 32 };
    let (loaded, provenance) =
        Retriever::build_or_load_tuned(&state, Some(ivf_params), Some(sq8_params));
    assert_eq!(
        provenance,
        IndexProvenance::Snapshot,
        "v2 snapshot + SQ8 config must lazily train, not rebuild"
    );
    let loaded_ix = loaded.index();
    assert_eq!(
        loaded_ix.ivf().unwrap().assignments(),
        ivf.assignments(),
        "lazy upgrade must not re-cluster"
    );
    let codebook = loaded_ix.sq8().expect("lazy upgrade must train SQ8");
    assert_eq!(codebook.rerank_pool(), 32);

    // The lazy upgrade re-saved the snapshot as v3; the next start loads
    // the codebook bit-for-bit instead of retraining.
    let min_bits: Vec<u32> = codebook.min().iter().map(|f| f.to_bits()).collect();
    let scale_bits: Vec<u32> = codebook.scale().iter().map(|f| f.to_bits()).collect();
    let (resumed, provenance) =
        Retriever::build_or_load_tuned(&state, Some(ivf_params), Some(sq8_params));
    assert_eq!(provenance, IndexProvenance::Snapshot);
    let resumed_codebook = resumed
        .index()
        .sq8()
        .expect("v3 re-save carries the codebook");
    let resumed_min: Vec<u32> = resumed_codebook.min().iter().map(|f| f.to_bits()).collect();
    let resumed_scale: Vec<u32> = resumed_codebook
        .scale()
        .iter()
        .map(|f| f.to_bits())
        .collect();
    assert_eq!((resumed_min, resumed_scale), (min_bits, scale_bits));

    // At nprobe = clusters and a pool spanning the corpus, SQ8 retrieval
    // over the migrated snapshot is byte-identical to the flat scan…
    let mut exact = resumed.index().clone();
    exact.set_sq8_rerank_pool(exact.len());
    let q = "small writes on a single stripe";
    let flat_hits: Vec<(u32, usize)> = flat_ix
        .search(q, 15)
        .iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect();
    let exact_hits: Vec<(u32, usize)> = exact
        .search(q, 15)
        .iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect();
    assert_eq!(flat_hits, exact_hits);

    // …and the migrated index diagnoses byte-identically to a fresh
    // build at the same tuning.
    let fresh = Arc::new(Retriever::build_tuned(Some(ivf_params), Some(sq8_params)));
    let migrated = Arc::new(resumed);
    for entry in suite.entries.iter().take(2) {
        let model_a = SimLlm::new("gpt-4o");
        let agent_a =
            IoAgent::with_shared_retriever(&model_a, AgentConfig::default(), Arc::clone(&fresh));
        let model_b = SimLlm::new("gpt-4o");
        let agent_b =
            IoAgent::with_shared_retriever(&model_b, AgentConfig::default(), Arc::clone(&migrated));
        assert_eq!(
            agent_a.diagnose(&entry.trace),
            agent_b.diagnose(&entry.trace),
            "trace {}: v2 snapshot changed a diagnosis",
            entry.spec.id
        );
    }
}
