//! IVF correctness (ISSUE 5).
//!
//! The inverted-file layer must be a *bounded approximation with an exact
//! floor*: probing restricts which rows are scored, never how they are
//! scored, so
//!
//! - `nprobe = clusters` (exact mode) is **byte-identical** to the flat
//!   scan and to the seed-era `vecindex::reference` spec — pinned here by
//!   a property test over arbitrary corpora/cluster counts and over the
//!   full seed knowledge corpus at 1 and 4 shim threads;
//! - every hit a partial probe returns carries its exact flat-scan score;
//! - recall@15 on the knowledge corpus stays ≥ 0.95 at the pinned
//!   clustering configuration (the 10k-corpus recall gate lives in
//!   `benches/batch.rs` / CI's bench-gate job);
//! - the query-blocked `search_batch` stays byte-identical to per-query
//!   `search` with IVF attached, at any thread width.

use ioagent_core::rag::Retriever;
use proptest::collection;
use proptest::prelude::*;
use vecindex::{reference, SearchHit, VectorIndex};

/// Queries shaped like the trace-fragment descriptions the agent issues.
const QUERIES: &[&str] = &[
    "the value of 1.0 in the 1K to 10K bin indicates that 100% of the write \
     operations fall within the 1 KB to 10 KB range; many frequent small \
     write requests from 16 processes",
    "the mean stripe width is 1.0 and the job used 1 of 64 available object \
     storage targets, serialising server load on a single OST",
    "excessive metadata operations: thousands of open and stat calls \
     dominate the runtime",
    "collective MPI-IO aggregation of small independent requests",
    "random access pattern with poor sequential locality on reads",
    "checkpoint burst writes overwhelm the burst buffer",
    "misaligned accesses cross lustre stripe boundaries",
    "shared file contention from many ranks writing one file",
];

fn at_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .unwrap()
        .install(f)
}

fn bits(hits: &[SearchHit]) -> Vec<(u32, usize)> {
    hits.iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect()
}

fn corpus_index() -> VectorIndex {
    Retriever::build().index().clone()
}

proptest! {
    /// Exact-mode IVF (`nprobe = clusters`) over arbitrary corpora and
    /// cluster counts is byte-identical to the reference scan-score-sort
    /// path: same scores, same order, NaN-free or not. This is the
    /// ISSUE-5 pin that makes probing a pure work-restriction.
    #[test]
    fn ivf_exact_mode_matches_reference(
        docs in collection::vec("[a-z ]{10,120}", 1..8),
        clusters in 1usize..9,
        query in "[a-z ]{0,60}",
        k in 0usize..20,
    ) {
        let mut ix = VectorIndex::new(ioembed::Embedder::new(16), 16, 2);
        for (i, doc) in docs.iter().enumerate() {
            ix.add_document(&format!("d{i}"), "[P]", doc);
        }
        let spec = bits(&reference::search(&ix, &query, k));
        ix.enable_ivf(clusters, clusters);
        let engine = bits(&ix.search(&query, k));
        prop_assert_eq!(engine, spec);
    }

    /// Partial probes never invent scores: every hit at any nprobe is an
    /// exact flat-scan hit (identical score bits for that entry).
    #[test]
    fn partial_probe_hits_carry_exact_scores(
        docs in collection::vec("[a-z ]{10,120}", 2..8),
        clusters in 2usize..8,
        nprobe in 1usize..4,
        query in "[a-z ]{1,60}",
    ) {
        let mut ix = VectorIndex::new(ioembed::Embedder::new(16), 16, 2);
        for (i, doc) in docs.iter().enumerate() {
            ix.add_document(&format!("d{i}"), "[P]", doc);
        }
        let flat: Vec<(u32, usize)> = bits(&ix.search(&query, ix.len()));
        ix.enable_ivf(clusters, nprobe);
        for hit in ix.search(&query, 5) {
            prop_assert!(
                flat.contains(&(hit.score.to_bits(), hit.entry_idx)),
                "probed hit {} is not an exact flat hit", hit.entry_idx
            );
        }
    }
}

/// Exact-mode IVF over the full seed knowledge corpus matches the
/// reference spec byte for byte at 1 and 4 shim threads.
#[test]
fn ivf_exact_mode_matches_reference_on_the_seed_corpus() {
    let mut ix = corpus_index();
    let clusters = 8;
    ix.enable_ivf(clusters, clusters);
    for width in [1usize, 4] {
        for q in QUERIES {
            for k in [1usize, 15, 1000] {
                let engine = at_width(width, || bits(&ix.search(q, k)));
                let spec = bits(&reference::search(&ix, q, k));
                assert_eq!(engine, spec, "width={width} k={k} q={q:?}");
            }
        }
    }
}

/// Recall regression on the knowledge corpus: at the pinned clustering
/// configuration (8 clusters, 6 probed — the corpus holds only 66
/// chunks, so retrieving 15 of them needs a high probe ratio; small
/// corpora are exactly where probing should be configured wide), mean
/// recall@15 over the standard query set must stay ≥ 0.95. Clustering
/// and embedding are fully deterministic, so this value is exact — a
/// drop means the quantizer or kernels changed behaviour.
#[test]
fn knowledge_corpus_recall_at_15_stays_above_floor() {
    let flat = corpus_index();
    let mut probed = flat.clone();
    probed.enable_ivf(8, 6);
    let mut total = 0.0f64;
    for q in QUERIES {
        let exact: Vec<usize> = flat.search(q, 15).iter().map(|h| h.entry_idx).collect();
        let approx: Vec<usize> = probed.search(q, 15).iter().map(|h| h.entry_idx).collect();
        let found = exact.iter().filter(|i| approx.contains(i)).count();
        total += found as f64 / exact.len() as f64;
    }
    let recall = total / QUERIES.len() as f64;
    assert!(
        recall >= 0.95,
        "knowledge-corpus recall@15 regressed to {recall:.4} (floor 0.95)"
    );
}

/// The query-blocked batch path must be byte-identical to per-query
/// searches with IVF attached — including at partial nprobe, where both
/// paths are approximate but must be *identically* approximate — at 1
/// and 4 shim threads.
#[test]
fn ivf_batch_matches_per_query_searches_at_any_width() {
    let mut ix = corpus_index();
    ix.enable_ivf(8, 2);
    let queries: Vec<String> = QUERIES.iter().map(|q| q.to_string()).collect();
    let singles: Vec<Vec<(u32, usize)>> = queries.iter().map(|q| bits(&ix.search(q, 15))).collect();
    for width in [1usize, 4] {
        let batch: Vec<Vec<(u32, usize)>> = at_width(width, || {
            ix.search_batch(&queries, 15)
                .iter()
                .map(|hits| bits(hits))
                .collect()
        });
        assert_eq!(batch, singles, "width={width}");
    }
}

/// The flat (no-IVF) query-blocked batch must also stay byte-identical
/// to per-query search — the block kernels may change scheduling, never
/// results (supplements tests/retrieval_equivalence.rs, which pins the
/// batch against `reference::search_batch`).
#[test]
fn flat_blocked_batch_matches_per_query_searches() {
    let ix = corpus_index();
    let queries: Vec<String> = QUERIES.iter().map(|q| q.to_string()).collect();
    let singles: Vec<Vec<(u32, usize)>> = queries.iter().map(|q| bits(&ix.search(q, 15))).collect();
    for width in [1usize, 4] {
        let batch: Vec<Vec<(u32, usize)>> = at_width(width, || {
            ix.search_batch(&queries, 15)
                .iter()
                .map(|hits| bits(hits))
                .collect()
        });
        assert_eq!(batch, singles, "width={width}");
    }
}
