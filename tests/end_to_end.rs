//! End-to-end integration: TraceBench → all four tools → LLM judge, with
//! the paper's headline orderings asserted on a representative subset.

use baselines::{Drishti, Ion};
use ioagent_core::IoAgent;
use judge::{Criterion, Judge, ToolRun};
use simllm::SimLlm;
use tracebench::{IssueLabel, Source, TraceBench};

/// A 12-trace slice covering all three sources.
fn mini_suite() -> TraceBench {
    let mut suite = TraceBench::generate();
    let keep = [
        "sb01_small_io",
        "sb03_metadata_storm",
        "sb07_stdio_heavy",
        "sb10_server_hotspot",
        "io500_easy_posix_small_1",
        "io500_hard_posix_1",
        "io500_hard_mpiio_indep_1",
        "io500_mdtest_hard_1",
        "ra_amrex",
        "ra_hacc_io",
        "ra_openpmd_fixed",
        "ra_montage",
    ];
    suite.entries.retain(|e| keep.contains(&e.spec.id));
    assert_eq!(suite.len(), keep.len());
    suite
}

fn all_runs(suite: &TraceBench) -> Vec<ToolRun> {
    let ion_model = SimLlm::new("gpt-4o");
    let ion = Ion::new(&ion_model);
    let gpt4o = SimLlm::new("gpt-4o");
    let agent = IoAgent::new(&gpt4o);
    let llama = SimLlm::new("llama-3.1-70b");
    let agent_llama = IoAgent::new(&llama);
    vec![
        ToolRun {
            tool: "Drishti".into(),
            diagnoses: suite
                .entries
                .iter()
                .map(|e| Drishti.diagnose(&e.trace))
                .collect(),
        },
        ToolRun {
            tool: "ION".into(),
            diagnoses: suite
                .entries
                .iter()
                .map(|e| ion.diagnose(&e.trace))
                .collect(),
        },
        ToolRun {
            tool: "IOAgent-gpt-4o".into(),
            diagnoses: suite
                .entries
                .iter()
                .map(|e| agent.diagnose(&e.trace))
                .collect(),
        },
        ToolRun {
            tool: "IOAgent-llama-3.1-70B".into(),
            diagnoses: suite
                .entries
                .iter()
                .map(|e| agent_llama.diagnose(&e.trace))
                .collect(),
        },
    ]
}

#[test]
fn table4_shape_holds_on_subset() {
    let suite = mini_suite();
    let runs = all_runs(&suite);
    let judge_model = SimLlm::new("gpt-4o");
    let judge = Judge::new(&judge_model);
    let eval = judge.evaluate(&suite, &runs);

    // Headline shape: IOAgent variants beat both baselines on accuracy.
    let acc = |i: usize| eval.normalized(i, Criterion::Accuracy, None);
    assert!(
        acc(2) > acc(0),
        "IOAgent-gpt-4o {} <= Drishti {}",
        acc(2),
        acc(0)
    );
    assert!(
        acc(2) > acc(1),
        "IOAgent-gpt-4o {} <= ION {}",
        acc(2),
        acc(1)
    );
    assert!(
        acc(3) > acc(1),
        "IOAgent-llama {} <= ION {}",
        acc(3),
        acc(1)
    );
    // Average: the agent with the frontier backbone leads overall.
    let avg = |i: usize| eval.average(i, None);
    assert!(
        avg(2) > avg(0) && avg(2) > avg(1),
        "averages: {:?}",
        (0..4).map(avg).collect::<Vec<_>>()
    );
}

#[test]
fn ioagent_finds_what_only_it_can() {
    // sb10: ServerLoadImbalance only — invisible to Drishti's vocabulary
    // and frequently suppressed by the plain model's stripe misconception.
    let suite = TraceBench::generate();
    let entry = suite.get("sb10_server_hotspot").unwrap();
    let model = SimLlm::new("gpt-4o");
    let agent = IoAgent::new(&model);
    let d = agent.diagnose(&entry.trace);
    assert!(d.issues.contains(&IssueLabel::ServerLoadImbalance));
    let drishti = Drishti.diagnose(&entry.trace);
    assert!(!drishti.issues.contains(&IssueLabel::ServerLoadImbalance));
}

#[test]
fn every_source_represented_and_judged() {
    let suite = mini_suite();
    for src in Source::ALL {
        assert!(suite.by_source(src).count() >= 3, "{src:?}");
    }
    let runs = all_runs(&suite);
    let judge_model = SimLlm::new("gpt-4o");
    let judge = Judge::new(&judge_model);
    let eval = judge.evaluate(&suite, &runs);
    for src in Source::ALL {
        let total: f64 = (0..4).map(|i| eval.average(i, Some(src))).sum();
        // Ranks are zero-sum: per-source averages must sum to 2.0
        // ((3+2+1+0)/3 over 4 tools).
        assert!((total - 2.0).abs() < 1e-9, "{src:?} sums to {total}");
    }
}

#[test]
fn full_reports_mention_references_only_for_rag_tools() {
    let suite = mini_suite();
    let runs = all_runs(&suite);
    let refs = |run: &ToolRun| -> usize { run.diagnoses.iter().map(|d| d.references.len()).sum() };
    assert_eq!(refs(&runs[0]), 0, "Drishti cites nothing");
    assert_eq!(refs(&runs[1]), 0, "ION cites nothing");
    assert!(refs(&runs[2]) > 0, "IOAgent-gpt-4o cites sources");
    assert!(refs(&runs[3]) > 0, "IOAgent-llama cites sources");
}

#[test]
fn interactive_session_after_full_pipeline() {
    let suite = TraceBench::generate();
    let entry = suite.get("io500_rnd_posix_shared").unwrap();
    let model = SimLlm::new("gpt-4o");
    let agent = IoAgent::new(&model);
    let mut session = agent.start_session(&entry.trace);
    assert!(session
        .diagnosis
        .issues
        .contains(&IssueLabel::ServerLoadImbalance));
    let answer = session.ask("how do I fix the stripe settings?");
    assert!(answer.contains("lfs setstripe"));
}
