//! Parallel-vs-sequential equivalence: every `par_iter` hot loop in the
//! workspace must produce **byte-identical** results whether the rayon
//! shim runs it on one thread or many — the intra-trace analogue of
//! `tests/service.rs`'s worker-count determinism guarantee.
//!
//! Each test runs the same seeded-simllm computation under a forced
//! 1-thread pool and a 4-thread pool and compares outputs exactly (f32/f64
//! scores by bit pattern, report text by bytes). The five audited call
//! sites are:
//!
//! 1. `vecindex::VectorIndex::search` — parallel chunk scan;
//! 2. `vecindex::VectorIndex::search_batch` — parallel queries;
//! 3. `ioagent_core::rag::Retriever::retrieve_k` — parallel reflection;
//! 4. `ioagent_core::IoAgent::diagnose` — parallel fragments + tree-merge
//!    levels (covers `agent.rs` and `merge.rs`);
//! 5. `judge::Judge::evaluate` — parallel per-trace ranking.

use ioagent_core::merge::{merge_blocks, MergeStrategy, SummaryBlock};
use ioagent_core::rag::Retriever;
use ioagent_core::IoAgent;
use ioembed::Embedder;
use judge::{Criterion, Judge, ToolRun};
use simllm::{Diagnosis, SimLlm};
use std::sync::Arc;
use tracebench::TraceBench;
use vecindex::VectorIndex;

/// Run `f` under a pool of exactly `width` threads.
fn at_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .unwrap()
        .install(f)
}

/// Compare a width-1 and a width-4 run of the same computation.
fn narrow_vs_wide<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) -> (R, R) {
    let narrow = at_width(1, &f);
    let wide = at_width(4, &f);
    (narrow, wide)
}

fn small_index() -> VectorIndex {
    let mut ix = VectorIndex::new(Embedder::default(), 64, 8);
    ix.add_document(
        "doc-stripe",
        "[Striping for Parallel I/O, SC 2021]",
        "Lustre stripe count determines how many object storage targets serve a file. \
         A stripe count of one serialises all accesses onto a single OST, limiting \
         bandwidth and parallelism. Increasing the stripe count spreads server load.",
    );
    ix.add_document(
        "doc-collective",
        "[Collective I/O Revisited, IPDPS 2022]",
        "Collective MPI-IO operations aggregate many small independent requests into \
         large contiguous transfers, dramatically improving shared-file write bandwidth.",
    );
    ix.add_document(
        "doc-metadata",
        "[Metadata Scalability, FAST 2023]",
        "Excessive open, stat and close operations overload the metadata server. \
         Batching metadata operations or caching attributes reduces latency.",
    );
    ix
}

/// Bit-exact fingerprint of a hit list (score bits + entry index).
fn hit_bits(hits: &[vecindex::SearchHit]) -> Vec<(u32, usize)> {
    hits.iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect()
}

#[test]
fn vecindex_search_is_thread_count_invariant() {
    let ix = small_index();
    let (narrow, wide) = narrow_vs_wide(|| {
        hit_bits(&ix.search("stripe count of 1 limits parallelism on a single OST", 4))
    });
    assert_eq!(narrow, wide);
    assert!(!narrow.is_empty());
}

#[test]
fn vecindex_batch_search_is_thread_count_invariant() {
    let ix = small_index();
    let queries: Vec<String> = [
        "collective aggregation of small writes",
        "stat storm on the metadata server",
        "single OST stripe width",
        "contiguous transfers",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (narrow, wide) = narrow_vs_wide(|| {
        ix.search_batch(&queries, 3)
            .iter()
            .map(|hits| hit_bits(hits))
            .collect::<Vec<_>>()
    });
    assert_eq!(narrow, wide);
    assert_eq!(narrow.len(), queries.len());
}

#[test]
fn retriever_reflection_is_thread_count_invariant() {
    let retriever = Retriever::build();
    let query = "100% of the write operations fall within the 0 B to 100 B range; \
                 the application issues many frequent small write requests";
    let (narrow, wide) = narrow_vs_wide(|| {
        // Fresh reflection model per run: usage is accounted per instance.
        let mini = SimLlm::new("gpt-4o-mini");
        let sources = retriever.retrieve_k(query, &mini, 15);
        let fingerprint: Vec<(String, String, Vec<&'static str>, u32)> = sources
            .into_iter()
            .map(|s| (s.doc_id, s.citation, s.claims, s.score.to_bits()))
            .collect();
        let usage = mini.usage();
        // Reflection call/token counts are integer sums, so they too must
        // be order- and thread-invariant.
        (
            fingerprint,
            usage.calls,
            usage.input_tokens,
            usage.output_tokens,
        )
    });
    assert_eq!(narrow, wide);
    assert!(!narrow.0.is_empty());
}

#[test]
fn agent_diagnosis_is_thread_count_invariant_across_traces() {
    let suite = TraceBench::generate();
    let retriever = Arc::new(Retriever::build());
    // Heterogeneous traces: multi-module fragments, server hotspot, and a
    // real-application profile, so fragment counts (and thus chunking
    // patterns) differ per trace.
    for id in ["sb01_small_io", "sb10_server_hotspot", "ra_vpic_io"] {
        let entry = suite.get(id).unwrap();
        let (narrow, wide) = narrow_vs_wide(|| {
            let model = SimLlm::new("gpt-4o");
            let agent = IoAgent::with_shared_retriever(
                &model,
                ioagent_core::AgentConfig::default(),
                Arc::clone(&retriever),
            );
            let d = agent.diagnose(&entry.trace);
            let backbone = model.usage();
            let reflection = agent.reflection_usage();
            (
                d.text,
                d.issues,
                d.references,
                backbone.calls + reflection.calls,
                backbone.input_tokens + reflection.input_tokens,
                backbone.output_tokens + reflection.output_tokens,
                // Cost is derived from integer token totals, so even this
                // f64 must be bit-identical across thread counts.
                (backbone.cost_usd + reflection.cost_usd).to_bits(),
            )
        });
        assert_eq!(narrow, wide, "{id} diverged across thread counts");
    }
}

#[test]
fn tree_merge_is_thread_count_invariant() {
    let blocks: Vec<SummaryBlock> = (0..13)
        .map(|i| {
            SummaryBlock::new(
                format!("S{i}"),
                vec![format!(
                    "- POINT[k{i}] finding about k{i} ;; REFS: [Ref {i}, V 2021]"
                )],
            )
        })
        .collect();
    let (narrow, wide) = narrow_vs_wide(|| {
        let model = SimLlm::new("gpt-4o");
        merge_blocks(&model, blocks.clone(), MergeStrategy::Tree)
    });
    assert_eq!(narrow, wide);
    assert!(!narrow.points.is_empty());
}

#[test]
fn judge_evaluation_is_thread_count_invariant() {
    let mut suite = TraceBench::generate();
    suite.entries.truncate(5);
    let fake = |tool: &str, labels: &[tracebench::IssueLabel]| {
        let mut text = format!("{tool} report\n");
        for l in labels {
            text.push_str(&format!(
                "Issue: {}\n  details with 42 numbers\n  Recommendation: fix it\n",
                l.display_name()
            ));
        }
        Diagnosis::from_text(tool, text)
    };
    let runs: Vec<ToolRun> = vec![
        ToolRun {
            tool: "good".into(),
            diagnoses: suite
                .entries
                .iter()
                .map(|e| fake("good", e.spec.labels))
                .collect(),
        },
        ToolRun {
            tool: "partial".into(),
            diagnoses: suite
                .entries
                .iter()
                .map(|e| fake("partial", &e.spec.labels[..1.min(e.spec.labels.len())]))
                .collect(),
        },
    ];
    let (narrow, wide) = narrow_vs_wide(|| {
        let model = SimLlm::new("gpt-4o");
        let judge = Judge::new(&model);
        let eval = judge.evaluate(&suite, &runs);
        let mut scores = Vec::new();
        for tool_idx in 0..2 {
            for criterion in Criterion::ALL {
                scores.push(eval.normalized(tool_idx, criterion, None).to_bits());
            }
        }
        scores
    });
    assert_eq!(narrow, wide);
}

#[test]
fn service_intra_threads_do_not_change_output() {
    use ioagentd::{DiagnosisService, JobRequest, ServiceConfig};
    let suite = TraceBench::generate();
    let jobs: Vec<JobRequest> = ["sb01_small_io", "sb10_server_hotspot", "ra_vpic_io"]
        .iter()
        .map(|id| {
            let entry = suite.get(id).unwrap();
            JobRequest::new(*id, entry.trace.clone(), "gpt-4o")
        })
        .collect();
    let sequential = DiagnosisService::start(
        ServiceConfig::with_workers(2)
            .intra_threads(1)
            .cache_capacity(0),
    );
    let parallel = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(2)
            .intra_threads(4)
            .cache_capacity(0),
        sequential.retriever(),
    );
    let a = sequential.run_batch(jobs.clone()).unwrap();
    let b = parallel.run_batch(jobs).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.diagnosis.text, y.diagnosis.text, "{} diverged", x.id);
        assert_eq!(x.metrics.llm_calls, y.metrics.llm_calls);
        assert_eq!(
            x.metrics.cost_usd.to_bits(),
            y.metrics.cost_usd.to_bits(),
            "{} per-job cost accounting diverged across intra widths",
            x.id
        );
    }
    sequential.shutdown();
    parallel.shutdown();
}
