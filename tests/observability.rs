//! The observability bargain, pinned end to end:
//!
//! - tracing **off** (the default) and tracing **on** produce
//!   byte-identical diagnoses over a seed-corpus batch;
//! - with tracing on, folding the emitted spans attributes >= 95% of
//!   every job's wall time to named `stage.*` spans;
//! - the per-stage latency report is internally consistent.
//!
//! The global tracer is set-once per process, so the off-then-on
//! ordering lives in ONE test function: the disabled phase must finish
//! before `init_tracer` installs the memory tracer for the enabled
//! phase. (Each file under `tests/` is its own test binary, so no other
//! test can race the installation.)

use ioagentd::{DiagnosisService, JobRequest, ServiceConfig};
use ioobserve::{fold_spans, Tracer, JOB_SPAN, STAGE_PREFIX};
use tracebench::TraceBench;

/// A 16-job batch over the seed corpus, mixed models.
fn workload(suite: &TraceBench) -> Vec<JobRequest> {
    let models = ["gpt-4o", "gpt-4o-mini", "llama-3.1-70b"];
    suite
        .entries
        .iter()
        .cycle()
        .take(16)
        .enumerate()
        .map(|(i, entry)| {
            JobRequest::new(
                format!("job-{i}-{}", entry.spec.id),
                entry.trace.clone(),
                models[i % models.len()],
            )
        })
        .collect()
}

#[test]
fn tracing_is_invisible_to_diagnoses_and_attributes_job_time() {
    let suite = TraceBench::generate();
    let jobs = workload(&suite);

    // Phase 1: tracing disabled (nothing has installed a global tracer
    // in this process). Caches off so the traced rerun below re-executes
    // every job instead of answering from the result cache.
    assert!(!ioobserve::tracer().enabled());
    let off_service = DiagnosisService::start(ServiceConfig::with_workers(4).cache_capacity(0));
    let off = off_service.run_batch(jobs.clone()).unwrap();
    let retriever = off_service.retriever();
    off_service.shutdown();

    // Phase 2: install a fine-detail memory tracer and rerun the same
    // batch on a fresh service over the same knowledge index.
    assert!(ioobserve::init_tracer(Tracer::memory().with_fine_detail()));
    assert!(ioobserve::tracer().enabled());
    let on_service = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(4).cache_capacity(0),
        retriever,
    );
    let on = on_service.run_batch(jobs.clone()).unwrap();
    // Joining the workers flushes their span buffers.
    on_service.shutdown();

    // Byte identity: tracing must never perturb the pipeline.
    assert_eq!(off.len(), on.len());
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.diagnosis.text, b.diagnosis.text,
            "{}: diagnosis text changed under tracing",
            a.id
        );
        assert_eq!(a.diagnosis.issues, b.diagnosis.issues);
        assert_eq!(a.diagnosis.references, b.diagnosis.references);
        assert_eq!(a.metrics.llm_calls, b.metrics.llm_calls);
    }

    // Fold the trace: every job decomposes into stage spans.
    let records = ioobserve::tracer().drain_memory();
    let report = fold_spans(&records);
    assert_eq!(report.jobs, jobs.len() as u64, "one root job span per job");
    assert!(
        report.coverage_min >= 0.95,
        "stage spans must attribute >= 95% of every job's wall time, \
         got min {:.3} (mean {:.3})",
        report.coverage_min,
        report.coverage_mean
    );

    // The expected pipeline stages all appear.
    let stage_names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "stage.queue_wait",
        "stage.preprocess",
        "stage.fragments",
        "stage.fragment",
        "stage.retrieve",
        "stage.llm",
        "stage.merge",
        "stage.render",
    ] {
        assert!(
            stage_names.contains(&expected),
            "missing {expected} in {stage_names:?}"
        );
    }

    // Report sanity: rows are internally consistent and shares are sane.
    for row in &report.stages {
        assert!(row.name.starts_with(STAGE_PREFIX));
        assert!(row.count > 0);
        assert!(row.p50_ns <= row.p99_ns);
        assert!(
            row.mean_ns as u128 * row.count as u128 <= row.total_ns as u128 + row.count as u128
        );
        assert!((0.0..=1.0).contains(&row.share));
    }
    let roots = records
        .iter()
        .filter(|r| r.parent == 0 && r.name == JOB_SPAN)
        .count();
    assert_eq!(roots as u64, report.jobs);
    let table = report.render_table();
    assert!(table.contains("stage.llm"), "table:\n{table}");
}
