//! SQ8 scan-tier correctness (ISSUE 10).
//!
//! The int8 scalar-quantized tier must be a *candidate selector, never a
//! scorer*: the widened 8-lane int8 kernel only picks which rows enter the
//! rerank pool; every returned hit is re-scored with the exact f32 cosine
//! kernel. So
//!
//! - with a pool covering every probed row, SQ8 is **byte-identical** to
//!   the f32 probe path at the same nprobe — pinned by a property test
//!   over arbitrary corpora, cluster counts, and probe widths;
//! - at `nprobe = clusters` with a full pool, SQ8 is byte-identical to
//!   the seed-era `vecindex::reference` spec (the exact floor survives a
//!   second approximation layer) — including over the full seed knowledge
//!   corpus at 1 and 4 shim threads;
//! - every hit at any pool size carries its exact flat-scan score — the
//!   quantizer can cost recall, never precision;
//! - recall@15 on the knowledge corpus stays ≥ 0.95 at the pinned
//!   configuration (the million-chunk recall gate lives in
//!   `benches/million.rs` / CI's bench-gate job);
//! - `search_batch` with SQ8 attached stays byte-identical to per-query
//!   `search` at any thread width;
//! - `add_document` drops the codebook along with the clustering (the
//!   invalidation contract; the unit-level pin lives in `vecindex`).

use ioagent_core::rag::Retriever;
use proptest::collection;
use proptest::prelude::*;
use vecindex::{reference, SearchHit, VectorIndex};

/// Queries shaped like the trace-fragment descriptions the agent issues.
const QUERIES: &[&str] = &[
    "the value of 1.0 in the 1K to 10K bin indicates that 100% of the write \
     operations fall within the 1 KB to 10 KB range; many frequent small \
     write requests from 16 processes",
    "the mean stripe width is 1.0 and the job used 1 of 64 available object \
     storage targets, serialising server load on a single OST",
    "excessive metadata operations: thousands of open and stat calls \
     dominate the runtime",
    "collective MPI-IO aggregation of small independent requests",
    "random access pattern with poor sequential locality on reads",
    "checkpoint burst writes overwhelm the burst buffer",
    "misaligned accesses cross lustre stripe boundaries",
    "shared file contention from many ranks writing one file",
];

fn at_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .unwrap()
        .install(f)
}

fn bits(hits: &[SearchHit]) -> Vec<(u32, usize)> {
    hits.iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect()
}

fn corpus_index() -> VectorIndex {
    Retriever::build().index().clone()
}

proptest! {
    /// A pool covering every row makes SQ8 a pure re-ordering of the f32
    /// probe path's work: same rows scored, same exact kernel, so the
    /// returned top-k must be byte-identical at any nprobe.
    #[test]
    fn full_pool_sq8_matches_the_f32_probe_path(
        docs in collection::vec("[a-z ]{10,120}", 1..8),
        clusters in 1usize..9,
        nprobe in 1usize..9,
        query in "[a-z ]{0,60}",
        k in 0usize..20,
    ) {
        let mut f32_ix = VectorIndex::new(ioembed::Embedder::new(16), 16, 2);
        for (i, doc) in docs.iter().enumerate() {
            f32_ix.add_document(&format!("d{i}"), "[P]", doc);
        }
        f32_ix.enable_ivf(clusters, nprobe);
        let mut sq8_ix = f32_ix.clone();
        sq8_ix.enable_sq8(sq8_ix.len());
        prop_assert_eq!(bits(&sq8_ix.search(&query, k)), bits(&f32_ix.search(&query, k)));
    }

    /// Exact mode survives the second approximation layer: SQ8 at
    /// `nprobe = clusters` with a full pool is byte-identical to the
    /// reference scan-score-sort spec.
    #[test]
    fn exact_mode_sq8_matches_reference(
        docs in collection::vec("[a-z ]{10,120}", 1..8),
        clusters in 1usize..9,
        query in "[a-z ]{0,60}",
        k in 0usize..20,
    ) {
        let mut ix = VectorIndex::new(ioembed::Embedder::new(16), 16, 2);
        for (i, doc) in docs.iter().enumerate() {
            ix.add_document(&format!("d{i}"), "[P]", doc);
        }
        let spec = bits(&reference::search(&ix, &query, k));
        ix.enable_ivf(clusters, clusters);
        ix.enable_sq8(ix.len());
        prop_assert_eq!(bits(&ix.search(&query, k)), spec);
    }

    /// A bounded pool never invents scores: whatever candidates the int8
    /// scan selects, every returned hit carries its exact flat-scan score
    /// bits for that entry.
    #[test]
    fn bounded_pool_hits_carry_exact_scores(
        docs in collection::vec("[a-z ]{10,120}", 2..8),
        clusters in 2usize..8,
        nprobe in 1usize..4,
        pool in 1usize..6,
        query in "[a-z ]{1,60}",
    ) {
        let mut ix = VectorIndex::new(ioembed::Embedder::new(16), 16, 2);
        for (i, doc) in docs.iter().enumerate() {
            ix.add_document(&format!("d{i}"), "[P]", doc);
        }
        let flat: Vec<(u32, usize)> = bits(&ix.search(&query, ix.len()));
        ix.enable_ivf(clusters, nprobe);
        ix.enable_sq8(pool);
        for hit in ix.search(&query, 5) {
            prop_assert!(
                flat.contains(&(hit.score.to_bits(), hit.entry_idx)),
                "SQ8 hit {} does not carry an exact flat-scan score", hit.entry_idx
            );
        }
    }
}

/// Exact-mode SQ8 over the full seed knowledge corpus matches the
/// reference spec byte for byte at 1 and 4 shim threads.
#[test]
fn exact_mode_sq8_matches_reference_on_the_seed_corpus() {
    let mut ix = corpus_index();
    let clusters = 8;
    ix.enable_ivf(clusters, clusters);
    ix.enable_sq8(ix.len());
    for width in [1usize, 4] {
        for q in QUERIES {
            for k in [1usize, 15, 1000] {
                let engine = at_width(width, || bits(&ix.search(q, k)));
                let spec = bits(&reference::search(&ix, q, k));
                assert_eq!(engine, spec, "width={width} k={k} q={q:?}");
            }
        }
    }
}

/// Recall regression on the knowledge corpus: at the pinned configuration
/// (8 clusters, 6 probed, rerank pool 32 — roughly half the 66-chunk
/// corpus, the same wide-probe regime the IVF recall pin uses), mean
/// recall@15 over the standard query set must stay ≥ 0.95. Everything in
/// the pipeline is deterministic, so this value is exact — a drop means
/// the quantizer, codebook, or kernels changed behaviour.
#[test]
fn knowledge_corpus_sq8_recall_at_15_stays_above_floor() {
    let flat = corpus_index();
    let mut probed = flat.clone();
    probed.enable_ivf(8, 6);
    probed.enable_sq8(32);
    let mut total = 0.0f64;
    for q in QUERIES {
        let exact: Vec<usize> = flat.search(q, 15).iter().map(|h| h.entry_idx).collect();
        let approx: Vec<usize> = probed.search(q, 15).iter().map(|h| h.entry_idx).collect();
        let found = exact.iter().filter(|i| approx.contains(i)).count();
        total += found as f64 / exact.len() as f64;
    }
    let recall = total / QUERIES.len() as f64;
    assert!(
        recall >= 0.95,
        "knowledge-corpus SQ8 recall@15 regressed to {recall:.4} (floor 0.95)"
    );
}

/// The query-blocked batch path with SQ8 attached must be byte-identical
/// to per-query searches — including at a bounded pool, where both paths
/// are approximate but must be *identically* approximate — at 1 and 4
/// shim threads.
#[test]
fn sq8_batch_matches_per_query_searches_at_any_width() {
    let mut ix = corpus_index();
    ix.enable_ivf(8, 2);
    ix.enable_sq8(16);
    let queries: Vec<String> = QUERIES.iter().map(|q| q.to_string()).collect();
    let singles: Vec<Vec<(u32, usize)>> = queries.iter().map(|q| bits(&ix.search(q, 15))).collect();
    for width in [1usize, 4] {
        let batch: Vec<Vec<(u32, usize)>> = at_width(width, || {
            ix.search_batch(&queries, 15)
                .iter()
                .map(|hits| bits(hits))
                .collect()
        });
        assert_eq!(batch, singles, "width={width}");
    }
}

/// Growing the corpus invalidates the whole approximate stack: after
/// `add_document`, both the clustering and the SQ8 codebook are gone and
/// search falls back to the exact flat scan over all rows — old and new.
#[test]
fn add_document_drops_sq8_with_the_clustering() {
    let mut ix = corpus_index();
    ix.enable_ivf(8, 2);
    ix.enable_sq8(16);
    assert!(ix.ivf().is_some() && ix.sq8().is_some());
    ix.add_document(
        "new-doc",
        "[New 2026]",
        "striping metadata storm on the mdt",
    );
    assert!(
        ix.ivf().is_none() && ix.sq8().is_none(),
        "add_document must invalidate the IVF clustering and the SQ8 codebook"
    );
    let q = "metadata storm";
    assert_eq!(
        bits(&ix.search(q, 15)),
        bits(&reference::search(&ix, q, 15)),
        "post-growth search must be the exact flat scan"
    );
}
