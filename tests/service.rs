//! `ioagentd` service-level guarantees, cross-checked against the
//! sequential pipeline:
//!
//! - a batch of N jobs through K workers yields **byte-identical**
//!   diagnoses to running each job alone through [`IoAgent`];
//! - resubmitting a completed batch is answered entirely from the result
//!   cache with **zero** additional LLM calls;
//! - the bounded queue applies backpressure yet completes everything.

use ioagent_core::{AgentConfig, IoAgent, MergeStrategy};
use ioagentd::{DiagnosisService, JobRequest, ServiceConfig};
use simllm::SimLlm;
use std::sync::Arc;
use tracebench::TraceBench;

/// A heterogeneous 12-job workload: varied traces, models, and configs.
fn workload(suite: &TraceBench) -> Vec<JobRequest> {
    let ids = [
        "sb01_small_io",
        "sb03_metadata_storm",
        "sb07_stdio_heavy",
        "sb10_server_hotspot",
        "io500_easy_posix_small_1",
        "io500_hard_mpiio_indep_1",
        "ra_amrex",
        "ra_hacc_io",
    ];
    let mut jobs = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        let entry = suite.get(id).unwrap();
        let model = if i % 2 == 0 {
            "gpt-4o"
        } else {
            "llama-3.1-70b"
        };
        jobs.push(JobRequest::new(
            format!("{id}-default"),
            entry.trace.clone(),
            model,
        ));
    }
    // Four config variants over one trace: distinct cache keys, distinct outputs.
    let entry = suite.get("ra_vpic_io").unwrap();
    for (tag, config) in [
        (
            "flat",
            AgentConfig {
                merge: MergeStrategy::Flat,
                ..AgentConfig::default()
            },
        ),
        (
            "norag",
            AgentConfig {
                use_rag: false,
                ..AgentConfig::default()
            },
        ),
        (
            "k5",
            AgentConfig {
                top_k: 5,
                ..AgentConfig::default()
            },
        ),
        (
            "rawjson",
            AgentConfig {
                nl_transform: false,
                ..AgentConfig::default()
            },
        ),
    ] {
        let mut job = JobRequest::new(format!("vpic-{tag}"), entry.trace.clone(), "gpt-4o");
        job.config = config;
        jobs.push(job);
    }
    jobs
}

#[test]
fn concurrent_batch_matches_sequential_agent_byte_for_byte() {
    let suite = TraceBench::generate();
    let jobs = workload(&suite);

    let service = DiagnosisService::start(ServiceConfig::with_workers(4));
    let results = service.run_batch(jobs.clone()).unwrap();
    let retriever = service.retriever();

    assert_eq!(results.len(), jobs.len());
    for (job, result) in jobs.iter().zip(&results) {
        assert_eq!(
            result.id, job.id,
            "results must come back in submission order"
        );
        assert!(!result.cached);

        // The reference: one agent, one job, no service.
        let model = SimLlm::new(&job.model);
        let agent =
            IoAgent::with_shared_retriever(&model, job.config.clone(), Arc::clone(&retriever));
        let reference = agent.diagnose(&job.trace);

        assert_eq!(result.diagnosis.text, reference.text, "{} diverged", job.id);
        assert_eq!(
            result.diagnosis.issues, reference.issues,
            "{} issues diverged",
            job.id
        );
        assert_eq!(
            result.diagnosis.references, reference.references,
            "{} references diverged",
            job.id
        );

        // Per-job accounting matches the standalone run exactly.
        let standalone = model.usage().calls + agent.reflection_usage().calls;
        assert_eq!(
            result.metrics.llm_calls, standalone,
            "{} call count diverged",
            job.id
        );
    }
    service.shutdown();
}

#[test]
fn worker_count_does_not_change_output() {
    let suite = TraceBench::generate();
    let jobs = workload(&suite);
    let narrow = DiagnosisService::start(ServiceConfig::with_workers(1).cache_capacity(0));
    let wide = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(8).cache_capacity(0),
        narrow.retriever(),
    );
    let a = narrow.run_batch(jobs.clone()).unwrap();
    let b = wide.run_batch(jobs).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.diagnosis.text, y.diagnosis.text,
            "{} diverged across widths",
            x.id
        );
    }
}

#[test]
fn cache_hit_repeat_makes_zero_llm_calls() {
    let suite = TraceBench::generate();
    let jobs = workload(&suite);

    let service = DiagnosisService::start(ServiceConfig::with_workers(4).cache_capacity(64));
    let first = service.run_batch(jobs.clone()).unwrap();
    let stats_after_first = service.stats();
    assert!(stats_after_first.llm_calls > 0);
    assert_eq!(stats_after_first.cache_hits, 0);

    let second = service.run_batch(jobs.clone()).unwrap();
    let stats_after_second = service.stats();

    for (a, b) in first.iter().zip(&second) {
        assert!(b.cached, "{} should be a cache hit", b.id);
        assert_eq!(a.diagnosis.text, b.diagnosis.text);
        assert_eq!(b.metrics.llm_calls, 0);
        assert_eq!(b.metrics.cost_usd, 0.0);
    }
    assert_eq!(
        stats_after_second.llm_calls, stats_after_first.llm_calls,
        "a cache-hit repeat must not touch any LLM"
    );
    assert_eq!(stats_after_second.cache_hits, jobs.len() as u64);
    service.shutdown();
}

#[test]
fn config_changes_bypass_the_cache() {
    let suite = TraceBench::generate();
    let entry = suite.get("sb01_small_io").unwrap();
    let service = DiagnosisService::start(ServiceConfig::with_workers(2).cache_capacity(16));

    let default_job = JobRequest::new("a", entry.trace.clone(), "gpt-4o");
    let mut norag_job = JobRequest::new("b", entry.trace.clone(), "gpt-4o");
    norag_job.config.use_rag = false;
    let other_model_job = JobRequest::new("c", entry.trace.clone(), "gpt-4o-mini");

    service.run_batch(vec![default_job.clone()]).unwrap();
    let results = service
        .run_batch(vec![default_job, norag_job, other_model_job])
        .unwrap();
    assert!(results[0].cached, "identical job must hit");
    assert!(!results[1].cached, "different config must miss");
    assert!(!results[2].cached, "different model must miss");
    service.shutdown();
}

#[test]
fn tiny_queue_applies_backpressure_without_deadlock() {
    let suite = TraceBench::generate();
    // Queue bound 1 with 2 workers: submits block while workers chew.
    let service = DiagnosisService::start(
        ServiceConfig::with_workers(2)
            .queue_capacity(1)
            .cache_capacity(0),
    );
    let jobs: Vec<JobRequest> = suite
        .entries
        .iter()
        .take(10)
        .map(|e| JobRequest::new(e.spec.id, e.trace.clone(), "gpt-4o-mini"))
        .collect();
    let results = service.run_batch(jobs).unwrap();
    assert_eq!(results.len(), 10);
    assert!(results.iter().all(|r| !r.diagnosis.text.is_empty()));
    assert_eq!(service.stats().jobs_completed, 10);
    service.shutdown();
}
