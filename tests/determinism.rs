//! Whole-pipeline determinism: identical inputs must produce bit-identical
//! outputs regardless of thread count — the property that makes the
//! reproduction reproducible.

use baselines::Ion;
use ioagent_core::IoAgent;
use simllm::SimLlm;
use tracebench::TraceBench;

#[test]
fn suite_generation_is_bit_identical() {
    let a = TraceBench::generate();
    let b = TraceBench::generate();
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(
            darshan::write::write_text(&x.trace),
            darshan::write::write_text(&y.trace),
            "{}",
            x.spec.id
        );
    }
}

#[test]
fn agent_diagnosis_is_parallelism_invariant() {
    // IOAgent parallelises fragment diagnosis and tree-merge levels with
    // rayon; all randomness is keyed on prompt content, so thread count and
    // scheduling must not matter.
    let suite = TraceBench::generate();
    let entry = suite.get("ra_vpic_io").unwrap();

    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let text_single = single.install(|| {
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::new(&model);
        agent.diagnose(&entry.trace).text
    });

    let wide = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    let text_wide = wide.install(|| {
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::new(&model);
        agent.diagnose(&entry.trace).text
    });

    assert_eq!(text_single, text_wide);
}

#[test]
fn ion_and_judge_are_repeatable() {
    let mut suite = TraceBench::generate();
    suite.entries.truncate(3);
    let model = SimLlm::new("llama-3.1-70b");
    let ion = Ion::new(&model);
    let first: Vec<String> = suite
        .entries
        .iter()
        .map(|e| ion.diagnose(&e.trace).text)
        .collect();
    let second: Vec<String> = suite
        .entries
        .iter()
        .map(|e| ion.diagnose(&e.trace).text)
        .collect();
    assert_eq!(first, second);
}

#[test]
fn model_usage_accounting_consistent_across_runs() {
    let suite = TraceBench::generate();
    let entry = suite.get("sb01_small_io").unwrap();
    let usage = |_run: usize| {
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::new(&model);
        let _ = agent.diagnose(&entry.trace);
        let u = model.usage();
        (u.calls, u.input_tokens, u.output_tokens)
    };
    assert_eq!(usage(0), usage(1));
}
