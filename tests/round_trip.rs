//! Cross-crate consistency: the `darshan-parser` text format round-trips
//! every TraceBench trace, the pre-processor sees identical fragments on
//! either side of the round trip, and the reference detector agrees.

use darshan::counters::Module;
use tracebench::{reference_detect, TraceBench};

#[test]
fn all_40_traces_round_trip_text_format() {
    let suite = TraceBench::generate();
    for entry in &suite.entries {
        let text = darshan::write::write_text(&entry.trace);
        let back =
            darshan::parse::parse_text(&text).unwrap_or_else(|e| panic!("{}: {e}", entry.spec.id));
        assert_eq!(
            back.records.len(),
            entry.trace.records.len(),
            "{}",
            entry.spec.id
        );
        assert_eq!(
            back.header.nprocs, entry.trace.header.nprocs,
            "{}",
            entry.spec.id
        );
        // Second write must be byte-identical (canonical form).
        assert_eq!(text, darshan::write::write_text(&back), "{}", entry.spec.id);
    }
}

#[test]
fn detection_is_invariant_under_round_trip() {
    let suite = TraceBench::generate();
    for entry in &suite.entries {
        let text = darshan::write::write_text(&entry.trace);
        let back = darshan::parse::parse_text(&text).unwrap();
        assert_eq!(
            reference_detect(&back),
            reference_detect(&entry.trace),
            "{}",
            entry.spec.id
        );
    }
}

#[test]
fn fragments_are_invariant_under_round_trip() {
    let suite = TraceBench::generate();
    for entry in suite.entries.iter().take(10) {
        let text = darshan::write::write_text(&entry.trace);
        let back = darshan::parse::parse_text(&text).unwrap();
        let a = preprocessor::extract_fragments(&entry.trace);
        let b = preprocessor::extract_fragments(&back);
        assert_eq!(a.len(), b.len(), "{}", entry.spec.id);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.title, y.title);
            assert_eq!(
                x.json_text(),
                y.json_text(),
                "{} {}",
                entry.spec.id,
                x.title
            );
            assert_eq!(x.evidence, y.evidence, "{} {}", entry.spec.id, x.title);
        }
    }
}

#[test]
fn csv_split_covers_every_present_module() {
    let suite = TraceBench::generate();
    for entry in &suite.entries {
        let csvs = preprocessor::split_modules(&entry.trace);
        for module in Module::ALL {
            assert_eq!(
                csvs.contains_key(&module),
                entry.trace.module_present(module),
                "{} {module:?}",
                entry.spec.id
            );
        }
        for (module, csv) in &csvs {
            let rows = csv.lines().count() - 1;
            let records = entry.trace.records_for(*module).count();
            assert_eq!(rows, records, "{} {module:?}", entry.spec.id);
        }
    }
}

#[test]
fn ground_truth_labels_expressible_in_reports() {
    // Every label's display name must be recoverable by the report scanner
    // (the convention all tools rely on for accuracy judging).
    for label in tracebench::IssueLabel::ALL {
        let text = format!("Issue: {}\n details", label.display_name());
        let found = simllm::extract_issues(&text);
        assert!(found.contains(&label), "{label:?}");
        assert_eq!(found.len(), 1, "{label:?} text matched extra labels");
    }
}
