//! Old-path vs new-path retrieval equivalence (ISSUE 4).
//!
//! The retrieval engine rebuild (flat vector arena, cached norms, unrolled
//! dot kernel, bounded-heap top-k, thread-local query buffers) must be a
//! pure performance change: over the seed knowledge corpus, `search` and
//! `search_batch` must return **byte-identical** scores and orderings to
//! the seed-era scan-score-sort path, which survives as the executable
//! spec in `vecindex::reference`. Both are pinned under a forced 1-thread
//! and a 4-thread shim pool (CI additionally runs this whole file at
//! `RAYON_NUM_THREADS=1` and `=4`).

use ioagent_core::rag::Retriever;
use vecindex::{reference, SearchHit, VectorIndex};

/// Queries shaped like the trace-fragment descriptions the agent issues.
const QUERIES: &[&str] = &[
    "the value of 1.0 in the 1K to 10K bin indicates that 100% of the write \
     operations fall within the 1 KB to 10 KB range; many frequent small \
     write requests from 16 processes",
    "the mean stripe width is 1.0 and the job used 1 of 64 available object \
     storage targets, serialising server load on a single OST",
    "excessive metadata operations: thousands of open and stat calls \
     dominate the runtime",
    "collective MPI-IO aggregation of small independent requests",
    "random access pattern with poor sequential locality on reads",
    "",
];

fn at_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .unwrap()
        .install(f)
}

fn bits(hits: &[SearchHit]) -> Vec<(u32, usize)> {
    hits.iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect()
}

fn corpus_index() -> VectorIndex {
    // The retriever builds over the full seed knowledge corpus (66 docs).
    let r = Retriever::build();
    r.index().clone()
}

#[test]
fn engine_search_matches_reference_on_the_seed_corpus() {
    let ix = corpus_index();
    for width in [1usize, 4] {
        for q in QUERIES {
            for k in [1usize, 15, 1000] {
                let engine = at_width(width, || bits(&ix.search(q, k)));
                let spec = bits(&reference::search(&ix, q, k));
                assert_eq!(engine, spec, "width={width} k={k} q={q:?}");
            }
        }
    }
}

#[test]
fn engine_batch_matches_reference_on_the_seed_corpus() {
    let ix = corpus_index();
    let queries: Vec<String> = QUERIES.iter().map(|q| q.to_string()).collect();
    let spec: Vec<Vec<(u32, usize)>> = reference::search_batch(&ix, &queries, 15)
        .iter()
        .map(|hits| bits(hits))
        .collect();
    for width in [1usize, 4] {
        let engine: Vec<Vec<(u32, usize)>> = at_width(width, || {
            ix.search_batch(&queries, 15)
                .iter()
                .map(|hits| bits(hits))
                .collect()
        });
        assert_eq!(engine, spec, "width={width}");
    }
}

/// Same index, same query, narrow vs wide pools: the sharded scan must not
/// leak thread count into results (supplements tests/parallel_equivalence.rs
/// with the full-size corpus, which crosses the sharding threshold when
/// chunked finely).
#[test]
fn fine_chunked_corpus_is_thread_count_invariant() {
    // Rebuild the corpus with small chunks (replicated under distinct doc
    // ids as needed) so the index exceeds the engine's sharding threshold
    // and the parallel scan path runs.
    let mut ix = VectorIndex::new(ioembed::Embedder::default(), 32, 4);
    let mut rep = 0;
    while ix.len() <= 1024 {
        for doc in knowledge::corpus() {
            let text = format!("{}. {}", doc.title, doc.body);
            ix.add_document(&format!("{}-r{rep}", doc.id), &doc.citation(), &text);
        }
        rep += 1;
        assert!(rep < 32, "corpus replication runaway");
    }
    for q in QUERIES {
        let narrow = at_width(1, || bits(&ix.search(q, 15)));
        let wide = at_width(4, || bits(&ix.search(q, 15)));
        let spec = bits(&reference::search(&ix, q, 15));
        assert_eq!(narrow, spec, "narrow diverged on {q:?}");
        assert_eq!(wide, spec, "wide diverged on {q:?}");
    }
}
