//! Determinism under injected faults, and deadline shedding.
//!
//! The fault layer perturbs *when* a completion arrives (heavy-tailed
//! latency, injected timeouts/rate-limits/truncations forcing retries)
//! but never *what* it says: content draws are keyed by (model, prompt,
//! salt) only, and usage commits exactly once per delivered completion.
//! So a faulted service — at any worker count or intra-job pool width —
//! must produce diagnoses byte-identical to a fault-free run, with
//! identical per-job accounting.

use ioagentd::{DiagnosisService, JobFailure, JobRequest, ResiliencePolicy, ServiceConfig};
use simllm::{FaultPlan, FaultSpec, LatencyProfile, TailSpec};
use std::time::Duration;
use tracebench::TraceBench;

/// Latencies in microseconds, fault probabilities high enough that a
/// 6-job batch reliably exercises retries, and enough retry budget that
/// every job (deterministically) recovers.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .with_profile(LatencyProfile::flat(Duration::from_micros(20)))
        .with_tail(TailSpec {
            probability: 0.1,
            lognormal_sigma: 0.8,
            median_multiplier: 10.0,
            pareto_alpha: 1.3,
            pareto_weight: 0.25,
            max_multiplier: 100.0,
        })
        .with_faults(FaultSpec {
            timeout_probability: 0.05,
            timeout: Duration::from_micros(200),
            rate_limit_probability: 0.05,
            retry_after: Duration::from_micros(100),
            truncate_probability: 0.05,
        })
}

fn chaos_policy() -> ResiliencePolicy {
    ResiliencePolicy::default()
        .retries(16)
        .backoff(Duration::from_micros(50), Duration::from_micros(500))
}

fn workload(suite: &TraceBench) -> Vec<JobRequest> {
    let ids = [
        "sb01_small_io",
        "sb03_metadata_storm",
        "sb07_stdio_heavy",
        "io500_easy_posix_small_1",
        "ra_amrex",
        "ra_hacc_io",
    ];
    ids.iter()
        .enumerate()
        .map(|(i, id)| {
            let entry = suite.get(id).unwrap();
            let model = if i % 2 == 0 { "gpt-4o" } else { "gpt-4o-mini" };
            JobRequest::new(*id, entry.trace.clone(), model)
        })
        .collect()
}

#[test]
fn faulted_service_is_byte_identical_to_fault_free_at_any_width() {
    let suite = TraceBench::generate();
    let jobs = workload(&suite);

    // The reference: no faults, no resilience machinery at all.
    let clean = DiagnosisService::start(ServiceConfig::with_workers(2).cache_capacity(0));
    let reference = clean.run_batch(jobs.clone()).unwrap();
    let index = clean.retriever();

    // Faulted, narrow: one worker, intra-job pool width 1.
    let narrow = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(1)
            .cache_capacity(0)
            .fault_plan(chaos_plan())
            .resilience(chaos_policy()),
        index.clone(),
    );
    // Faulted, wide: four workers, intra-job pool width 4 — the same
    // jobs race through different threads and retry schedules.
    let wide = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(4)
            .intra_threads(4)
            .cache_capacity(0)
            .fault_plan(chaos_plan())
            .resilience(chaos_policy()),
        index,
    );

    let a = narrow.run_batch(jobs.clone()).unwrap();
    let b = wide.run_batch(jobs.clone()).unwrap();
    for ((r, x), y) in reference.iter().zip(&a).zip(&b) {
        assert!(x.failure.is_none(), "{}: {:?}", x.id, x.failure);
        assert!(y.failure.is_none(), "{}: {:?}", y.id, y.failure);
        for (arm, faulted) in [("narrow", x), ("wide", y)] {
            assert_eq!(
                faulted.diagnosis.text, r.diagnosis.text,
                "{} text diverged under faults ({arm})",
                r.id
            );
            assert_eq!(faulted.diagnosis.issues, r.diagnosis.issues, "{}", r.id);
            assert_eq!(
                faulted.diagnosis.references, r.diagnosis.references,
                "{}",
                r.id
            );
            // Commit-once usage: faulted attempts charge nothing, so the
            // per-job accounting matches the fault-free run exactly.
            assert_eq!(
                faulted.metrics.llm_calls, r.metrics.llm_calls,
                "{} call count diverged ({arm})",
                r.id
            );
            assert_eq!(faulted.metrics.cost_usd, r.metrics.cost_usd, "{}", r.id);
        }
    }

    // The plan actually bit: at least one retry happened somewhere (the
    // probabilities above make a fault-free 6-job batch essentially
    // impossible, and the draws are deterministic, so this is stable).
    let exercised = narrow.stats().retries + wide.stats().retries;
    assert!(exercised > 0, "fault plan never fired; the test is vacuous");
    clean.shutdown();
    narrow.shutdown();
    wide.shutdown();
}

#[test]
fn jobs_expired_in_queue_are_shed_at_dequeue() {
    let suite = TraceBench::generate();
    let entry = suite.get("sb01_small_io").unwrap();
    // One worker, and each LLM call costs a simulated 20ms of RPC: the
    // first job occupies the worker long enough for the second job's
    // deadline to expire while it is still queued.
    let service = DiagnosisService::start(
        ServiceConfig::with_workers(1)
            .cache_capacity(16)
            .rpc_latency(Duration::from_millis(20)),
    );

    let mut slow = JobRequest::new("occupant", entry.trace.clone(), "gpt-4o-mini");
    slow.config.use_rag = false;
    // A different config than the occupant: distinct cache fingerprint,
    // so the final not-cached assertion can't be satisfied by the
    // occupant's own (legitimate) cache entry.
    let mut doomed = JobRequest::new("doomed", entry.trace.clone(), "gpt-4o-mini")
        .with_deadline(Duration::from_millis(5));
    doomed.config.use_rag = false;
    doomed.config.top_k = 5;

    let first = service.submit(slow).unwrap();
    let second = service.submit(doomed.clone()).unwrap();
    let occupant = first.wait();
    let shed = second.wait();

    assert!(occupant.failure.is_none(), "{:?}", occupant.failure);
    assert_eq!(shed.failure, Some(JobFailure::DeadlineExceededQueued));
    assert_eq!(shed.failure.unwrap().error_kind(), "deadline_exceeded");
    assert!(
        shed.diagnosis.text.is_empty(),
        "a shed job must not execute"
    );
    assert_eq!(shed.metrics.llm_calls, 0, "a shed job must not burn spend");

    let stats = service.stats();
    assert_eq!(stats.shed_total, 1);
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, 1, "only the occupant completed");

    // A shed job is never cached: the same request without a deadline
    // must execute fresh and succeed.
    doomed.deadline = None;
    let retried = service.submit(doomed).unwrap().wait();
    assert!(retried.failure.is_none());
    assert!(
        !retried.cached,
        "a failed job must never populate the cache"
    );
    assert!(!retried.diagnosis.text.is_empty());
    service.shutdown();
}
