//! Property-based tests over the core data structures and invariants.

use darshan::counters::{size_bin_index, Module, SIZE_BINS};
use darshan::{DarshanTrace, JobHeader, Record};
use ioembed::{cosine, Embedder};
use proptest::collection;
use proptest::prelude::*;
use rayon::prelude::*;
use vecindex::chunk_text;

proptest! {
    /// The embedder never panics and always produces unit-or-zero vectors.
    #[test]
    fn embeddings_are_normalised(text in ".{0,400}") {
        let e = Embedder::default();
        let v = e.embed(&text);
        prop_assert_eq!(v.len(), ioembed::DEFAULT_DIM);
        let n = ioembed::norm(&v);
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-3);
    }

    /// Cosine similarity is symmetric and bounded for arbitrary texts.
    #[test]
    fn cosine_symmetric_bounded(a in "[a-z ]{0,200}", b in "[a-z ]{0,200}") {
        let e = Embedder::default();
        let va = e.embed(&a);
        let vb = e.embed(&b);
        let s1 = cosine(&va, &vb);
        let s2 = cosine(&vb, &va);
        prop_assert!((s1 - s2).abs() < 1e-5);
        prop_assert!((-1.001..=1.001).contains(&s1));
    }

    /// Chunking covers every token exactly: first chunk starts at 0, the
    /// last ends at the final token, and consecutive chunks overlap by the
    /// configured amount (except possibly the last).
    #[test]
    fn chunking_covers_all_tokens(
        n_tokens in 0usize..600,
        chunk_size in 8usize..64,
        overlap in 0usize..7,
    ) {
        let text: String = (0..n_tokens).map(|i| format!("t{i} ")).collect();
        let chunks = chunk_text(&text, chunk_size, overlap);
        if n_tokens == 0 {
            prop_assert!(chunks.is_empty());
        } else {
            prop_assert_eq!(chunks[0].start_token, 0);
            let last = chunks.last().unwrap();
            let final_token = format!("t{}", n_tokens - 1);
            let ends_correctly = last.text.ends_with(&final_token);
            prop_assert!(ends_correctly, "last chunk must end with {}", final_token);
            for w in chunks.windows(2) {
                prop_assert_eq!(w[1].start_token, w[0].start_token + chunk_size - overlap);
            }
        }
    }

    /// Size-bin classification is monotone and total.
    #[test]
    fn size_bins_monotone(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(size_bin_index(lo) <= size_bin_index(hi));
        prop_assert!(size_bin_index(hi) < SIZE_BINS.len());
    }

    /// The darshan text format round-trips arbitrary well-formed records.
    #[test]
    fn darshan_roundtrip_arbitrary_counters(
        rank in -1i64..64,
        record_id in 1u64..u64::MAX,
        opens in 0i64..1_000_000,
        bytes in 0i64..i64::MAX / 2,
        time in 0.0f64..1.0e6,
    ) {
        let mut t = DarshanTrace::new(JobHeader::new("./prop", 8, 100.0));
        let mut r = Record::new(Module::Posix, rank, record_id, "/scratch/prop");
        r.set_ic("POSIX_OPENS", opens);
        r.set_ic("POSIX_BYTES_READ", bytes);
        r.set_fc("POSIX_F_READ_TIME", time);
        t.push(r);
        let text = darshan::write::write_text(&t);
        let back = darshan::parse::parse_text(&text).unwrap();
        let rec = back.records_for(Module::Posix).next().unwrap();
        prop_assert_eq!(rec.ic("POSIX_OPENS"), opens);
        prop_assert_eq!(rec.ic("POSIX_BYTES_READ"), bytes);
        prop_assert!((rec.fc("POSIX_F_READ_TIME") - time).abs() <= 1e-6 * time.max(1.0));
        prop_assert_eq!(rec.rank, rank);
    }

    /// Quality scores stay in [0, 1] for arbitrary report text.
    #[test]
    fn quality_scores_bounded(text in ".{0,600}") {
        let f = simllm::quality::features(&text);
        let u = simllm::quality::utility_score(&f);
        let i = simllm::quality::interpretability_score(&f);
        prop_assert!((0.0..=1.0).contains(&u), "utility {}", u);
        prop_assert!((0.0..=1.0).contains(&i), "interpretability {}", i);
    }

    /// The LLM simulator never panics on arbitrary prompts and always
    /// reports coherent token accounting.
    #[test]
    fn simllm_total_on_arbitrary_prompts(prompt in ".{0,500}", salt in 0u64..50) {
        use simllm::{CompletionRequest, LanguageModel, SimLlm};
        let m = SimLlm::new("gpt-4o-mini");
        let c = m.complete(&CompletionRequest::new("sys", &prompt).with_salt(salt));
        prop_assert!(c.retention >= 0.0 && c.retention <= 1.0);
        prop_assert!(c.cost_usd >= 0.0);
    }

    /// Ordered parallel `collect` over the rayon shim preserves input
    /// order and length for arbitrary vectors at any pool width, both for
    /// borrowing (`par_iter`) and consuming (`into_par_iter`) iteration.
    #[test]
    fn par_collect_preserves_order_and_length(
        xs in collection::vec(0u64..u64::MAX, 0..300),
        width in 1usize..6,
    ) {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(width).build().unwrap();
        let expected: Vec<u64> = xs.iter().map(|x| x.wrapping_mul(31).rotate_left(7)).collect();
        let borrowed: Vec<u64> = pool.install(|| {
            xs.par_iter().map(|x| x.wrapping_mul(31).rotate_left(7)).collect()
        });
        prop_assert_eq!(&borrowed, &expected);
        let owned: Vec<u64> = pool.install(|| {
            xs.clone().into_par_iter().map(|x| x.wrapping_mul(31).rotate_left(7)).collect()
        });
        prop_assert_eq!(&owned, &expected);
        let indexed: Vec<(usize, u64)> = pool.install(|| {
            xs.par_iter().enumerate().map(|(i, &x)| (i, x)).collect()
        });
        prop_assert!(indexed.iter().enumerate().all(|(i, &(j, x))| i == j && x == xs[i]));
    }

    /// Parallel range collection matches the sequential range exactly.
    #[test]
    fn par_range_collect_matches_sequential(
        start in 0u64..100_000,
        len in 0u64..2_000,
        width in 1usize..6,
    ) {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(width).build().unwrap();
        let par: Vec<u64> = pool.install(|| (start..start + len).into_par_iter().collect());
        let seq: Vec<u64> = (start..start + len).collect();
        prop_assert_eq!(par, seq);
    }

    /// Darshan module aggregation never produces negative fractions.
    #[test]
    fn aggregate_fractions_bounded(
        reads in 0i64..100_000,
        small in 0i64..100_000,
        seq in 0i64..100_000,
    ) {
        let mut t = DarshanTrace::new(JobHeader::new("./p", 4, 60.0));
        let mut r = Record::new(Module::Posix, -1, 1, "/f");
        r.set_ic("POSIX_READS", reads);
        r.set_ic("POSIX_SIZE_READ_0_100", small);
        r.set_ic("POSIX_SEQ_READS", seq);
        t.push(r);
        if let Some(agg) = darshan::derive::aggregate(&t, Module::Posix) {
            for v in [agg.small_read_fraction(), agg.seq_read_fraction(), agg.misaligned_fraction()] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}

/// A panicking closure inside a parallel `map` propagates to the caller
/// (matching rayon semantics) and releases the pool's worker budget, so
/// the pool neither deadlocks nor degrades to sequential afterwards.
#[test]
fn par_panicking_closure_propagates_without_deadlocking_the_pool() {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.install(|| {
            (0..128u64)
                .into_par_iter()
                .map(|i| {
                    if i == 77 {
                        panic!("injected failure")
                    } else {
                        i
                    }
                })
                .collect::<Vec<_>>()
        })
    }));
    assert!(caught.is_err(), "the panic must reach the caller");
    // The same pool must still execute (and still in order): a leaked
    // worker token or a wedged chunk queue would hang or corrupt this.
    let after: Vec<u64> = pool.install(|| (0..128u64).into_par_iter().map(|i| i + 1).collect());
    assert_eq!(after, (1..=128).collect::<Vec<u64>>());
}

proptest! {
    /// Heap-based top-k selection is *exactly* the full-sort-and-truncate
    /// specification — `sort_by(total_cmp desc, entry_idx asc)` +
    /// `truncate(k)` — including NaN scores (both signs), signed zeros,
    /// infinities, and duplicate-score ties. This is the ISSUE-4 pin that
    /// lets `VectorIndex::search` keep 15 of 10k entries in O(n log k)
    /// without any behavioural drift from the seed path.
    #[test]
    fn heap_top_k_matches_sort_spec(
        picks in collection::vec(0usize..10, 0..120),
        k in 0usize..25,
    ) {
        // A palette heavy in pathological values and duplicates.
        const PALETTE: [f32; 10] = [
            f32::NAN, -0.0, 0.0, 0.5, 0.5, -0.5, 1.0, -1.0,
            f32::INFINITY, f32::NEG_INFINITY,
        ];
        let scores: Vec<f32> = picks.iter().map(|&i| {
            if i == 0 { -f32::NAN } else { PALETTE[i] }
        }).collect();

        let mut expected: Vec<vecindex::SearchHit> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| vecindex::SearchHit { score: s, entry_idx: i })
            .collect();
        expected.sort_by(|a, b| {
            b.score.total_cmp(&a.score).then(a.entry_idx.cmp(&b.entry_idx))
        });
        expected.truncate(k);

        let got = vecindex::top_k(&scores, k);
        let e: Vec<(u32, usize)> =
            expected.iter().map(|h| (h.score.to_bits(), h.entry_idx)).collect();
        let g: Vec<(u32, usize)> =
            got.iter().map(|h| (h.score.to_bits(), h.entry_idx)).collect();
        prop_assert_eq!(g, e);
    }

    /// The allocation-free counting scan agrees with materialising the
    /// token vector, for arbitrary printable-ASCII soup.
    #[test]
    fn token_count_matches_tokenize_len(text in ".{0,400}") {
        prop_assert_eq!(
            ioembed::token_count(&text),
            ioembed::tokenize(&text).len()
        );
    }

    /// Embeddings are bit-stable across calls for arbitrary texts — the
    /// determinism regression the sorted tf-fold fixed (the seed-era
    /// HashMap iteration made long-text embeddings vary call to call).
    #[test]
    fn embeddings_are_bit_stable_across_calls(text in "[a-z0-9 ]{0,500}") {
        let e = Embedder::default();
        let a: Vec<u32> = e.embed(&text).iter().map(|f| f.to_bits()).collect();
        let b: Vec<u32> = e.embed(&text).iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(a, b);
    }
}
