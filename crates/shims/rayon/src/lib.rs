//! Offline shim standing in for `rayon` with *real* multi-threaded
//! execution. `par_iter()` / `into_par_iter()` split slices, vectors, and
//! ranges into per-worker chunks, execute them on scoped threads drawn from
//! a lazily-initialised global pool (sized from `available_parallelism`,
//! overridable via `RAYON_NUM_THREADS`), and reassemble every `map →
//! collect` in input order — so results are bit-identical to the sequential
//! path no matter the thread count or scheduling.
//!
//! Scheduling is a self-balancing chunk queue: each parallel operation cuts
//! its input into more chunks than workers and the workers claim chunks
//! from a shared atomic cursor, so a slow chunk does not stall the rest
//! (poor man's work stealing, without the per-task deques). Nested
//! parallel calls draw worker tokens from the same pool budget: a `par_iter`
//! inside a `par_iter` runs inline once the budget is spent, which caps the
//! total live threads at the pool width however deep the nesting goes.
//! Panics propagate to the caller of `collect`/`join` (after in-flight
//! chunks finish) and always return their worker tokens, so a panicking
//! closure can neither deadlock nor shrink the pool.
//!
//! This shim pairs with the `ioagentd` worker pool: the daemon parallelises
//! *across* diagnosis jobs, the shim parallelises the hot loops *inside*
//! one job (per-fragment diagnosis, retrieval reflection, merge levels,
//! judge traces). See README "Parallelism model" for the thread-budget
//! interaction.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Chunks handed out per live worker: more chunks than workers lets fast
/// workers claim extra chunks, balancing uneven per-item cost.
const CHUNKS_PER_WORKER: usize = 4;

fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Pool sizing and worker-token budget
// ---------------------------------------------------------------------------

/// Shared state of one pool: a fixed width and the spare worker tokens
/// parallel operations may still claim (the calling thread always
/// participates, so `width - 1` tokens exist).
#[derive(Debug)]
struct PoolState {
    width: usize,
    spare: AtomicUsize,
}

impl PoolState {
    fn new(width: usize) -> Arc<PoolState> {
        let width = width.max(1);
        Arc::new(PoolState {
            width,
            spare: AtomicUsize::new(width - 1),
        })
    }

    /// Claim up to `want` spare worker tokens (possibly zero).
    fn acquire(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut current = self.spare.load(Ordering::Acquire);
        loop {
            let take = current.min(want);
            if take == 0 {
                return 0;
            }
            match self.spare.compare_exchange_weak(
                current,
                current - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return take,
                Err(observed) => current = observed,
            }
        }
    }

    fn release(&self, tokens: usize) {
        if tokens > 0 {
            self.spare.fetch_add(tokens, Ordering::AcqRel);
        }
    }
}

/// Returns claimed worker tokens on drop, so a panicking parallel operation
/// cannot leak pool capacity (later operations would silently go serial).
struct BudgetGuard<'a> {
    state: &'a PoolState,
    tokens: usize,
}

impl Drop for BudgetGuard<'_> {
    fn drop(&mut self) {
        self.state.release(self.tokens);
    }
}

/// Parse a `RAYON_NUM_THREADS`-style width. `0` clamps to 1 (a pool always
/// has the calling thread); non-numeric values are ignored.
fn parse_env_width(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// Default pool width: `RAYON_NUM_THREADS` if set and parseable, else the
/// machine's available parallelism.
fn default_width() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| parse_env_width(&v))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The lazily-initialised global pool (first parallel operation wins).
fn global_state() -> &'static Arc<PoolState> {
    static GLOBAL: OnceLock<Arc<PoolState>> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolState::new(default_width()))
}

thread_local! {
    /// Pool the current thread is bound to (via [`ThreadPool::install`] or
    /// by being a worker of an in-flight operation); `None` = global pool.
    static CURRENT: RefCell<Option<Arc<PoolState>>> = const { RefCell::new(None) };
}

fn current_state() -> Arc<PoolState> {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| Arc::clone(global_state()))
}

/// Width of the pool the calling thread would run parallel work on.
pub fn current_num_threads() -> usize {
    current_state().width
}

/// Restores the previous pool binding on drop (panic-safe).
struct BindGuard {
    previous: Option<Arc<PoolState>>,
}

fn bind(state: Arc<PoolState>) -> BindGuard {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(state));
    BindGuard { previous }
}

impl Drop for BindGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        CURRENT.with(|c| *c.borrow_mut() = previous);
    }
}

// ---------------------------------------------------------------------------
// Execution engine
// ---------------------------------------------------------------------------

/// Evenly partition `len` items into at most `chunks` non-empty spans.
fn chunk_bounds(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.clamp(1, len.max(1));
    let base = len / chunks;
    let rem = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < rem);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Run a parallel source to completion, returning its items in input order.
fn run_to_vec<S: ParallelSource>(source: S) -> Vec<S::Item> {
    let len = source.par_len();
    if len == 0 {
        // Empty input returns before any pool is consulted (or even
        // lazily initialised).
        return Vec::new();
    }
    let state = current_state();
    let extra = state.acquire(state.width.min(len).saturating_sub(1));
    let _budget = BudgetGuard {
        state: &state,
        tokens: extra,
    };
    if extra == 0 {
        // Width 1, a single item, or the budget was already claimed by an
        // enclosing parallel operation: run inline on the calling thread.
        let mut out = Vec::with_capacity(len);
        for (_, sub) in source.par_split(1) {
            out.extend(sub);
        }
        return out;
    }

    let workers = extra + 1; // claimed tokens + the calling thread
    let n_chunks = len.min(workers * CHUNKS_PER_WORKER);
    // Ordered chunk queue: workers claim chunk indices from the cursor and
    // deposit results into the slot of the same index, so concatenation
    // reproduces input order exactly.
    let tasks: Vec<Mutex<Option<S::SubIter>>> = source
        .par_split(n_chunks)
        .into_iter()
        .map(|(_, sub)| Mutex::new(Some(sub)))
        .collect();
    let results: Vec<Mutex<Vec<S::Item>>> =
        (0..tasks.len()).map(|_| Mutex::new(Vec::new())).collect();
    let cursor = AtomicUsize::new(0);

    let run_chunks = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= tasks.len() {
            break;
        }
        let sub = lock(&tasks[i]).take().expect("chunk claimed twice");
        let items: Vec<S::Item> = sub.collect();
        *lock(&results[i]) = items;
    };

    std::thread::scope(|scope| {
        for _ in 0..extra {
            let worker_pool = Arc::clone(&state);
            let run_chunks = &run_chunks;
            scope.spawn(move || {
                // Workers inherit the pool binding: nested parallel calls
                // draw from the same (already spent) budget instead of
                // spawning a fresh thread explosion.
                let _bind = bind(worker_pool);
                run_chunks();
            });
        }
        run_chunks();
        // A panic in any worker (or in the calling thread's chunks above)
        // propagates out of the scope once all threads have joined.
    });

    let mut out = Vec::with_capacity(len);
    for slot in results {
        out.extend(slot.into_inner().unwrap_or_else(PoisonError::into_inner));
    }
    out
}

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Panics in either closure propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let state = current_state();
    let extra = state.acquire(1);
    let _budget = BudgetGuard {
        state: &state,
        tokens: extra,
    };
    if extra == 0 {
        return (oper_a(), oper_b());
    }
    std::thread::scope(|scope| {
        let worker_pool = Arc::clone(&state);
        let handle = scope.spawn(move || {
            let _bind = bind(worker_pool);
            oper_b()
        });
        let ra = oper_a();
        match handle.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

// ---------------------------------------------------------------------------
// Parallel iterator sources and adapters
// ---------------------------------------------------------------------------

/// Parallel iterator machinery: sources over slices / vectors / ranges and
/// the `map` / `enumerate` adapters, all splittable into ordered chunks.
pub mod iter {
    use super::{chunk_bounds, run_to_vec};
    use std::ops::Range;

    /// Something splittable into ordered, independently-runnable chunks —
    /// the internal contract every parallel iterator satisfies.
    pub trait ParallelSource: Sized {
        /// Item the iterator yields.
        type Item: Send;
        /// Sequential iterator over one chunk.
        type SubIter: Iterator<Item = Self::Item> + Send;

        /// Exact number of items.
        fn par_len(&self) -> usize;

        /// Split into at most `chunks` ordered pieces; each entry carries
        /// the global index of its first item.
        fn par_split(self, chunks: usize) -> Vec<(usize, Self::SubIter)>;
    }

    /// User-facing adapter surface, blanket-implemented for every source.
    pub trait ParallelIterator: ParallelSource {
        /// Parallel map. The closure is shared across worker threads
        /// (`Sync + Send`) and cloned into each chunk (`Clone` — free for
        /// the usual reference-capturing closures).
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send + Clone,
        {
            Map { base: self, f }
        }

        /// Attach the global input index to every item.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Execute in parallel and collect in input order. Output is
        /// bit-identical to the sequential `iter()` equivalent.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_source(self)
        }
    }

    impl<S: ParallelSource> ParallelIterator for S {}

    /// Collection types a parallel iterator can terminate into.
    pub trait FromParallelIterator<T: Send>: Sized {
        /// Build from a parallel source (items arrive in input order).
        fn from_par_source<S: ParallelSource<Item = T>>(source: S) -> Self;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_source<S: ParallelSource<Item = T>>(source: S) -> Self {
            run_to_vec(source)
        }
    }

    /// `.par_iter()` on `&self`: borrowing parallel iteration.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowing parallel iterator.
        type Iter: ParallelIterator;

        /// Parallel iterator over shared references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = SliceParIter<'data, T>;
        fn par_iter(&'data self) -> SliceParIter<'data, T> {
            SliceParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = SliceParIter<'data, T>;
        fn par_iter(&'data self) -> SliceParIter<'data, T> {
            SliceParIter { slice: self }
        }
    }

    /// `.into_par_iter()`: consuming parallel iteration.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// The consuming parallel iterator.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Convert into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecParIter<T>;
        fn into_par_iter(self) -> VecParIter<T> {
            VecParIter { vec: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    #[derive(Debug)]
    pub struct SliceParIter<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParallelSource for SliceParIter<'data, T> {
        type Item = &'data T;
        type SubIter = std::slice::Iter<'data, T>;

        fn par_len(&self) -> usize {
            self.slice.len()
        }

        fn par_split(self, chunks: usize) -> Vec<(usize, Self::SubIter)> {
            chunk_bounds(self.slice.len(), chunks)
                .into_iter()
                .map(|(start, end)| (start, self.slice[start..end].iter()))
                .collect()
        }
    }

    /// Consuming parallel iterator over a vector.
    #[derive(Debug)]
    pub struct VecParIter<T> {
        vec: Vec<T>,
    }

    impl<T: Send> ParallelSource for VecParIter<T> {
        type Item = T;
        type SubIter = std::vec::IntoIter<T>;

        fn par_len(&self) -> usize {
            self.vec.len()
        }

        fn par_split(self, chunks: usize) -> Vec<(usize, Self::SubIter)> {
            let bounds = chunk_bounds(self.vec.len(), chunks);
            let mut rest = self.vec;
            let mut out: Vec<(usize, std::vec::IntoIter<T>)> = Vec::with_capacity(bounds.len());
            for &(start, _) in bounds.iter().rev() {
                let tail = rest.split_off(start);
                out.push((start, tail.into_iter()));
            }
            out.reverse();
            out
        }
    }

    /// Consuming parallel iterator over an integer range.
    #[derive(Debug)]
    pub struct RangeParIter<T> {
        range: Range<T>,
    }

    macro_rules! range_par_iter {
        ($($t:ty),* $(,)?) => {$(
            impl ParallelSource for RangeParIter<$t> {
                type Item = $t;
                type SubIter = Range<$t>;

                fn par_len(&self) -> usize {
                    if self.range.end <= self.range.start {
                        0
                    } else {
                        (self.range.end as i128 - self.range.start as i128) as usize
                    }
                }

                fn par_split(self, chunks: usize) -> Vec<(usize, Range<$t>)> {
                    let len = self.par_len();
                    chunk_bounds(len, chunks)
                        .into_iter()
                        .map(|(start, end)| {
                            (
                                start,
                                (self.range.start + start as $t)..(self.range.start + end as $t),
                            )
                        })
                        .collect()
                }
            }

            impl IntoParallelIterator for Range<$t> {
                type Item = $t;
                type Iter = RangeParIter<$t>;
                fn into_par_iter(self) -> RangeParIter<$t> {
                    RangeParIter { range: self }
                }
            }
        )*};
    }
    range_par_iter!(u32, u64, usize, i32, i64);

    /// Index-attaching adapter (global input indices, chunk-aware).
    #[derive(Debug)]
    pub struct Enumerate<S> {
        base: S,
    }

    /// One chunk of an [`Enumerate`], counting from its global offset.
    #[derive(Debug)]
    pub struct EnumerateSub<I> {
        inner: I,
        next: usize,
    }

    impl<I: Iterator> Iterator for EnumerateSub<I> {
        type Item = (usize, I::Item);
        fn next(&mut self) -> Option<(usize, I::Item)> {
            let item = self.inner.next()?;
            let index = self.next;
            self.next += 1;
            Some((index, item))
        }
    }

    impl<S: ParallelSource> ParallelSource for Enumerate<S> {
        type Item = (usize, S::Item);
        type SubIter = EnumerateSub<S::SubIter>;

        fn par_len(&self) -> usize {
            self.base.par_len()
        }

        fn par_split(self, chunks: usize) -> Vec<(usize, Self::SubIter)> {
            self.base
                .par_split(chunks)
                .into_iter()
                .map(|(start, inner)| (start, EnumerateSub { inner, next: start }))
                .collect()
        }
    }

    /// Mapping adapter; the closure is cloned into each chunk.
    #[derive(Debug)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    /// One chunk of a [`Map`].
    #[derive(Debug)]
    pub struct MapSub<I, F> {
        inner: I,
        f: F,
    }

    impl<I, F, R> Iterator for MapSub<I, F>
    where
        I: Iterator,
        F: Fn(I::Item) -> R,
    {
        type Item = R;
        fn next(&mut self) -> Option<R> {
            self.inner.next().map(&self.f)
        }
    }

    impl<S, F, R> ParallelSource for Map<S, F>
    where
        S: ParallelSource,
        R: Send,
        F: Fn(S::Item) -> R + Sync + Send + Clone,
    {
        type Item = R;
        type SubIter = MapSub<S::SubIter, F>;

        fn par_len(&self) -> usize {
            self.base.par_len()
        }

        fn par_split(self, chunks: usize) -> Vec<(usize, Self::SubIter)> {
            let f = self.f;
            self.base
                .par_split(chunks)
                .into_iter()
                .map(|(start, inner)| {
                    (
                        start,
                        MapSub {
                            inner,
                            f: f.clone(),
                        },
                    )
                })
                .collect()
        }
    }
}

/// Everything `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

use iter::ParallelSource;

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder
// ---------------------------------------------------------------------------

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder (default width: `RAYON_NUM_THREADS` or the machine).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Request an explicit pool width; `0` keeps the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Threads are not spawned up front: the pool is a
    /// width plus a worker-token budget, and operations running under
    /// [`ThreadPool::install`] spawn scoped workers against that budget.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            state: PoolState::new(width),
        })
    }
}

/// A pool: parallel operations inside [`ThreadPool::install`] use this
/// pool's width and budget instead of the global one.
#[derive(Debug)]
pub struct ThreadPool {
    state: Arc<PoolState>,
}

impl ThreadPool {
    /// Run `op` bound to this pool. With `num_threads(1)` this forces every
    /// nested parallel operation to run sequentially on the calling thread
    /// — the property the equivalence tests pin the parallel path against.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _bind = bind(Arc::clone(&self.state));
        op()
    }

    /// This pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.state.width
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(width: usize) -> super::ThreadPool {
        super::ThreadPoolBuilder::new()
            .num_threads(width)
            .build()
            .unwrap()
    }

    #[test]
    fn par_iter_matches_sequential() {
        let v: Vec<i32> = (0..257).collect();
        for width in [1, 2, 4, 9] {
            let doubled: Vec<i32> = pool(width).install(|| v.par_iter().map(|x| x * 2).collect());
            assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn enumerate_carries_global_indices_across_chunks() {
        let v: Vec<u64> = (0..1000).collect();
        let indexed: Vec<(usize, u64)> =
            pool(4).install(|| v.par_iter().enumerate().map(|(i, &x)| (i, x + 1)).collect());
        for (i, (idx, val)) in indexed.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*val, i as u64 + 1);
        }
    }

    #[test]
    fn into_par_iter_consumes_vec_in_order() {
        let v: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let expected = v.clone();
        let out: Vec<String> = pool(4).install(|| v.into_par_iter().collect());
        assert_eq!(out, expected);
    }

    #[test]
    fn range_collect_matches_sequential() {
        let seq: Vec<u64> = (10..977).collect();
        let par: Vec<u64> = pool(4).install(|| (10u64..977).into_par_iter().collect());
        assert_eq!(par, seq);
        let empty: Vec<i32> = pool(4).install(|| (5i32..5).into_par_iter().collect());
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_input_returns_empty_without_touching_the_pool() {
        // `run_to_vec` returns before consulting (or lazily initialising)
        // any pool state, so empty inputs cost nothing.
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (0usize..0).into_par_iter().collect();
        assert!(out.is_empty());
    }

    #[test]
    fn pool_installs_and_reports_width() {
        let p = pool(8);
        assert_eq!(p.current_num_threads(), 8);
        assert_eq!(p.install(|| 7), 7);
        assert_eq!(p.install(super::current_num_threads), 8);
    }

    #[test]
    fn parallel_chunks_really_run_on_worker_threads() {
        // Each item sleeps, so the calling thread cannot drain the whole
        // chunk queue before the (already spawned) workers get scheduled —
        // with instant items this raced the cursor and flaked on loaded
        // single-core hosts.
        let caller = std::thread::current().id();
        let v: Vec<usize> = (0..16).collect();
        let seen: Vec<bool> = pool(4).install(|| {
            v.par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    std::thread::current().id() != caller
                })
                .collect()
        });
        assert!(
            seen.iter().any(|&off_caller| off_caller),
            "a 4-wide pool over 16 sleeping items must use at least one worker thread"
        );
    }

    #[test]
    fn env_width_parsing_and_builder_sizing() {
        // `RAYON_NUM_THREADS` parsing: 0 clamps to 1, garbage is ignored.
        assert_eq!(super::parse_env_width("0"), Some(1));
        assert_eq!(super::parse_env_width(" 7 "), Some(7));
        assert_eq!(super::parse_env_width("three"), None);
        assert_eq!(super::parse_env_width("-2"), None);

        // The builder honours the environment for its default width. All
        // env manipulation lives in this single test to avoid races with
        // the rest of the (parallel) test binary; the original value is
        // restored at the end.
        let saved = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", "3");
        assert_eq!(
            super::ThreadPoolBuilder::new()
                .build()
                .unwrap()
                .current_num_threads(),
            3
        );
        std::env::set_var("RAYON_NUM_THREADS", "0");
        assert_eq!(
            super::ThreadPoolBuilder::new()
                .build()
                .unwrap()
                .current_num_threads(),
            1
        );
        std::env::remove_var("RAYON_NUM_THREADS");
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(
            super::ThreadPoolBuilder::new()
                .build()
                .unwrap()
                .current_num_threads(),
            machine
        );
        // Explicit zero also falls back to the default width.
        assert_eq!(
            super::ThreadPoolBuilder::new()
                .num_threads(0)
                .build()
                .unwrap()
                .current_num_threads(),
            machine
        );
        match saved {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
    }

    #[test]
    fn nested_parallelism_stays_within_budget_and_correct() {
        let outer: Vec<u64> = (0..8).collect();
        let result: Vec<u64> = pool(2).install(|| {
            outer
                .par_iter()
                .map(|&x| {
                    // Nested parallel op: budget is spent, so this runs
                    // inline — but must still produce ordered results.
                    let inner: Vec<u64> = (0..100u64).into_par_iter().map(|i| i * x).collect();
                    inner.iter().sum()
                })
                .collect()
        });
        let expected: Vec<u64> = outer.iter().map(|&x| (0..100).sum::<u64>() * x).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        let (a, b) = pool(2).install(|| super::join(|| 1 + 1, || "b"));
        assert_eq!((a, b), (2, "b"));
        // Sequential fallback (width 1) gives the same answer.
        let (a, b) = pool(1).install(|| super::join(|| 1 + 1, || "b"));
        assert_eq!((a, b), (2, "b"));
    }

    #[test]
    fn join_propagates_panics_and_releases_budget() {
        let p = pool(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| super::join(|| 1, || panic!("side b")))
        }));
        assert!(result.is_err());
        // The worker token taken by the panicked join must be back.
        let counter = AtomicUsize::new(0);
        let (x, y) = p.install(|| {
            super::join(
                || counter.fetch_add(1, Ordering::SeqCst),
                || counter.fetch_add(1, Ordering::SeqCst),
            )
        });
        assert_eq!(x + y, 1); // 0 + 1 in either order
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn map_panic_propagates_and_pool_survives() {
        let p = pool(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..64usize)
                    .into_par_iter()
                    .map(|i| if i == 33 { panic!("boom at {i}") } else { i })
                    .collect::<Vec<_>>()
            })
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // Budget released on unwind: the same pool still computes.
        let after: Vec<usize> = p.install(|| (0..64usize).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(after, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }
}
