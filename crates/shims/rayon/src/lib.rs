//! Offline shim standing in for `rayon`. `par_iter()` returns the ordinary
//! sequential iterator, so every adapter (`map`, `enumerate`, `collect`,
//! ...) is available with identical, deterministic results. Genuine
//! multi-core execution in this workspace comes from the `ioagentd` worker
//! pool, which parallelises across whole diagnosis jobs (a coarser and more
//! effective grain than intra-trace rayon splits).

/// Sequential stand-ins for rayon's parallel iterator traits.
pub mod prelude {
    /// `.par_iter()` on `&self`, yielding a standard sequential iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// Iterator type returned by [`Self::par_iter`].
        type Iter;

        /// Sequential iterator under the parallel name.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.as_slice().iter()
        }
    }

    /// `.into_par_iter()`, yielding a standard sequential iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential iterator under the parallel name.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Item = T;
        type Iter = std::ops::Range<T>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Record the requested width (informational in the shim).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the (synchronous) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            _num_threads: self.num_threads,
        })
    }
}

/// Pool whose `install` simply runs the closure on the current thread —
/// exactly the semantics the workspace's determinism tests assert.
#[derive(Debug)]
pub struct ThreadPool {
    _num_threads: usize,
}

impl ThreadPool {
    /// Run `op` in the pool's scope.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let indexed: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(indexed[3], (3, 4));
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }
}
