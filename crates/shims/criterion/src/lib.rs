//! Offline shim standing in for `criterion`: a minimal wall-clock
//! benchmarking harness with criterion's API shape (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros).
//!
//! Reports mean / min / max per benchmark to stdout. When invoked by
//! `cargo test` (a `--test` argument is present), every benchmark body runs
//! exactly once so bench targets double as smoke tests.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Recorded per-sample durations (one closure call each).
    pub times: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording one duration per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // One warm-up call, then timed samples.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    samples: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Ignored in the shim (kept for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().name);
        let mut b = Bencher {
            samples: self.samples,
            test_mode: self.criterion.test_mode,
            times: Vec::new(),
        };
        f(&mut b);
        self.criterion.report(&label, &b);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().name);
        let mut b = Bencher {
            samples: self.samples,
            test_mode: self.criterion.test_mode,
            times: Vec::new(),
        };
        f(&mut b, input);
        self.criterion.report(&label, &b);
        self
    }

    /// Finish the group (cosmetic in the shim).
    pub fn finish(&mut self) {}
}

/// Things usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Build from process arguments (`--test` selects run-once mode, as
    /// `cargo test` passes for `harness = false` bench targets).
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_samples: 10,
        }
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            samples: self.default_samples,
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.default_samples,
            test_mode: self.test_mode,
            times: Vec::new(),
        };
        f(&mut b);
        self.report(name, &b);
        self
    }

    fn report(&self, label: &str, b: &Bencher) {
        if self.test_mode {
            println!("bench {label}: ok (test mode, 1 iteration)");
            return;
        }
        if b.times.is_empty() {
            println!("bench {label}: no samples recorded");
            return;
        }
        let total: Duration = b.times.iter().sum();
        let mean = total / b.times.len() as u32;
        let min = *b.times.iter().min().unwrap();
        let max = *b.times.iter().max().unwrap();
        println!(
            "bench {label}: mean {} (min {}, max {}, {} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            b.times.len()
        );
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("f", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("tree", 8).name, "tree/8");
    }
}
