//! Offline derive-macro shim standing in for the real `serde_derive`.
//!
//! The build image has no crates.io access, so the workspace vendors a
//! minimal serde facade. This proc-macro supports the subset the workspace
//! uses: `#[derive(Serialize)]` on non-generic named-field structs and
//! unit-variant enums (honouring `#[serde(skip)]`), and a no-op
//! `#[derive(Deserialize)]` (nothing in the workspace deserializes into
//! typed structs — only into `serde_json::Value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match generate(&tokens) {
        Ok(code) => code
            .parse()
            .expect("serde_derive shim emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

fn generate(tokens: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    // Skip outer attributes and visibility to the `struct` / `enum` keyword.
    while i < tokens.len() {
        if is_punct(&tokens[i], '#') {
            i += 2; // `#` + bracket group
        } else if is_ident(&tokens[i], "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1; // pub(crate) etc.
            }
        } else if is_ident(&tokens[i], "struct") || is_ident(&tokens[i], "enum") {
            break;
        } else {
            i += 1;
        }
    }
    let is_struct = is_ident(tokens.get(i).ok_or("expected struct or enum")?, "struct");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(t) if is_punct(t, '<')) {
        return Err(format!(
            "serde_derive shim: generic type {name} unsupported"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(t) if is_punct(t, ';') => TokenStream::new(), // unit struct
        _ => return Err(format!("serde_derive shim: unsupported shape for {name}")),
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    if is_struct {
        let fields = parse_struct_fields(&body)?;
        let mut out = format!(
            "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        let mut m = ::serde::Map::new();\n"
        );
        for (field, skip) in fields {
            if skip {
                continue;
            }
            out.push_str(&format!(
                "        m.insert(String::from({field:?}), ::serde::Serialize::to_value(&self.{field}));\n"
            ));
        }
        out.push_str("        ::serde::Value::Object(m)\n    }\n}\n");
        Ok(out)
    } else {
        let variants = parse_unit_variants(&body, &name)?;
        let mut out = format!(
            "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        match self {{\n"
        );
        for v in variants {
            out.push_str(&format!(
                "            {name}::{v} => ::serde::Value::String(String::from({v:?})),\n"
            ));
        }
        out.push_str("        }\n    }\n}\n");
        Ok(out)
    }
}

/// Parse `(attrs) (vis) name: Type,` sequences, tracking `#[serde(skip)]`.
fn parse_struct_fields(tokens: &[TokenTree]) -> Result<Vec<(String, bool)>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        while matches!(tokens.get(i), Some(t) if is_punct(t, '#')) {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let text = g.to_string();
                if text.contains("serde") && text.contains("skip") {
                    skip = true;
                }
            }
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        if is_ident(&tokens[i], "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let fname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive shim: expected field name, got {other:?}"
                ))
            }
        };
        i += 1;
        if !matches!(tokens.get(i), Some(t) if is_punct(t, ':')) {
            return Err("serde_derive shim: tuple structs unsupported".into());
        }
        i += 1;
        // Consume the type, honouring angle-bracket nesting for commas.
        let mut depth: i32 = 0;
        while i < tokens.len() {
            if depth == 0 && is_punct(&tokens[i], ',') {
                break;
            }
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push((fname, skip));
    }
    Ok(fields)
}

fn parse_unit_variants(tokens: &[TokenTree], name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(t) if is_punct(t, '#')) {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let vname = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive shim: expected variant, got {other:?}"
                ))
            }
        };
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
            return Err(format!(
                "serde_derive shim: {name}::{vname} carries data (unsupported)"
            ));
        }
        // Skip any discriminant up to the comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(vname);
    }
    Ok(variants)
}
