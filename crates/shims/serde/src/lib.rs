//! Offline shim standing in for `serde`, providing the subset this
//! workspace uses: a `Serialize` trait that lowers values to an in-memory
//! JSON [`Value`], the matching derive macros, and a no-op `Deserialize`
//! marker. `serde_json` (the sibling shim) renders and parses `Value`.
//!
//! Not a general serde replacement — just enough API-compatible surface to
//! build this repository without crates.io access.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A JSON number. Integers render without a decimal point, like serde_json.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I(i64),
    /// Unsigned integer that does not fit `i64`.
    U(u64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Lossy conversion to `f64` (always succeeds for this shim).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::I(v) => v as f64,
            Number::U(v) => v as f64,
            Number::F(v) => v,
        })
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I(v) => u64::try_from(v).ok(),
            Number::U(v) => Some(v),
            Number::F(_) => None,
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::I(v) => write!(f, "{v}"),
            Number::U(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// An ordered string-keyed map of JSON values (BTree-ordered, matching
/// serde_json's default feature set).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    inner: BTreeMap<String, Value>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert a key/value pair.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }

    /// Iterate values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.inner.values()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, String, Value> {
        self.inner.iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// An in-memory JSON value (the shim's serialization target).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as `f64` when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integer number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a slice of elements when it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a [`Map`] when it is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a mutable [`Map`] when it is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Anything the shim can lower to a [`Value`]. Derivable via
/// `#[derive(Serialize)]` for named-field structs and unit enums.
pub trait Serialize {
    /// Lower `self` to an in-memory JSON value.
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Number(Number::I(v)),
            Err(_) => Value::Number(Number::U(*self)),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_string(), v.to_value());
        }
        Value::Object(m)
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

/// Marker trait mirroring serde's `Deserialize`; the derive is a no-op
/// because nothing in the workspace deserializes into typed structs.
pub trait DeserializeMarker {}
