//! Offline shim standing in for `proptest`: the `proptest!` macro plus the
//! strategy subset this workspace uses — numeric ranges and simple
//! regex-pattern string strategies of the form `.{m,n}` / `[class]{m,n}`.
//!
//! Each generated test runs a fixed number of deterministic cases (seeded
//! by the test name), so failures are reproducible run to run. There is no
//! shrinking: a failing case panics with the generated inputs via the
//! normal assert message.

/// Number of cases each property runs.
pub const CASES: usize = 64;

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x5bf0_3635_d9ab_3a6b,
        }
    }

    /// Next 64 mixed bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Stable FNV-1a hash used to seed per-test generators.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (gen.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, gen: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + gen.unit_f64() * (self.end - self.start)
    }
}

/// String strategies from a simplified regex pattern: a sequence of atoms
/// (`.` or a `[...]` class with ranges) each optionally followed by
/// `{m,n}`, `{n}`, `*`, or `+`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, gen: &mut Gen) -> String {
        generate_from_pattern(self, gen)
    }
}

fn generate_from_pattern(pattern: &str, gen: &mut Gen) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Atom: '.' or a character class.
        let alphabet: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                (0x20u32..0x7f)
                    .map(|c| char::from_u32(c).unwrap())
                    .collect()
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                set
            }
            c => {
                // Literal character.
                i += 1;
                vec![c]
            }
        };
        // Repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or(i);
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(0)),
                None => {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0usize, 16usize)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1usize, 16usize)
        } else {
            (1usize, 1usize)
        };
        let count = lo + gen.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            if alphabet.is_empty() {
                continue;
            }
            let idx = gen.below(alphabet.len() as u64) as usize;
            out.push(alphabet[idx]);
        }
    }
    out
}

/// Assert inside a property (no shrinking; plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { .. }` runs
/// [`CASES`] deterministic cases seeded by the test name.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut gen = $crate::Gen::new($crate::seed_for(stringify!($name)));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut gen);)*
                    $body
                }
            }
        )*
    };
}

/// Collection strategies mirroring `proptest::collection`.
pub mod collection {
    use super::{Gen, Strategy};

    /// Strategy producing `Vec`s of `elem` values with a length drawn
    /// uniformly from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `elem` with `size` lengths.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + gen.below(span) as usize;
            (0..n).map(|_| self.elem.generate(gen)).collect()
        }
    }
}

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Gen, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_lengths_respected() {
        let mut gen = Gen::new(1);
        for _ in 0..200 {
            let s = generate_from_pattern(".{0,400}", &mut gen);
            assert!(s.chars().count() <= 400);
            let t = generate_from_pattern("[a-z ]{0,200}", &mut gen);
            assert!(t.chars().count() <= 200);
            assert!(t.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in 0usize..10, text in "[ab]{1,3}") {
            prop_assert!(x < 10);
            prop_assert!(!text.is_empty() && text.len() <= 3);
        }

        #[test]
        fn collection_vec_respects_bounds(xs in crate::collection::vec(0u64..100, 0..17)) {
            prop_assert!(xs.len() < 17);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }
    }
}
