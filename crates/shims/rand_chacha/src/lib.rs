//! Offline shim standing in for `rand_chacha`. Exposes a `ChaCha8Rng`
//! compatible with the shimmed `rand` traits. Internally it is a
//! SplitMix64-seeded xoshiro256** generator rather than real ChaCha —
//! the workspace needs deterministic, well-mixed streams, not the ChaCha
//! bitstream itself (nothing persists or compares raw random output
//! across library versions).

use rand::{RngCore, SeedableRng};

/// Deterministic 64-bit generator under the familiar ChaCha8 name.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        ChaCha8Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256**
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bits_are_reasonably_mixed() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += r.gen::<u64>().count_ones();
        }
        // 4096 bits drawn; expect roughly half set.
        assert!((1500..2600).contains(&ones), "{ones}");
    }
}
