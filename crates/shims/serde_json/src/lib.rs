//! Offline shim standing in for `serde_json`: renders and parses the
//! in-memory [`Value`] defined by the sibling `serde` shim. Supports the
//! workspace's usage — `json!`, `from_str::<Value>`, `to_string`,
//! `to_string_pretty`, and `Map`.

pub use serde::{Map, Number, Value};

/// Lower any serializable value to a [`Value`]. Used by the `json!` macro;
/// takes a reference so field expressions borrowed from iterators work.
pub fn to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// A JSON parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for Error {}

/// Types this shim can produce from parsed JSON (only [`Value`]).
pub trait FromJsonValue: Sized {
    /// Convert a parsed `Value` into `Self`.
    fn from_json_value(v: Value) -> Result<Self, Error>;
}

impl FromJsonValue for Value {
    fn from_json_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

/// Parse a JSON document.
pub fn from_str<T: FromJsonValue>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_json_value(v)
}

/// Serialize compactly (single line).
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

/// Serialize with 2-space indentation, serde_json style.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            pos: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    /// Four hex digits starting at `at`.
    fn hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| self.err("bad \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
            16,
        )
        .map_err(|_| self.err("bad \\u escape"))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            // High surrogate: pair with a following
                            // `\uDC00..\uDFFF` escape (how standard encoders
                            // emit non-BMP characters). A lone surrogate
                            // becomes U+FFFD without consuming what follows.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                let next_is_escape = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 3)
                                    .is_some_and(|s| s == b"\\u");
                                let low = if next_is_escape {
                                    self.hex4(self.pos + 3).ok()
                                } else {
                                    None
                                };
                                match low {
                                    Some(low) if (0xDC00..0xE000).contains(&low) => {
                                        self.pos += 6;
                                        let combined =
                                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{fffd}')
                                    }
                                    _ => '\u{fffd}',
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // Bulk-copy the whole run of plain ASCII bytes up to
                    // the next quote, escape, or non-ASCII byte. One O(run)
                    // copy instead of per-character re-validation keeps
                    // parsing large embedded documents (traces, snapshot
                    // vectors) linear in the input size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("ASCII run is valid UTF-8"),
                    );
                }
                Some(_) => {
                    // Non-ASCII: decode one UTF-8 scalar from a 4-byte
                    // window (the maximum scalar length), so validation
                    // cost does not scale with the rest of the document.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()]).unwrap()
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    let c = valid.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F(v)))
            .map_err(|_| self.err("invalid number"))
    }
}

/// Build a [`Value`] from JSON-ish syntax. Supports object literals with
/// literal string keys whose values are expressions, array literals of
/// expressions, `null`, and plain expressions (anything `Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ($other:expr) => { $crate::to_value(&($other)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let v = json!({
            "a": 1,
            "b": [1.5, 2.0],
            "c": json!({"nested": "text with \"quotes\" and \\ backslash"}),
            "d": true,
        });
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
        let compact = to_string(&v).unwrap();
        let back2: Value = from_str(&compact).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(to_string(&json!(42)).unwrap(), "42");
        assert_eq!(to_string(&json!(1.0_f64)).unwrap(), "1.0");
        assert_eq!(to_string(&json!(0.35_f64)).unwrap(), "0.35");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn unicode_and_escapes_parse() {
        let v: Value = from_str(r#"{"k": "aA\n\t"}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some("aA\n\t"));
    }

    #[test]
    fn surrogate_pairs_decode_to_one_character() {
        // 😀 as emitted by ensure_ascii JSON encoders (surrogate pair).
        let v: Value = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // BMP escape still works.
        let v: Value = from_str("\"\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("é"));
        // Raw UTF-8 passes through untouched.
        let v: Value = from_str("\"😀\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // A lone high surrogate degrades to U+FFFD without eating the
        // following valid escape.
        let v: Value = from_str(r#""\ud83dXA""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd}XA"));
    }
}
