//! Offline shim standing in for `rand` 0.8: the `RngCore`/`SeedableRng`/
//! `Rng` traits plus `seq::SliceRandom`, covering the subset this workspace
//! uses (`gen`, `gen_bool`, `gen_range`, `choose`, `shuffle`).
//!
//! Determinism is the property that matters here (the simulator keys all
//! randomness on prompt content); statistical quality beyond a good 64-bit
//! mixer is not required.

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) as f32 * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self) < p
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly pick a reference, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mix(u64);
    impl RngCore for Mix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Mix(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(-0.25..=0.25f64);
            assert!((-0.25..=0.25).contains(&f));
            let u = r.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Mix(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle_cover() {
        use seq::SliceRandom;
        let mut r = Mix(3);
        let items = [1, 2, 3];
        assert!(items.choose(&mut r).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
