//! Offline shim standing in for `parking_lot`, backed by `std::sync`.
//! `lock()` returns the guard directly (no poisoning), matching the
//! parking_lot API shape the workspace relies on.

/// Mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// RwLock with parking_lot's panic-free API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
