//! Tree-based merge with pairwise LLM merging (paper §IV-C, Fig. 6).
//!
//! Per-fragment diagnoses are merged two at a time; merges within a tree
//! level are independent and run in parallel (pair results are collected
//! in level order, so the final merge is thread-count invariant). The
//! alternative — a single
//! flat merge of all summaries — is implemented too, as the ablation arm
//! (the paper shows it loses key points and references even on frontier
//! models once more than a couple of summaries are merged at once).

use rayon::prelude::*;
use simllm::{CompletionRequest, LanguageModel};

/// How to combine per-fragment diagnoses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Pairwise tree merge, parallel per level (IOAgent's design).
    Tree,
    /// One merge call over all summaries (the ablation baseline).
    Flat,
}

/// A mergeable summary: a title plus `- POINT[key] ...` lines.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryBlock {
    /// Block title (fragment title, or `merged` for internal nodes).
    pub title: String,
    /// Point lines, each `- POINT[key] text ;; REFS: [..] | [..]`.
    pub points: Vec<String>,
}

impl SummaryBlock {
    /// Construct a block.
    pub fn new(title: impl Into<String>, points: Vec<String>) -> Self {
        SummaryBlock {
            title: title.into(),
            points,
        }
    }

    /// Whether the block carries no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Render for inclusion in a merge prompt under the given index.
    fn render(&self, idx: usize) -> String {
        let mut out = format!("## SUMMARY {idx} {}\n", self.title);
        for p in &self.points {
            out.push_str(p);
            out.push('\n');
        }
        out
    }
}

/// Parse `- POINT[...]` lines from a merge response.
fn parse_points(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| l.starts_with("- POINT["))
        .map(String::from)
        .collect()
}

/// Merge a set of blocks into one via LLM calls, using the given strategy.
pub fn merge_blocks(
    model: &dyn LanguageModel,
    blocks: Vec<SummaryBlock>,
    strategy: MergeStrategy,
) -> SummaryBlock {
    let mut blocks: Vec<SummaryBlock> = blocks.into_iter().filter(|b| !b.is_empty()).collect();
    match blocks.len() {
        0 => return SummaryBlock::new("merged", Vec::new()),
        1 => return blocks.pop().unwrap(),
        _ => {}
    }
    match strategy {
        MergeStrategy::Flat => merge_once(model, &blocks),
        MergeStrategy::Tree => {
            while blocks.len() > 1 {
                let mut next: Vec<Option<SummaryBlock>> = Vec::new();
                // Pair up; an odd trailing block passes through unchanged.
                let pairs: Vec<(usize, &[SummaryBlock])> = blocks.chunks(2).enumerate().collect();
                let merged: Vec<(usize, SummaryBlock)> = pairs
                    .par_iter()
                    .map(|(i, chunk)| {
                        let block = if chunk.len() == 2 {
                            merge_once(model, chunk)
                        } else {
                            chunk[0].clone()
                        };
                        (*i, block)
                    })
                    .collect();
                next.resize(merged.len(), None);
                for (i, b) in merged {
                    next[i] = Some(b);
                }
                blocks = next.into_iter().flatten().collect();
            }
            blocks.pop().unwrap()
        }
    }
}

/// One LLM merge call over `blocks`.
fn merge_once(model: &dyn LanguageModel, blocks: &[SummaryBlock]) -> SummaryBlock {
    let mut prompt = String::from(
        "### TASK: merge\nMerge the following diagnosis summaries into one, removing \
         redundancy, resolving contradictions, and keeping every distinct key point with \
         its references.\n",
    );
    for (i, b) in blocks.iter().enumerate() {
        prompt.push_str(&b.render(i + 1));
    }
    let req = CompletionRequest::new("You merge I/O diagnosis summaries faithfully.", prompt);
    let completion = model.complete(&req);
    SummaryBlock::new("merged", parse_points(&completion.text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::SimLlm;

    fn block(title: &str, keys: &[&str]) -> SummaryBlock {
        SummaryBlock::new(
            title,
            keys.iter()
                .map(|k| format!("- POINT[{k}] finding about {k} ;; REFS: [Ref {k}, V 2021]"))
                .collect(),
        )
    }

    #[test]
    fn tree_merge_retains_most_points_for_frontier_model() {
        let model = SimLlm::new("gpt-4o");
        let blocks: Vec<SummaryBlock> = (0..13)
            .map(|i| block(&format!("S{i}"), &[&format!("k{i}")]))
            .collect();
        let mut total = 0usize;
        for salt in 0..10 {
            // Vary the content slightly per round so RNG streams differ.
            let mut bs = blocks.clone();
            bs[0].points[0] = format!("- POINT[k0] finding about k0 round {salt}");
            let merged = merge_blocks(&model, bs, MergeStrategy::Tree);
            total += merged.points.len();
        }
        // 130 possible; pairwise fidelity 0.97 over ~4 levels ⇒ ≳ 85 %.
        assert!(total >= 100, "retained {total}/130");
    }

    #[test]
    fn flat_merge_loses_points_even_for_frontier_model() {
        let model = SimLlm::new("gpt-4o");
        let blocks: Vec<SummaryBlock> = (0..13)
            .map(|i| block(&format!("S{i}"), &[&format!("k{i}")]))
            .collect();
        let mut tree_total = 0usize;
        let mut flat_total = 0usize;
        for salt in 0..10 {
            let mut bs = blocks.clone();
            bs[0].points[0] = format!("- POINT[k0] finding about k0 round {salt}");
            tree_total += merge_blocks(&model, bs.clone(), MergeStrategy::Tree)
                .points
                .len();
            flat_total += merge_blocks(&model, bs, MergeStrategy::Flat).points.len();
        }
        assert!(
            flat_total * 2 < tree_total,
            "flat {flat_total} vs tree {tree_total}: flat merge should lose far more"
        );
    }

    #[test]
    fn single_block_passes_through() {
        let model = SimLlm::new("llama-3-70b");
        let b = block("only", &["a", "b"]);
        let merged = merge_blocks(&model, vec![b.clone()], MergeStrategy::Tree);
        assert_eq!(merged, b);
    }

    #[test]
    fn empty_input_yields_empty_block() {
        let model = SimLlm::new("gpt-4o");
        let merged = merge_blocks(&model, vec![], MergeStrategy::Tree);
        assert!(merged.is_empty());
    }

    #[test]
    fn duplicate_keys_deduplicated() {
        let model = SimLlm::new("o1-preview");
        let merged = merge_blocks(
            &model,
            vec![block("A", &["dup"]), block("B", &["dup"])],
            MergeStrategy::Tree,
        );
        assert!(merged.points.len() <= 1);
    }

    #[test]
    fn merge_is_deterministic() {
        let model = SimLlm::new("llama-3.1-70b");
        let blocks: Vec<SummaryBlock> = (0..6)
            .map(|i| block(&format!("S{i}"), &[&format!("k{i}")]))
            .collect();
        let a = merge_blocks(&model, blocks.clone(), MergeStrategy::Tree);
        let b = merge_blocks(&model, blocks, MergeStrategy::Tree);
        assert_eq!(a, b);
    }
}
