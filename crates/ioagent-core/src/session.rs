//! Continued user interaction (paper §VI-E, Fig. 5).
//!
//! After a diagnosis, the user can keep asking questions; the agent answers
//! from the diagnosis context and its referenced sources, producing
//! application-specific guidance (including concrete commands such as
//! `lfs setstripe -S 4M`).

use darshan::counters::Module;
use darshan::DarshanTrace;
use simllm::{CompletionRequest, Diagnosis, LanguageModel};

/// One conversational turn.
#[derive(Debug, Clone)]
pub struct Turn {
    /// The user's question.
    pub question: String,
    /// The agent's answer.
    pub answer: String,
}

/// An interactive post-diagnosis session.
pub struct AgentSession<'m> {
    model: &'m dyn LanguageModel,
    /// The seeding diagnosis.
    pub diagnosis: Diagnosis,
    /// Conversation history.
    pub turns: Vec<Turn>,
    context_evidence: String,
}

impl<'m> AgentSession<'m> {
    /// Start a session from a completed diagnosis of `trace`.
    pub fn new(model: &'m dyn LanguageModel, diagnosis: Diagnosis, trace: &DarshanTrace) -> Self {
        // Application facts the chat may need for tailored advice.
        let agg = darshan::derive::aggregate(trace, Module::Posix).unwrap_or_default();
        let dominant = agg.max_write_time_size.max(agg.max_read_time_size).max(1);
        let mut context_evidence = String::new();
        context_evidence.push_str(&format!("EVIDENCE nprocs={}\n", trace.header.nprocs));
        context_evidence.push_str(&format!("EVIDENCE dominant_transfer={dominant}\n"));
        if let Some(l) = darshan::derive::lustre_summary(trace) {
            context_evidence.push_str(&format!(
                "EVIDENCE lustre.stripe_width_mean={}\n",
                l.mean_stripe_width()
            ));
            context_evidence.push_str(&format!(
                "EVIDENCE lustre.stripe_size={}\n",
                l.stripe_sizes.first().copied().unwrap_or(0)
            ));
        }
        AgentSession {
            model,
            diagnosis,
            turns: Vec::new(),
            context_evidence,
        }
    }

    /// Ask a follow-up question; the answer uses the diagnosis, its
    /// references, and prior turns as context.
    pub fn ask(&mut self, question: &str) -> String {
        let mut context = String::new();
        context.push_str(&self.diagnosis.text);
        context.push_str(&self.context_evidence);
        for t in &self.turns {
            context.push_str(&format!("Previously asked: {}\n", t.question));
        }
        let prompt = format!("### TASK: chat\n## CONTEXT\n{context}\n## QUESTION\n{question}\n");
        let req = CompletionRequest::new(
            "You help domain scientists act on their I/O diagnosis.",
            prompt,
        )
        .with_salt(self.turns.len() as u64);
        let answer = self.model.complete(&req).text;
        self.turns.push(Turn {
            question: question.to_string(),
            answer: answer.clone(),
        });
        answer
    }
}

#[cfg(test)]
mod tests {

    use crate::agent::IoAgent;
    use simllm::SimLlm;
    use tracebench::TraceBench;

    #[test]
    fn stripe_followup_yields_concrete_command() {
        // The Fig. 5 scenario: an IO500 run with large transfers on default
        // 1-wide striping; the user asks how to fix the stripe settings.
        let tb = TraceBench::generate();
        let entry = tb.get("io500_rnd_posix_shared").unwrap();
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::new(&model);
        let mut session = agent.start_session(&entry.trace);
        let answer = session.ask("How can I fix the suboptimal stripe settings?");
        assert!(answer.contains("lfs setstripe -S 4M"), "{answer}");
        assert_eq!(session.turns.len(), 1);
    }

    #[test]
    fn collective_followup_mentions_hints() {
        let tb = TraceBench::generate();
        let entry = tb.get("sb09_independent_io").unwrap();
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::new(&model);
        let mut session = agent.start_session(&entry.trace);
        let answer = session.ask("Should I switch to collective MPI-IO?");
        assert!(answer.contains("MPI_File_write_all"), "{answer}");
    }

    #[test]
    fn session_accumulates_turns() {
        let tb = TraceBench::generate();
        let entry = tb.get("sb01_small_io").unwrap();
        let model = SimLlm::new("llama-3.1-70b");
        let agent = IoAgent::new(&model);
        let mut session = agent.start_session(&entry.trace);
        session.ask("How do I aggregate small writes?");
        session.ask("And what about alignment?");
        assert_eq!(session.turns.len(), 2);
        assert_ne!(session.turns[0].answer, session.turns[1].answer);
    }
}
