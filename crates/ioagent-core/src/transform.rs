//! JSON → natural-language transformation (paper §IV-B.1, Fig. 3).
//!
//! JSON summary fragments are precise but lexically distant from the expert
//! prose in the knowledge base; embedding-similarity retrieval works far
//! better when the query is itself prose. IOAgent therefore prompts the LLM
//! with the extraction code's intent, the JSON values, and the broader
//! application context, and uses the resulting description as the RAG query.

use preprocessor::SummaryFragment;
use simllm::{CompletionRequest, LanguageModel};

/// Build the transformation prompt for a fragment.
pub fn prompt(fragment: &SummaryFragment) -> String {
    let context: String = fragment
        .evidence
        .iter()
        .filter(|(k, _)| matches!(k.as_str(), "nprocs" | "runtime" | "total_bytes"))
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    format!(
        "### TASK: transform\n\
         Interpret this {title} summary for an HPC I/O expert audience.\n\
         ## CODE\n\
         // extraction function for the {title} category\n\
         ## JSON\n{json}\n\
         ## CONTEXT\n{context}\n",
        title = fragment.title,
        json = fragment.json_text(),
    )
}

/// Transform a fragment into its natural-language description.
pub fn to_natural_language(model: &dyn LanguageModel, fragment: &SummaryFragment) -> String {
    let req = CompletionRequest::new(
        "You translate structured I/O telemetry into precise natural language.",
        prompt(fragment),
    );
    model.complete(&req).text
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::SimLlm;
    use tracebench::TraceBench;

    #[test]
    fn histogram_fragment_becomes_prose() {
        let tb = TraceBench::generate();
        let t = tb.get("sb01_small_io").unwrap();
        let frags = preprocessor::extract_fragments(&t.trace);
        let io_size = frags
            .iter()
            .find(|f| f.title == "POSIX I/O Size")
            .expect("posix io size fragment");
        let model = SimLlm::new("gpt-4o");
        let nl = to_natural_language(&model, io_size);
        assert!(nl.contains("% of the"), "{nl}");
        assert!(nl.to_lowercase().contains("write operations"));
    }

    #[test]
    fn transformation_is_deterministic() {
        let tb = TraceBench::generate();
        let t = tb.get("ra_amrex").unwrap();
        let frags = preprocessor::extract_fragments(&t.trace);
        let model = SimLlm::new("llama-3.1-70b");
        let a = to_natural_language(&model, &frags[0]);
        let b = to_natural_language(&model, &frags[0]);
        assert_eq!(a, b);
    }
}
