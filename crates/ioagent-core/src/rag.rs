//! Domain Knowledge Integrator (paper §IV-B).
//!
//! Builds the vector index over the 66-document expert corpus (chunk size
//! 512, overlap 20 — the paper's LlamaIndex defaults), retrieves the top 15
//! chunks for each fragment's natural-language description, and filters the
//! hits with a cheaper *self-reflection* model run in parallel, "ruling out
//! nearly half of the retrieved sources" before diagnosis.

use ioembed::Embedder;
use rayon::prelude::*;
use simllm::{CompletionRequest, LanguageModel};
use vecindex::{VectorIndex, DEFAULT_CHUNK_SIZE, DEFAULT_OVERLAP};

/// A retrieved, reflection-approved source.
#[derive(Debug, Clone)]
pub struct GroundedSource {
    /// Knowledge-document id.
    pub doc_id: String,
    /// Citation string for reports.
    pub citation: String,
    /// Claims the document substantiates.
    pub claims: Vec<&'static str>,
    /// Retrieval score.
    pub score: f32,
}

impl GroundedSource {
    /// Render as `REFERENCE` prompt lines (one per claim).
    pub fn reference_lines(&self) -> String {
        self.claims
            .iter()
            .map(|c| format!("REFERENCE claim={c} cite={}\n", self.citation))
            .collect()
    }
}

/// IVF retrieval configuration: cluster the knowledge index around
/// `clusters` coarse centroids and probe the `nprobe` most query-similar
/// ones per search. `nprobe >= clusters` keeps retrieval byte-identical
/// to the flat scan; smaller values trade recall for scan cost (the
/// batch benchmark pins recall@15 ≥ 0.95 at the default probe width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfParams {
    /// Coarse cluster count (clamped to the chunk count at build time).
    pub clusters: usize,
    /// Clusters probed per search (clamped to `1..=clusters`).
    pub nprobe: usize,
}

impl IvfParams {
    /// Params with the default probe width for a cluster count: an eighth
    /// of the clusters (at least one) — the ratio the batch benchmark
    /// gates at ≥ 0.95 recall@15.
    pub fn with_default_nprobe(clusters: usize) -> Self {
        IvfParams {
            clusters,
            nprobe: (clusters / 8).max(1),
        }
    }
}

/// SQ8 scan-tier configuration: scan probed clusters over int8 codes to
/// pick a `rerank_pool`-sized candidate pool, then rerank the pool with
/// exact f32 cosine. Requires IVF ([`IvfParams`]); the returned top-k
/// carries exact scores, and a pool covering every probed row is
/// byte-identical to the f32 probe path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sq8Params {
    /// Candidate-pool size reranked in exact f32 (0 → the vecindex
    /// default, [`vecindex::DEFAULT_SQ8_RERANK_POOL`]).
    pub rerank_pool: usize,
}

impl Default for Sq8Params {
    fn default() -> Self {
        Sq8Params {
            rerank_pool: vecindex::DEFAULT_SQ8_RERANK_POOL,
        }
    }
}

/// Where a retriever's index came from (see [`Retriever::build_or_load`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexProvenance {
    /// Served from an on-disk snapshot — no re-embedding happened.
    Snapshot,
    /// Built fresh from the corpus; the string says why the snapshot was
    /// not usable (missing, stale corpus, config mismatch, corruption, …).
    Rebuilt(String),
}

/// The knowledge retriever.
pub struct Retriever {
    index: VectorIndex,
    /// How many chunks to retrieve before reflection (paper: 15).
    pub top_k: usize,
}

impl Retriever {
    /// Build the index over the built-in corpus (flat exact scans).
    pub fn build() -> Self {
        Self::build_with(None)
    }

    /// [`Retriever::build`], optionally clustering the index for IVF
    /// probing. `None` keeps the flat exact scan.
    pub fn build_with(ivf: Option<IvfParams>) -> Self {
        Self::build_tuned(ivf, None)
    }

    /// [`Retriever::build_with`], optionally stacking the SQ8 scan tier on
    /// top of the clustering.
    ///
    /// # Panics
    ///
    /// `sq8` without `ivf` is a configuration error — the SQ8 tier scans
    /// probed clusters, so there is nothing for it to do on a flat index —
    /// and panics rather than silently serving a different engine than
    /// the caller configured.
    pub fn build_tuned(ivf: Option<IvfParams>, sq8: Option<Sq8Params>) -> Self {
        assert!(
            sq8.is_none() || ivf.is_some(),
            "SQ8 requires IVF clustering (set IvfParams too)"
        );
        let mut index = VectorIndex::new(Embedder::default(), DEFAULT_CHUNK_SIZE, DEFAULT_OVERLAP);
        for doc in knowledge::corpus() {
            let text = format!("{}. {}", doc.title, doc.body);
            index.add_document(doc.id, &doc.citation(), &text);
        }
        if let Some(p) = ivf {
            index.enable_ivf(p.clusters, p.nprobe);
        }
        if let Some(p) = sq8 {
            index.enable_sq8(p.rerank_pool);
        }
        Retriever { index, top_k: 15 }
    }

    /// Wrap an already-built index (e.g. loaded from an `iostore`
    /// snapshot) with the paper's retrieval configuration.
    pub fn from_index(index: VectorIndex) -> Self {
        Retriever { index, top_k: 15 }
    }

    /// The underlying vector index (read-only; used for snapshotting).
    pub fn index(&self) -> &VectorIndex {
        &self.index
    }

    /// What an index snapshot must match to stand in for [`Retriever::build`]:
    /// the default embedder/chunking configuration plus the content hash of
    /// the live corpus.
    pub fn index_spec() -> iostore::IndexSpec {
        iostore::IndexSpec {
            embedder_dim: Embedder::default().dim,
            chunk_size: DEFAULT_CHUNK_SIZE,
            overlap: DEFAULT_OVERLAP,
            corpus_hash: knowledge::corpus_hash(),
        }
    }

    /// Load the index from `state`'s snapshot when it matches the live
    /// corpus and embedder configuration; otherwise build it fresh and
    /// (re)write the snapshot so the *next* start is instant. The returned
    /// [`IndexProvenance`] says which path was taken and why.
    ///
    /// A snapshot-loaded retriever is bit-identical to a built one — same
    /// entries, same vectors — so retrievals and downstream diagnoses do
    /// not depend on which path ran. A failure to *write* the snapshot is
    /// reported in the provenance but never fails the build.
    pub fn build_or_load(state: &iostore::StateDir) -> (Self, IndexProvenance) {
        Self::build_or_load_with(state, None)
    }

    /// [`Retriever::build_or_load`] with an IVF configuration to
    /// reconcile against whatever the snapshot holds:
    ///
    /// - snapshot already clustered with the requested cluster count →
    ///   served as-is (probe width is a runtime knob, adjusted in place);
    /// - snapshot flat (e.g. written by a pre-IVF v1 binary) or clustered
    ///   differently → the loaded vectors are kept and **lazily
    ///   re-clustered** — no re-embedding — then the snapshot is re-saved
    ///   as v2 so the next start skips the clustering too;
    /// - IVF off but the snapshot clustered → the quantizer is detached,
    ///   so default retrieval stays byte-identical to [`Retriever::build`].
    pub fn build_or_load_with(
        state: &iostore::StateDir,
        ivf: Option<IvfParams>,
    ) -> (Self, IndexProvenance) {
        Self::build_or_load_tuned(state, ivf, None)
    }

    /// [`Retriever::build_or_load_with`] that also reconciles an SQ8
    /// scan-tier request against the snapshot:
    ///
    /// - snapshot already carries a codebook (v3) → served as-is, the
    ///   rerank pool is a runtime knob adjusted in place;
    /// - snapshot clustered but codebook-less (v2) → the tier is
    ///   **lazily trained** — no re-embedding, no re-clustering — and the
    ///   snapshot re-saved as v3 so the next start skips the training;
    /// - SQ8 off but the snapshot carries a codebook → the tier is
    ///   detached in memory (the v3 snapshot is left in place for
    ///   SQ8-enabled consumers), so retrieval stays byte-identical to the
    ///   f32 probe path.
    ///
    /// # Panics
    ///
    /// `sq8` without `ivf` panics, as in [`Retriever::build_tuned`].
    pub fn build_or_load_tuned(
        state: &iostore::StateDir,
        ivf: Option<IvfParams>,
        sq8: Option<Sq8Params>,
    ) -> (Self, IndexProvenance) {
        assert!(
            sq8.is_none() || ivf.is_some(),
            "SQ8 requires IVF clustering (set IvfParams too)"
        );
        let spec = Self::index_spec();
        let path = state.index_path();
        match iostore::load_index(&path, &spec) {
            Ok(mut index) => {
                let reclustered = match (ivf, index.ivf()) {
                    (None, None) => false,
                    (None, Some(_)) => {
                        index.disable_ivf();
                        false
                    }
                    (Some(p), Some(cur)) if cur.clusters() == p.clusters.clamp(1, index.len()) => {
                        index.set_nprobe(p.nprobe);
                        false
                    }
                    (Some(p), _) => {
                        index.enable_ivf(p.clusters, p.nprobe);
                        true
                    }
                };
                // SQ8 reconciliation runs after the IVF arm: re-clustering
                // drops any loaded codebook, so `(Some(p), None)` below
                // also covers "reclustered, retrain the tier".
                let retrained = match (sq8, index.sq8()) {
                    (None, None) => false,
                    (None, Some(_)) => {
                        index.disable_sq8();
                        false
                    }
                    (Some(p), Some(_)) => {
                        index.set_sq8_rerank_pool(p.rerank_pool);
                        false
                    }
                    (Some(p), None) => {
                        index.enable_sq8(p.rerank_pool);
                        true
                    }
                };
                if reclustered || retrained {
                    // Best-effort: persist the clustering/codebook for the
                    // next start; a failed save only costs that start a
                    // re-derivation, never correctness.
                    let _ = iostore::save_index(&path, &index, spec.corpus_hash);
                }
                (Retriever::from_index(index), IndexProvenance::Snapshot)
            }
            Err(err) => {
                let retriever = Retriever::build_tuned(ivf, sq8);
                let mut reason = err.to_string();
                if let Err(save_err) =
                    iostore::save_index(&path, retriever.index(), spec.corpus_hash)
                {
                    reason = format!("{reason}; snapshot save failed: {save_err}");
                }
                (retriever, IndexProvenance::Rebuilt(reason))
            }
        }
    }

    /// Number of indexed chunks.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Retrieve top-`self.top_k` sources for a query, then self-reflect
    /// with the given (cheaper) model to drop irrelevant hits. Reflection
    /// calls run in parallel, as in the paper; verdicts are collected in
    /// hit order, so the kept set is identical at any thread count.
    pub fn retrieve(
        &self,
        query: &str,
        reflection_model: &dyn LanguageModel,
    ) -> Vec<GroundedSource> {
        self.retrieve_k(query, reflection_model, self.top_k)
    }

    /// [`Retriever::retrieve`] with an explicit `k`, so a shared, immutable
    /// retriever can serve agents with different `top_k` configurations.
    pub fn retrieve_k(
        &self,
        query: &str,
        reflection_model: &dyn LanguageModel,
        k: usize,
    ) -> Vec<GroundedSource> {
        let hits = self.index.search(query, k);
        let verdicts: Vec<(usize, bool)> = hits
            .par_iter()
            .map(|hit| {
                let entry = self.index.entry(hit.entry_idx);
                let prompt = format!(
                    "### TASK: filter\n## FRAGMENT\n{query}\n## SOURCE\n{}\n",
                    entry.text
                );
                let req = CompletionRequest::new(
                    "Decide whether the source is relevant to the fragment.",
                    prompt,
                );
                let verdict = reflection_model.complete(&req);
                (hit.entry_idx, verdict.text.starts_with("RELEVANT"))
            })
            .collect();

        let mut out: Vec<GroundedSource> = Vec::new();
        for (hit, (entry_idx, relevant)) in hits.iter().zip(verdicts) {
            if !relevant {
                continue;
            }
            let entry = self.index.entry(entry_idx);
            if out.iter().any(|s| s.doc_id.as_str() == &*entry.doc_id) {
                continue; // one citation per document
            }
            let doc = knowledge::get(&entry.doc_id).expect("indexed doc exists");
            out.push(GroundedSource {
                doc_id: entry.doc_id.to_string(),
                citation: entry.citation.to_string(),
                claims: doc.claims.to_vec(),
                score: hit.score,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::SimLlm;

    #[test]
    fn index_covers_corpus() {
        let r = Retriever::build();
        assert!(!r.is_empty());
        assert!(r.len() >= 66, "at least one chunk per document");
    }

    #[test]
    fn stripe_query_grounds_stripe_claim() {
        let r = Retriever::build();
        let mini = SimLlm::new("gpt-4o-mini");
        let sources = r.retrieve(
            "the mean stripe width is 1.0 and the job used 1 of 64 available object \
             storage targets, serialising server load on a single OST",
            &mini,
        );
        assert!(!sources.is_empty());
        let claims: Vec<&str> = sources
            .iter()
            .flat_map(|s| s.claims.iter().copied())
            .collect();
        assert!(
            claims.contains(&knowledge::claims::STRIPE_WIDTH_PARALLELISM),
            "claims: {claims:?}"
        );
    }

    #[test]
    fn reflection_prunes_some_hits() {
        let r = Retriever::build();
        let mini = SimLlm::new("gpt-4o-mini");
        let query = "100% of the write operations fall within the 0 B to 100 B range; \
                     the application issues many frequent small write requests";
        let kept = r.retrieve(query, &mini);
        // Top-15 chunks retrieved; reflection plus per-doc dedup must prune.
        assert!(kept.len() < 15, "kept {}", kept.len());
        assert!(!kept.is_empty());
    }

    #[test]
    fn reference_lines_format() {
        let s = GroundedSource {
            doc_id: "k01".into(),
            citation: "[T, V 2021]".into(),
            claims: vec!["stripe_width_parallelism"],
            score: 0.5,
        };
        assert_eq!(
            s.reference_lines(),
            "REFERENCE claim=stripe_width_parallelism cite=[T, V 2021]\n"
        );
    }

    struct TempState(std::path::PathBuf);

    impl TempState {
        fn new(tag: &str) -> (Self, iostore::StateDir) {
            let dir = std::env::temp_dir().join(format!("rag-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let state = iostore::StateDir::new(&dir).unwrap();
            (TempState(dir), state)
        }
    }

    impl Drop for TempState {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn build_or_load_round_trips_through_the_snapshot() {
        let (_guard, state) = TempState::new("round-trip");
        // First call: no snapshot yet — builds fresh and writes one.
        let (first, provenance) = Retriever::build_or_load(&state);
        assert!(
            matches!(provenance, IndexProvenance::Rebuilt(_)),
            "{provenance:?}"
        );
        assert!(state.index_path().is_file(), "rebuild must save a snapshot");
        // Second call: served from the snapshot, bit-identical entries.
        let (second, provenance) = Retriever::build_or_load(&state);
        assert_eq!(provenance, IndexProvenance::Snapshot);
        assert_eq!(first.len(), second.len());
        for (i, (a, b)) in first
            .index()
            .entries()
            .iter()
            .zip(second.index().entries())
            .enumerate()
        {
            assert_eq!(a.text, b.text);
            let bits_a: Vec<u32> = first
                .index()
                .vector(i)
                .iter()
                .map(|f| f.to_bits())
                .collect();
            let bits_b: Vec<u32> = second
                .index()
                .vector(i)
                .iter()
                .map(|f| f.to_bits())
                .collect();
            assert_eq!(bits_a, bits_b);
        }
    }

    #[test]
    fn stale_snapshot_triggers_rebuild_and_resave() {
        let (_guard, state) = TempState::new("stale");
        let built = Retriever::build();
        // A snapshot recorded against a *different* corpus hash must not be
        // served — this is what a corpus edit between releases looks like.
        iostore::save_index(
            &state.index_path(),
            built.index(),
            knowledge::corpus_hash() ^ 0xdead,
        )
        .unwrap();
        let (_retriever, provenance) = Retriever::build_or_load(&state);
        match provenance {
            IndexProvenance::Rebuilt(reason) => {
                assert!(reason.contains("corpus"), "reason: {reason}")
            }
            other => panic!("expected rebuild, got {other:?}"),
        }
        // The rebuild healed the snapshot in place.
        let (_retriever, provenance) = Retriever::build_or_load(&state);
        assert_eq!(provenance, IndexProvenance::Snapshot);
    }

    /// IVF with `nprobe = clusters` (exact mode) must ground queries
    /// identically to the flat build — same sources, same scores.
    #[test]
    fn exact_ivf_retriever_grounds_identically_to_flat() {
        let flat = Retriever::build();
        let probed = Retriever::build_with(Some(IvfParams {
            clusters: 8,
            nprobe: 8,
        }));
        assert!(probed.index().ivf().is_some());
        let mini = SimLlm::new("gpt-4o-mini");
        for q in [
            "the mean stripe width is 1.0 on a single OST",
            "metadata operations dominate the runtime",
        ] {
            let a: Vec<(String, u32)> = flat
                .retrieve(q, &mini)
                .into_iter()
                .map(|s| (s.doc_id, s.score.to_bits()))
                .collect();
            let b: Vec<(String, u32)> = probed
                .retrieve(q, &mini)
                .into_iter()
                .map(|s| (s.doc_id, s.score.to_bits()))
                .collect();
            assert_eq!(a, b, "q={q:?}");
        }
    }

    /// A flat (v1-style) snapshot served to an IVF-configured daemon is
    /// lazily clustered — still a snapshot load, no re-embedding — and
    /// the clustering is persisted for the next start.
    #[test]
    fn flat_snapshot_is_lazily_clustered_and_resaved() {
        let (_guard, state) = TempState::new("lazy-ivf");
        // Write a flat snapshot, as a pre-IVF deployment would have.
        let (_flat, provenance) = Retriever::build_or_load(&state);
        assert!(matches!(provenance, IndexProvenance::Rebuilt(_)));

        let params = IvfParams::with_default_nprobe(16);
        let (probed, provenance) = Retriever::build_or_load_with(&state, Some(params));
        assert_eq!(provenance, IndexProvenance::Snapshot, "no rebuild");
        let ivf = probed.index().ivf().expect("lazily clustered");
        assert_eq!(ivf.nprobe(), params.nprobe);

        // Next start finds the clustering already in the snapshot…
        let (again, provenance) = Retriever::build_or_load_with(&state, Some(params));
        assert_eq!(provenance, IndexProvenance::Snapshot);
        assert_eq!(
            again.index().ivf().unwrap().assignments(),
            ivf.assignments(),
            "persisted clustering must be reused byte-identically"
        );

        // …while an IVF-off consumer of the same snapshot detaches it.
        let (flat_again, _) = Retriever::build_or_load(&state);
        assert!(flat_again.index().ivf().is_none());
    }

    /// SQ8 with `nprobe = clusters` and a pool covering every probed row
    /// (exact mode) must ground queries identically to the flat build —
    /// same sources, same scores, despite scanning int8 codes first.
    #[test]
    fn exact_sq8_retriever_grounds_identically_to_flat() {
        let flat = Retriever::build();
        let sq8 = Retriever::build_tuned(
            Some(IvfParams {
                clusters: 8,
                nprobe: 8,
            }),
            Some(Sq8Params {
                rerank_pool: flat.len(),
            }),
        );
        assert!(sq8.index().sq8().is_some());
        let mini = SimLlm::new("gpt-4o-mini");
        for q in [
            "the mean stripe width is 1.0 on a single OST",
            "metadata operations dominate the runtime",
        ] {
            let a: Vec<(String, u32)> = flat
                .retrieve(q, &mini)
                .into_iter()
                .map(|s| (s.doc_id, s.score.to_bits()))
                .collect();
            let b: Vec<(String, u32)> = sq8
                .retrieve(q, &mini)
                .into_iter()
                .map(|s| (s.doc_id, s.score.to_bits()))
                .collect();
            assert_eq!(a, b, "q={q:?}");
        }
    }

    /// A clustered-but-codebook-less (v2-style) snapshot served to an
    /// SQ8-configured daemon lazily trains the tier — no re-embedding, no
    /// re-clustering — and persists it as v3 for the next start.
    #[test]
    fn v2_snapshot_lazily_trains_sq8_and_resaves() {
        let (_guard, state) = TempState::new("lazy-sq8");
        let params = IvfParams::with_default_nprobe(16);
        // Write a clustered, codebook-less snapshot, as a pre-SQ8
        // deployment would have.
        let (clustered, _) = Retriever::build_or_load_with(&state, Some(params));
        let assignments = clustered.index().ivf().unwrap().assignments().to_vec();

        let sq8 = Some(Sq8Params { rerank_pool: 64 });
        let (tiered, provenance) = Retriever::build_or_load_tuned(&state, Some(params), sq8);
        assert_eq!(provenance, IndexProvenance::Snapshot, "no rebuild");
        let tier = tiered.index().sq8().expect("lazily trained");
        assert_eq!(tier.rerank_pool(), 64);
        assert_eq!(
            tiered.index().ivf().unwrap().assignments(),
            assignments.as_slice(),
            "training the tier must not re-cluster"
        );

        // Next start loads the codebook from the v3 snapshot bit-for-bit.
        let (again, provenance) = Retriever::build_or_load_tuned(&state, Some(params), sq8);
        assert_eq!(provenance, IndexProvenance::Snapshot);
        let bits = |v: &[f32]| -> Vec<u32> { v.iter().map(|f| f.to_bits()).collect() };
        let loaded = again.index().sq8().unwrap();
        assert_eq!(bits(loaded.min()), bits(tier.min()));
        assert_eq!(bits(loaded.scale()), bits(tier.scale()));

        // …while an SQ8-off consumer of the same snapshot detaches the
        // tier but keeps the clustering.
        let (plain, _) = Retriever::build_or_load_with(&state, Some(params));
        assert!(plain.index().sq8().is_none());
        assert!(plain.index().ivf().is_some());
    }

    #[test]
    fn default_nprobe_is_an_eighth_of_clusters() {
        assert_eq!(IvfParams::with_default_nprobe(64).nprobe, 8);
        assert_eq!(IvfParams::with_default_nprobe(4).nprobe, 1);
    }

    #[test]
    fn retrieval_is_deterministic() {
        let r = Retriever::build();
        let mini = SimLlm::new("gpt-4o-mini");
        let q = "metadata operations dominate the runtime with many opens and stats";
        let a: Vec<String> = r.retrieve(q, &mini).into_iter().map(|s| s.doc_id).collect();
        let b: Vec<String> = r.retrieve(q, &mini).into_iter().map(|s| s.doc_id).collect();
        assert_eq!(a, b);
    }
}
