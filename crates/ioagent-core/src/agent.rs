//! The IOAgent pipeline.

use crate::merge::{merge_blocks, MergeStrategy, SummaryBlock};
use crate::rag::Retriever;
use crate::session::AgentSession;
use crate::transform;
use darshan::DarshanTrace;
use preprocessor::SummaryFragment;
use rayon::prelude::*;
use simllm::{CompletionRequest, Diagnosis, LanguageModel, SimLlm};
use std::collections::BTreeSet;
use std::sync::Arc;
use tracebench::IssueLabel;

/// Configuration knobs (defaults match the paper).
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Chunks retrieved per fragment before self-reflection (paper: 15).
    pub top_k: usize,
    /// Merge strategy (paper: tree; flat is the ablation arm).
    pub merge: MergeStrategy,
    /// Whether to transform JSON fragments to natural language before
    /// retrieval (ablation: query with raw JSON instead).
    pub nl_transform: bool,
    /// Whether to retrieve domain knowledge at all (ablation).
    pub use_rag: bool,
    /// Self-reflection model name (paper: a faster, cheaper model).
    pub reflection_model: String,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            top_k: 15,
            merge: MergeStrategy::Tree,
            nl_transform: true,
            use_rag: true,
            reflection_model: "gpt-4o-mini".to_string(),
        }
    }
}

/// The IOAgent, bound to a backbone model.
///
/// The knowledge retriever is held behind an [`Arc`] so a long-lived
/// service (`ioagentd`) can build the vector index once and share it across
/// many concurrent agents; per-job state (the backbone model reference and
/// the reflection model with its usage accounting) stays per-agent.
pub struct IoAgent<'m> {
    model: &'m dyn LanguageModel,
    reflection: SimLlm,
    retriever: Arc<Retriever>,
    config: AgentConfig,
}

impl<'m> IoAgent<'m> {
    /// Create an agent with default (paper) configuration.
    pub fn new(model: &'m dyn LanguageModel) -> Self {
        Self::with_config(model, AgentConfig::default())
    }

    /// Create an agent with explicit configuration, building a private
    /// knowledge index.
    pub fn with_config(model: &'m dyn LanguageModel, config: AgentConfig) -> Self {
        Self::with_shared_retriever(model, config, Arc::new(Retriever::build()))
    }

    /// Create an agent over an existing shared knowledge index. The index
    /// is immutable after construction, so any number of agents across any
    /// number of threads may share one `Arc<Retriever>`; `config.top_k` is
    /// applied per retrieval call rather than baked into the index.
    pub fn with_shared_retriever(
        model: &'m dyn LanguageModel,
        config: AgentConfig,
        retriever: Arc<Retriever>,
    ) -> Self {
        IoAgent {
            model,
            reflection: SimLlm::new(&config.reflection_model),
            retriever,
            config,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Usage accumulated by the private self-reflection model. Combined
    /// with the backbone model's own usage this gives the full per-job
    /// token/cost accounting.
    pub fn reflection_usage(&self) -> simllm::Usage {
        self.reflection.usage()
    }

    /// Tool name used in reports and the evaluation.
    pub fn tool_name(&self) -> String {
        format!("ioagent-{}", self.model.name())
    }

    /// Run the full pipeline on a trace.
    pub fn diagnose(&self, trace: &DarshanTrace) -> Diagnosis {
        let tracer = ioobserve::tracer();
        let metrics = ioobserve::metrics();

        // Stage 1: module-based pre-processing.
        let preprocess_start = std::time::Instant::now();
        let fragments = {
            let mut span = tracer.span("stage.preprocess");
            let fragments = preprocessor::extract_fragments(trace);
            span.set_attr("fragments", fragments.len());
            fragments
        };
        metrics
            .histogram("stage.preprocess_ns")
            .record_duration(preprocess_start.elapsed());

        // Stage 2: per-fragment knowledge integration + diagnosis, parallel
        // across fragments (each fragment's retrieval reflection is itself
        // parallel inside the retriever, drawing on the same pool budget).
        // Blocks come back in fragment order, so the merged report is
        // byte-identical at any thread count. One coarse `stage.fragments`
        // span tiles the whole fan-out; per-fragment spans are fine detail
        // and take their parent explicitly, because the closures may run
        // on pool worker threads whose span stacks are empty.
        let fragments_span = tracer.span("stage.fragments");
        let fragments_parent = fragments_span.id();
        let blocks: Vec<SummaryBlock> = fragments
            .par_iter()
            .map(|fragment| self.diagnose_fragment(fragment, fragments_parent))
            .collect();
        drop(fragments_span);

        // Stage 3: tree-based merge.
        let merge_start = std::time::Instant::now();
        let merged = {
            let _span = tracer.span("stage.merge");
            merge_blocks(self.model, blocks, self.config.merge)
        };
        metrics
            .histogram("stage.merge_ns")
            .record_duration(merge_start.elapsed());

        // Final report rendering.
        let _render_span = tracer.span("stage.render");
        let (text, issues, references) = render_report(&self.tool_name(), &merged);
        Diagnosis {
            tool: self.tool_name(),
            text,
            issues,
            references,
        }
    }

    /// Diagnose a single fragment into a mergeable summary block.
    /// `parent` is the span id of the enclosing fan-out (0 when tracing
    /// is disabled), threaded explicitly because this may run on a pool
    /// worker thread with no span context of its own.
    fn diagnose_fragment(&self, fragment: &SummaryFragment, parent: u64) -> SummaryBlock {
        let tracer = ioobserve::tracer();
        let metrics = ioobserve::metrics();
        let mut fragment_span = tracer.span_child_fine("stage.fragment", parent);
        fragment_span.set_attr("title", &fragment.title);

        // 2a: NL transformation (the RAG query).
        let llm_start = std::time::Instant::now();
        let query = {
            let mut span = tracer.span_fine("stage.llm");
            span.set_attr("op", "transform");
            if self.config.nl_transform {
                transform::to_natural_language(self.model, fragment)
            } else {
                fragment.json_text()
            }
        };
        let transform_elapsed = llm_start.elapsed();

        // 2b/2c: retrieval + self-reflection filtering.
        let retrieve_start = std::time::Instant::now();
        let sources = {
            let mut span = tracer.span_fine("stage.retrieve");
            span.set_attr("top_k", self.config.top_k);
            if self.config.use_rag {
                self.retriever
                    .retrieve_k(&query, &self.reflection, self.config.top_k)
            } else {
                Vec::new()
            }
        };
        metrics
            .histogram("stage.retrieve_ns")
            .record_duration(retrieve_start.elapsed());

        // 2d: grounded per-fragment diagnosis.
        let diagnose_start = std::time::Instant::now();
        let mut span = tracer.span_fine("stage.llm");
        span.set_attr("op", "diagnose");
        let mut prompt = format!(
            "### TASK: diagnose\nDiagnose I/O issues visible in the {} summary.\n",
            fragment.title
        );
        prompt.push_str(&fragment.evidence_lines());
        prompt.push_str(&format!("SUMMARY: {query}\n"));
        for s in &sources {
            prompt.push_str(&s.reference_lines());
        }
        let req = CompletionRequest::new("You are an expert in HPC I/O performance.", prompt);
        let response = self.model.complete(&req).text;
        drop(span);
        let llm_hist = metrics.histogram("stage.llm_ns");
        llm_hist.record_duration(transform_elapsed);
        llm_hist.record_duration(diagnose_start.elapsed());

        SummaryBlock::new(fragment.title.clone(), response_to_points(&response))
    }

    /// Open an interactive session seeded with a diagnosis of the trace.
    pub fn start_session(&self, trace: &DarshanTrace) -> AgentSession<'m> {
        let diagnosis = self.diagnose(trace);
        AgentSession::new(self.model, diagnosis, trace)
    }
}

/// Parse a diagnosis response into `- POINT[key]` lines (one per issue
/// block, references attached).
fn response_to_points(response: &str) -> Vec<String> {
    let mut points = Vec::new();
    let mut current: Option<(IssueLabel, Vec<String>, Vec<String>)> = None;
    let flush = |cur: &mut Option<(IssueLabel, Vec<String>, Vec<String>)>,
                 points: &mut Vec<String>| {
        if let Some((issue, body, refs)) = cur.take() {
            let mut line = format!(
                "- POINT[{}] Issue: {} — {}",
                issue.key(),
                issue.display_name(),
                body.join(" ")
            );
            if !refs.is_empty() {
                line.push_str(&format!(" ;; REFS: {}", refs.join(" | ")));
            }
            points.push(line);
        }
    };
    for raw in response.lines() {
        let line = raw.trim();
        if line == "Observations:" || line == "General suggestions:" {
            // Trailing free-form sections are not mergeable findings.
            flush(&mut current, &mut points);
            break;
        }
        if let Some(rest) = line.strip_prefix("Issue:") {
            flush(&mut current, &mut points);
            if let Ok(issue) = rest.trim().parse::<IssueLabel>() {
                current = Some((issue, Vec::new(), Vec::new()));
            }
        } else if let Some(cite) = line.strip_prefix("Reference:") {
            if let Some((_, _, refs)) = current.as_mut() {
                refs.push(cite.trim().to_string());
            }
        } else if !line.is_empty() {
            if let Some((_, body, _)) = current.as_mut() {
                body.push(line.to_string());
            }
        }
    }
    flush(&mut current, &mut points);
    points
}

/// Render merged points into the final report.
fn render_report(tool: &str, merged: &SummaryBlock) -> (String, Vec<IssueLabel>, Vec<String>) {
    let mut text = format!(
        "{tool} diagnosis report\n{}\n\n",
        "=".repeat(tool.len() + 17)
    );
    let mut issues: Vec<IssueLabel> = Vec::new();
    let mut references: BTreeSet<String> = BTreeSet::new();
    if merged.points.is_empty() {
        text.push_str("No significant I/O performance issues identified.\n");
        return (text, issues, Vec::new());
    }
    for point in &merged.points {
        // `- POINT[key] Issue: Name — body ;; REFS: [a] | [b]`
        let (head, refs) = match point.split_once(";; REFS:") {
            Some((h, r)) => (h, Some(r)),
            None => (point.as_str(), None),
        };
        let body = head
            .strip_prefix("- POINT[")
            .and_then(|r| r.split_once("] "))
            .map(|(_, b)| b)
            .unwrap_or(head);
        text.push_str(body.trim());
        text.push('\n');
        if let Some(key) = point
            .strip_prefix("- POINT[")
            .and_then(|r| r.split(']').next())
        {
            if let Ok(issue) = key.parse::<IssueLabel>() {
                if !issues.contains(&issue) {
                    issues.push(issue);
                }
            }
        }
        if let Some(refs) = refs {
            for r in refs.split('|') {
                let r = r.trim();
                if !r.is_empty() {
                    text.push_str(&format!("  Reference: {r}\n"));
                    references.insert(r.to_string());
                }
            }
        }
        text.push('\n');
    }
    (text, issues, references.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracebench::TraceBench;

    #[test]
    fn agent_diagnoses_simple_trace_accurately() {
        let tb = TraceBench::generate();
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::new(&model);
        let entry = tb.get("sb01_small_io").unwrap();
        let d = agent.diagnose(&entry.trace);
        let found = d.issue_set();
        for l in entry.spec.labels {
            assert!(found.contains(l), "missing {l:?} in:\n{}", d.text);
        }
    }

    #[test]
    fn agent_finds_server_imbalance_where_drishti_cannot() {
        let tb = TraceBench::generate();
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::new(&model);
        let d = agent.diagnose(&tb.get("sb10_server_hotspot").unwrap().trace);
        assert!(
            d.issues.contains(&IssueLabel::ServerLoadImbalance),
            "{}",
            d.text
        );
    }

    #[test]
    fn reports_carry_references() {
        let tb = TraceBench::generate();
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::new(&model);
        let d = agent.diagnose(&tb.get("ra_amrex").unwrap().trace);
        assert!(!d.references.is_empty(), "{}", d.text);
        assert!(d.text.contains("Reference: ["));
    }

    #[test]
    fn diagnosis_is_deterministic() {
        let tb = TraceBench::generate();
        let model = SimLlm::new("llama-3.1-70b");
        let agent = IoAgent::new(&model);
        let t = &tb.get("sb04_shared_file").unwrap().trace;
        assert_eq!(agent.diagnose(t).text, agent.diagnose(t).text);
    }

    #[test]
    fn response_points_round_trip() {
        let response = "I/O Performance Diagnosis\n\n\
            Issue: Small Write I/O Requests\n  small writes hurt (data: 95%)\n\
            Recommendation: aggregate.\n  Reference: [A, B 2020]\n\n\
            Issue: Server Load Imbalance\n  stripe 1 (data: 1 of 64 OSTs)\n";
        let points = response_to_points(response);
        assert_eq!(points.len(), 2);
        assert!(points[0].contains("POINT[small_write]"));
        assert!(points[0].contains(";; REFS: [A, B 2020]"));
        assert!(points[1].contains("POINT[server_load_imbalance]"));
    }

    #[test]
    fn agent_recall_beats_ion_recall_across_subset() {
        let tb = TraceBench::generate();
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::new(&model);
        let ion_model = SimLlm::new("gpt-4o");
        let ion = baselines_ion_recall_helper(&tb, &ion_model);
        let mut hit = 0;
        let mut total = 0;
        for e in tb.entries.iter().take(12) {
            let d = agent.diagnose(&e.trace);
            let found = d.issue_set();
            for l in e.spec.labels {
                total += 1;
                if found.contains(l) {
                    hit += 1;
                }
            }
        }
        let agent_recall = hit as f64 / total as f64;
        assert!(
            agent_recall > ion + 0.1,
            "agent {agent_recall:.2} vs ion {ion:.2}"
        );
    }

    // Minimal inline ION equivalent to avoid a circular dev-dependency on
    // the baselines crate.
    fn baselines_ion_recall_helper(tb: &TraceBench, model: &SimLlm) -> f64 {
        let mut hit = 0;
        let mut total = 0;
        for e in tb.entries.iter().take(12) {
            let raw = darshan::write::write_text(&e.trace);
            let req = CompletionRequest::new(
                "You are an expert in HPC I/O performance analysis.",
                format!("### TASK: diagnose\n## TRACE\n{raw}"),
            );
            let d = Diagnosis::from_text("ion", model.complete(&req).text);
            let found = d.issue_set();
            for l in e.spec.labels {
                total += 1;
                if found.contains(l) {
                    hit += 1;
                }
            }
        }
        hit as f64 / total as f64
    }
}
