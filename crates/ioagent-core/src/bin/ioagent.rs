//! `ioagent` — command-line front end to the diagnosis pipeline.
//!
//! ```text
//! USAGE:
//!   ioagent [OPTIONS] [TRACE_FILE]
//!
//! ARGS:
//!   TRACE_FILE    darshan-parser text output; reads stdin when omitted
//!
//! OPTIONS:
//!   --model NAME      backbone model profile (default: gpt-4o)
//!   --ask QUESTION    follow-up question after the diagnosis (repeatable)
//!   --json            emit the diagnosis as JSON instead of text
//!   --flat-merge      use the 1-step merge ablation instead of the tree
//!   --no-rag          disable domain-knowledge retrieval
//!   --state-dir DIR   reuse/write the knowledge-index snapshot in DIR
//!                     (the same snapshot `ioagentd --state-dir` maintains)
//!   --ivf-clusters N  IVF-cluster the knowledge index around N coarse
//!                     centroids (default: 0 = exact flat scan)
//!   --nprobe N        clusters probed per retrieval (default: an eighth
//!                     of --ivf-clusters; N >= clusters = exact mode)
//!   --sq8             scan probed clusters over int8 (SQ8) codes and
//!                     rerank a small candidate pool in exact f32;
//!                     requires --ivf-clusters (scores stay exact)
//!   --sq8-rerank-pool N  SQ8 candidates reranked in exact f32 per query
//!                     (default: 0 = the vecindex default pool)
//!   --list-models     print available model profiles and exit
//!   -h, --help        print this help
//! ```
//!
//! Example:
//! ```sh
//! darshan-parser --all job.darshan > job.txt
//! ioagent --model llama-3.1-70b --ask "how do I fix the stripe settings?" job.txt
//! ```

use ioagent_core::{AgentConfig, IoAgent, MergeStrategy};
use simllm::{SimLlm, PROFILES};
use std::io::Read;

fn usage() -> ! {
    // The module docs double as the help text.
    eprintln!(
        "ioagent — LLM-orchestrated HPC I/O diagnosis\n\n\
         USAGE: ioagent [OPTIONS] [TRACE_FILE]\n\n\
         ARGS:\n  TRACE_FILE        darshan-parser text output; stdin when omitted\n\n\
         OPTIONS:\n\
           --model NAME      backbone model profile (default: gpt-4o)\n\
           --ask QUESTION    follow-up question after the diagnosis (repeatable)\n\
           --json            emit the diagnosis as JSON\n\
           --flat-merge      use the 1-step merge ablation\n\
           --no-rag          disable domain-knowledge retrieval\n\
           --state-dir DIR   reuse/write the knowledge-index snapshot in DIR\n\
           --ivf-clusters N  IVF-cluster the knowledge index (0 = flat)\n\
           --nprobe N        clusters probed per retrieval (0 = default)\n\
           --sq8             int8 scan + exact f32 rerank of probed\n\
                             clusters (requires --ivf-clusters)\n\
           --sq8-rerank-pool N  SQ8 rerank-pool size (0 = default)\n\
           --list-models     print available model profiles and exit\n\
           -h, --help        print this help"
    );
    std::process::exit(2);
}

fn main() {
    let mut model_name = "gpt-4o".to_string();
    let mut questions: Vec<String> = Vec::new();
    let mut json = false;
    let mut config = AgentConfig::default();
    let mut trace_path: Option<String> = None;
    let mut state_dir: Option<String> = None;
    let mut ivf_clusters = 0usize;
    let mut ivf_nprobe = 0usize;
    let mut sq8 = false;
    let mut sq8_rerank_pool = 0usize;

    let parse_count = |value: Option<String>, flag: &str| -> usize {
        match value.map(|v| v.parse::<usize>()) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!("{flag} expects a non-negative integer");
                usage();
            }
        }
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => model_name = args.next().unwrap_or_else(|| usage()),
            "--ask" => questions.push(args.next().unwrap_or_else(|| usage())),
            "--json" => json = true,
            "--flat-merge" => config.merge = MergeStrategy::Flat,
            "--no-rag" => config.use_rag = false,
            "--state-dir" => state_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--ivf-clusters" => ivf_clusters = parse_count(args.next(), "--ivf-clusters"),
            "--nprobe" => ivf_nprobe = parse_count(args.next(), "--nprobe"),
            "--sq8" => sq8 = true,
            "--sq8-rerank-pool" => sq8_rerank_pool = parse_count(args.next(), "--sq8-rerank-pool"),
            "--list-models" => {
                println!(
                    "{:<16} {:>8} {:>12} {:>12}",
                    "model", "vendor", "context", "capability"
                );
                for p in PROFILES {
                    println!(
                        "{:<16} {:>8} {:>12} {:>12.2}",
                        p.name, p.vendor, p.context_tokens, p.capability
                    );
                }
                return;
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other:?}");
                usage();
            }
            other => trace_path = Some(other.to_string()),
        }
    }

    let text = match &trace_path {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path:?}: {e}");
            std::process::exit(1);
        }),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| {
                    eprintln!("cannot read stdin: {e}");
                    std::process::exit(1);
                });
            buf
        }
    };
    let trace = darshan::parse::parse_text(&text).unwrap_or_else(|e| {
        eprintln!("failed to parse darshan text: {e}");
        std::process::exit(1);
    });

    if simllm::profile(&model_name).is_none() {
        eprintln!("unknown model {model_name:?}; use --list-models");
        std::process::exit(2);
    }
    let model = SimLlm::new(&model_name);
    // IVF probing is opt-in; 0 clusters keeps the exact flat scan.
    if ivf_clusters == 0 && ivf_nprobe > 0 {
        eprintln!(
            "[ioagent] warning: --nprobe {ivf_nprobe} has no effect without --ivf-clusters; \
             retrieval stays an exact flat scan"
        );
    }
    let ivf = (ivf_clusters > 0).then(|| {
        if ivf_nprobe == 0 {
            ioagent_core::IvfParams::with_default_nprobe(ivf_clusters)
        } else {
            ioagent_core::IvfParams {
                clusters: ivf_clusters,
                nprobe: ivf_nprobe,
            }
        }
    });
    // SQ8 scans probed clusters, so it has nothing to do on a flat index.
    if sq8 && ivf_clusters == 0 {
        eprintln!("--sq8 requires --ivf-clusters");
        std::process::exit(2);
    }
    if !sq8 && sq8_rerank_pool > 0 {
        eprintln!(
            "[ioagent] warning: --sq8-rerank-pool {sq8_rerank_pool} has no effect without --sq8"
        );
    }
    let sq8 = sq8.then(|| {
        if sq8_rerank_pool == 0 {
            ioagent_core::Sq8Params::default()
        } else {
            ioagent_core::Sq8Params {
                rerank_pool: sq8_rerank_pool,
            }
        }
    });
    // With --state-dir, the knowledge index is loaded from (or saved to)
    // the same snapshot `ioagentd` maintains, skipping the per-invocation
    // re-embedding of the corpus. Diagnoses are byte-identical either way.
    let agent = match &state_dir {
        Some(dir) => {
            let state = iostore::StateDir::new(dir).unwrap_or_else(|e| {
                eprintln!("cannot open state dir {dir:?}: {e}");
                std::process::exit(1);
            });
            let (retriever, provenance) =
                ioagent_core::Retriever::build_or_load_tuned(&state, ivf, sq8);
            match provenance {
                ioagent_core::IndexProvenance::Snapshot => {
                    eprintln!("[ioagent] knowledge index loaded from snapshot")
                }
                ioagent_core::IndexProvenance::Rebuilt(reason) => {
                    eprintln!("[ioagent] knowledge index rebuilt ({reason})")
                }
            }
            IoAgent::with_shared_retriever(&model, config, std::sync::Arc::new(retriever))
        }
        None if ivf.is_some() => IoAgent::with_shared_retriever(
            &model,
            config,
            std::sync::Arc::new(ioagent_core::Retriever::build_tuned(ivf, sq8)),
        ),
        None => IoAgent::with_config(&model, config),
    };

    if questions.is_empty() {
        let diagnosis = agent.diagnose(&trace);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&diagnosis).expect("serialize")
            );
        } else {
            println!("{}", diagnosis.text);
        }
    } else {
        let mut session = agent.start_session(&trace);
        println!("{}", session.diagnosis.text);
        for q in questions {
            println!("user> {q}\n");
            println!("ioagent> {}\n", session.ask(&q));
        }
    }
    eprintln!(
        "[{} calls, {} input tokens, ${:.4} simulated cost]",
        model.usage().calls,
        model.usage().input_tokens,
        model.usage().cost_usd
    );
}
