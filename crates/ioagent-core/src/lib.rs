//! `ioagent-core` — the paper's primary contribution: an LLM-orchestrated,
//! trustworthy HPC I/O performance diagnosis agent.
//!
//! Given a Darshan trace, [`IoAgent::diagnose`] runs the three-stage
//! pipeline of paper §IV:
//!
//! 1. **Module-based pre-processing** (via the `preprocessor` crate): the
//!    log is split per module and reduced to categorised JSON summary
//!    fragments, sidestepping context-window truncation entirely.
//! 2. **Domain Knowledge Integration**: each fragment is transformed to
//!    natural language by the LLM (better embedding alignment with expert
//!    prose), used as a query over the 66-document knowledge index
//!    (top-15 cosine retrieval), and the hits are filtered in parallel by a
//!    cheaper *self-reflection* model. The surviving sources ground a
//!    per-fragment diagnosis with citations.
//! 3. **Tree-based merge**: per-fragment diagnoses are merged pairwise,
//!    level by level (merges within a level run in parallel), preserving
//!    key points and references that a single flat merge would lose.
//!
//! The result is a [`simllm::Diagnosis`] with justifications and references,
//! plus an interactive [`session::AgentSession`] for follow-up questions.

pub mod agent;
pub mod merge;
pub mod rag;
pub mod session;
pub mod transform;

pub use agent::{AgentConfig, IoAgent};
pub use merge::{MergeStrategy, SummaryBlock};
pub use rag::{IndexProvenance, IvfParams, Retriever, Sq8Params};
pub use session::AgentSession;
