//! Score aggregation and normalisation (paper Eqs. 1–2, Table IV layout).

use crate::criteria::Criterion;
use std::collections::BTreeMap;
use tracebench::Source;

/// Key for one aggregated cell: (tool index, criterion, source).
pub type ScoreKey = (usize, Criterion, Source);

/// Accumulated evaluation scores.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Tool names in evaluation order.
    pub tools: Vec<String>,
    n_tools: usize,
    /// Sum of `(n − rank)` per cell.
    sums: BTreeMap<ScoreKey, f64>,
    /// Sample counts per cell.
    counts: BTreeMap<ScoreKey, usize>,
}

impl Evaluation {
    /// Create an empty evaluation for `n_tools` tools.
    pub fn new(tools: Vec<String>, n_tools: usize) -> Self {
        Evaluation {
            tools,
            n_tools,
            sums: BTreeMap::new(),
            counts: BTreeMap::new(),
        }
    }

    /// Record one per-trace score `S = n − rank`.
    pub fn add_sample(&mut self, tool: usize, criterion: Criterion, source: Source, score: f64) {
        *self.sums.entry((tool, criterion, source)).or_insert(0.0) += score;
        *self.counts.entry((tool, criterion, source)).or_insert(0) += 1;
    }

    /// Normalised score `NS = Σ S / ((n−1)·|D|)` for a tool and criterion;
    /// `source = None` aggregates over all sources (the paper's "Overall").
    pub fn normalized(&self, tool: usize, criterion: Criterion, source: Option<Source>) -> f64 {
        let sources: Vec<Source> = match source {
            Some(s) => vec![s],
            None => Source::ALL.to_vec(),
        };
        let mut sum = 0.0;
        let mut count = 0usize;
        for s in sources {
            sum += self.sums.get(&(tool, criterion, s)).copied().unwrap_or(0.0);
            count += self.counts.get(&(tool, criterion, s)).copied().unwrap_or(0);
        }
        if count == 0 {
            return 0.0;
        }
        sum / ((self.n_tools as f64 - 1.0) * count as f64)
    }

    /// Average normalised score across the three criteria.
    pub fn average(&self, tool: usize, source: Option<Source>) -> f64 {
        Criterion::ALL
            .iter()
            .map(|&c| self.normalized(tool, c, source))
            .sum::<f64>()
            / 3.0
    }

    /// Render the full Table IV reproduction.
    pub fn render_table4(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<17} {:<22} {:>12} {:>8} {:>18} {:>9}\n",
            "Metric", "Diagnosis Tool", "Simple-Bench", "IO500", "Real-Applications", "Overall"
        ));
        let mut block = |label: &str, f: &dyn Fn(usize, Option<Source>) -> f64| {
            for (ti, tool) in self.tools.iter().enumerate() {
                out.push_str(&format!(
                    "{:<17} {:<22} {:>12.3} {:>8.3} {:>18.3} {:>9.3}\n",
                    if ti == 0 { label } else { "" },
                    tool,
                    f(ti, Some(Source::SimpleBench)),
                    f(ti, Some(Source::Io500)),
                    f(ti, Some(Source::RealApps)),
                    f(ti, None),
                ));
            }
        };
        for criterion in Criterion::ALL {
            let name = criterion.to_string();
            block(&name, &|ti, s| self.normalized(ti, criterion, s));
        }
        block("Average", &|ti, s| self.average(ti, s));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_matches_paper_formula() {
        // One source with two traces, 4 tools; tool 0 always rank 1 → S = 3
        // per trace → NS = (3+3)/((4−1)·2) = 1.0.
        let mut e = Evaluation::new(vec!["a".into(), "b".into(), "c".into(), "d".into()], 4);
        for _ in 0..2 {
            e.add_sample(0, Criterion::Accuracy, Source::SimpleBench, 3.0);
            e.add_sample(1, Criterion::Accuracy, Source::SimpleBench, 2.0);
            e.add_sample(2, Criterion::Accuracy, Source::SimpleBench, 1.0);
            e.add_sample(3, Criterion::Accuracy, Source::SimpleBench, 0.0);
        }
        assert!(
            (e.normalized(0, Criterion::Accuracy, Some(Source::SimpleBench)) - 1.0).abs() < 1e-12
        );
        assert!(
            (e.normalized(3, Criterion::Accuracy, Some(Source::SimpleBench)) - 0.0).abs() < 1e-12
        );
        assert!(
            (e.normalized(1, Criterion::Accuracy, Some(Source::SimpleBench)) - 2.0 / 3.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn overall_pools_sources() {
        let mut e = Evaluation::new(vec!["a".into(), "b".into()], 2);
        e.add_sample(0, Criterion::Utility, Source::SimpleBench, 1.0);
        e.add_sample(0, Criterion::Utility, Source::Io500, 0.0);
        // NS over both = (1+0)/((2−1)·2) = 0.5.
        assert!((e.normalized(0, Criterion::Utility, None) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cell_scores_zero() {
        let e = Evaluation::new(vec!["a".into()], 4);
        assert_eq!(e.normalized(0, Criterion::Accuracy, None), 0.0);
    }

    #[test]
    fn table_renders_all_rows() {
        let mut e = Evaluation::new(vec!["drishti".into(), "ion".into()], 2);
        e.add_sample(0, Criterion::Accuracy, Source::SimpleBench, 1.0);
        let t = e.render_table4();
        assert!(t.contains("Accuracy"));
        assert!(t.contains("Interpretability"));
        assert!(t.contains("Average"));
        assert!(t.contains("drishti"));
        // 4 blocks × 2 tools + header.
        assert_eq!(t.lines().count(), 1 + 4 * 2);
    }
}
