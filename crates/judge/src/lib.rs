//! LLM-as-judge evaluation harness (paper §VI-A..D).
//!
//! Diagnosis outputs from competing tools are ranked 1..4 per trace and per
//! criterion by a capable LLM. Because LLM judges exhibit positional and
//! name bias, the harness applies the paper's three augmentations:
//!
//! - **A — anonymisation**: tool names are replaced by neutral `Tool-k`
//!   tags (defeats name bias);
//! - **B — rank-assignment-order rotation**: the order in which the
//!   response format asks for ranks rotates across permutations;
//! - **C — content-order rotation**: the order the candidate reports
//!   appear in the prompt rotates across permutations.
//!
//! Each sample is ranked under four permutations so every rotation appears,
//! and scores are aggregated with the paper's normalisation:
//! `S = (4 − rank)`, summed per source and divided by `3·|D|` (Eqs. 1–2).

pub mod bias;
pub mod criteria;
pub mod scoring;

pub use bias::position_rank_matrix;
pub use criteria::Criterion;
pub use scoring::{Evaluation, ScoreKey};

use rayon::prelude::*;
use simllm::{CompletionRequest, Diagnosis, LanguageModel};
use tracebench::{LabeledTrace, Source, TraceBench};

/// Which of the paper's augmentations are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augmentations {
    /// A: anonymise tool names.
    pub anonymize: bool,
    /// B: rotate the rank-assignment order in the response format.
    pub rotate_rank_order: bool,
    /// C: rotate the order of candidate content in the prompt.
    pub rotate_content: bool,
}

impl Augmentations {
    /// All augmentations on (the paper's configuration).
    pub const FULL: Augmentations = Augmentations {
        anonymize: true,
        rotate_rank_order: true,
        rotate_content: true,
    };
    /// No augmentations (the biased baseline).
    pub const NONE: Augmentations = Augmentations {
        anonymize: false,
        rotate_rank_order: false,
        rotate_content: false,
    };
}

/// One tool's diagnoses, aligned index-for-index with the suite entries.
pub struct ToolRun {
    /// Tool name (shown to the judge only when not anonymised).
    pub tool: String,
    /// One diagnosis per suite entry.
    pub diagnoses: Vec<Diagnosis>,
}

/// The judge bound to a rating model.
pub struct Judge<'m> {
    model: &'m dyn LanguageModel,
    /// Active augmentations.
    pub augmentations: Augmentations,
    /// Ranking repetitions per sample (paper: 4, covering each rotation).
    pub permutations: usize,
}

impl<'m> Judge<'m> {
    /// Create a judge with the paper's configuration (GPT-4o, full
    /// augmentations, 4 permutations).
    pub fn new(model: &'m dyn LanguageModel) -> Self {
        Judge {
            model,
            augmentations: Augmentations::FULL,
            permutations: 4,
        }
    }

    /// Create a judge with explicit augmentations.
    pub fn with_augmentations(model: &'m dyn LanguageModel, aug: Augmentations) -> Self {
        Judge {
            model,
            augmentations: aug,
            permutations: 4,
        }
    }

    /// Rank the candidate diagnoses for one trace under one criterion and
    /// one permutation. Returns, per candidate (in input order), the
    /// assigned rank 1..n (1 = best) and the prompt position it occupied.
    pub fn rank_once(
        &self,
        entry: &LabeledTrace,
        criterion: Criterion,
        candidates: &[&Diagnosis],
        permutation: usize,
    ) -> Vec<(usize, usize)> {
        let n = candidates.len();
        assert!(n >= 2, "need at least two candidates to rank");
        // Tags (augmentation A).
        let tags: Vec<String> = (0..n)
            .map(|i| {
                if self.augmentations.anonymize {
                    format!("Tool-{}", i + 1)
                } else {
                    candidates[i].tool.clone()
                }
            })
            .collect();
        // Content order (augmentation C).
        let content_order: Vec<usize> = if self.augmentations.rotate_content {
            (0..n).map(|i| (i + permutation) % n).collect()
        } else {
            (0..n).collect()
        };
        // Rank-assignment order (augmentation B) — rotated differently so B
        // and C do not cancel each other trivially.
        let format_order: Vec<usize> = if self.augmentations.rotate_rank_order {
            (0..n)
                .map(|i| (n - 1 + i * (n - 1) + permutation) % n)
                .collect()
        } else {
            (0..n).collect()
        };

        let mut prompt = format!(
            "### TASK: rank\n## CRITERION\n{} — {}\n",
            criterion.key(),
            criterion.description()
        );
        if criterion == Criterion::Accuracy {
            let gt: Vec<&str> = entry.spec.labels.iter().map(|l| l.display_name()).collect();
            prompt.push_str(&format!("## GROUND TRUTH\n{}\n", gt.join("; ")));
        }
        prompt.push_str(&format!(
            "## FORMAT\nassign ranks in order: {}\n",
            format_order
                .iter()
                .map(|&i| tags[i].as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        for &idx in &content_order {
            prompt.push_str(&format!(
                "## CANDIDATE {}\n{}\n",
                tags[idx], candidates[idx].text
            ));
        }

        let req = CompletionRequest::new(
            "You are a meticulous rater of I/O diagnosis reports.",
            prompt,
        )
        .with_salt(permutation as u64);
        let response = self.model.complete(&req).text;

        // Parse "RANKING: a > b > c > d".
        let ranking_line = response
            .lines()
            .find(|l| l.starts_with("RANKING:"))
            .map(|l| l.trim_start_matches("RANKING:").trim().to_string())
            .unwrap_or_default();
        let ordered_tags: Vec<&str> = ranking_line.split('>').map(str::trim).collect();
        let mut out = vec![(n, 0); n];
        for (rank0, tag) in ordered_tags.iter().enumerate() {
            if let Some(i) = tags.iter().position(|t| t == tag) {
                let position = content_order.iter().position(|&c| c == i).unwrap_or(0);
                out[i] = (rank0 + 1, position);
            }
        }
        out
    }

    /// Mean rank (1 = best) per candidate for one trace/criterion across
    /// all permutations.
    pub fn mean_ranks(
        &self,
        entry: &LabeledTrace,
        criterion: Criterion,
        candidates: &[&Diagnosis],
    ) -> Vec<f64> {
        let n = candidates.len();
        let mut sums = vec![0.0; n];
        for p in 0..self.permutations {
            for (i, (rank, _)) in self
                .rank_once(entry, criterion, candidates, p)
                .into_iter()
                .enumerate()
            {
                sums[i] += rank as f64;
            }
        }
        sums.iter_mut().for_each(|s| *s /= self.permutations as f64);
        sums
    }

    /// Evaluate the full suite for a set of tool runs, producing the paper's
    /// normalised scores (Table IV). Traces are judged in parallel; per-trace
    /// rows are collected in suite order and aggregated sequentially, so
    /// scores (f64 sums included) are identical at any thread count.
    pub fn evaluate(&self, suite: &TraceBench, runs: &[ToolRun]) -> Evaluation {
        for run in runs {
            assert_eq!(
                run.diagnoses.len(),
                suite.len(),
                "tool {} diagnoses misaligned with suite",
                run.tool
            );
        }
        let per_trace: Vec<Vec<(Criterion, Vec<f64>)>> = suite
            .entries
            .par_iter()
            .enumerate()
            .map(|(ti, entry)| {
                let candidates: Vec<&Diagnosis> = runs.iter().map(|r| &r.diagnoses[ti]).collect();
                Criterion::ALL
                    .into_iter()
                    .map(|c| (c, self.mean_ranks(entry, c, &candidates)))
                    .collect()
            })
            .collect();

        let mut eval = Evaluation::new(runs.iter().map(|r| r.tool.clone()).collect(), runs.len());
        for (ti, rows) in per_trace.iter().enumerate() {
            let source = suite.entries[ti].spec.source;
            for (criterion, ranks) in rows {
                for (tool_idx, rank) in ranks.iter().enumerate() {
                    // S = (max_rank − rank); normalisation happens later.
                    let score = runs.len() as f64 - rank;
                    eval.add_sample(tool_idx, *criterion, source, score);
                }
            }
        }
        eval
    }
}

/// Convenience: evaluate with per-source trace counts from the suite.
pub fn source_of(entry: &LabeledTrace) -> Source {
    entry.spec.source
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::SimLlm;
    use tracebench::IssueLabel;

    fn mini_suite() -> TraceBench {
        let mut tb = TraceBench::generate();
        tb.entries.truncate(6);
        tb
    }

    fn fake_diagnosis(tool: &str, labels: &[IssueLabel], extra: &str) -> Diagnosis {
        let mut text = format!("{tool} report\n");
        for l in labels {
            text.push_str(&format!(
                "Issue: {}\n  details with 42 numbers\n  Recommendation: fix it\n",
                l.display_name()
            ));
        }
        text.push_str(extra);
        Diagnosis::from_text(tool, text)
    }

    #[test]
    fn accurate_tool_outranks_empty_tool() {
        let tb = mini_suite();
        let model = SimLlm::new("gpt-4o");
        let judge = Judge::new(&model);
        let runs: Vec<ToolRun> = vec![
            ToolRun {
                tool: "good".into(),
                diagnoses: tb
                    .entries
                    .iter()
                    .map(|e| fake_diagnosis("good", e.spec.labels, ""))
                    .collect(),
            },
            ToolRun {
                tool: "empty".into(),
                diagnoses: tb
                    .entries
                    .iter()
                    .map(|_| fake_diagnosis("empty", &[], "nothing found"))
                    .collect(),
            },
        ];
        let eval = judge.evaluate(&tb, &runs);
        let good = eval.normalized(0, Criterion::Accuracy, None);
        let empty = eval.normalized(1, Criterion::Accuracy, None);
        assert!(good > empty + 0.3, "good {good} empty {empty}");
    }

    #[test]
    fn ranks_cover_all_candidates() {
        let tb = mini_suite();
        let model = SimLlm::new("gpt-4o");
        let judge = Judge::new(&model);
        let d1 = fake_diagnosis("a", &[IssueLabel::SmallWrite], "");
        let d2 = fake_diagnosis("b", &[IssueLabel::SmallRead], "");
        let d3 = fake_diagnosis("c", &[], "");
        let ranks = judge.rank_once(&tb.entries[0], Criterion::Utility, &[&d1, &d2, &d3], 0);
        let mut rs: Vec<usize> = ranks.iter().map(|(r, _)| *r).collect();
        rs.sort_unstable();
        assert_eq!(rs, vec![1, 2, 3]);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let tb = mini_suite();
        let model = SimLlm::new("gpt-4o");
        let judge = Judge::new(&model);
        let runs = || {
            vec![
                ToolRun {
                    tool: "x".into(),
                    diagnoses: tb
                        .entries
                        .iter()
                        .map(|e| fake_diagnosis("x", e.spec.labels, ""))
                        .collect(),
                },
                ToolRun {
                    tool: "y".into(),
                    diagnoses: tb
                        .entries
                        .iter()
                        .map(|e| {
                            fake_diagnosis("y", &e.spec.labels[..1.min(e.spec.labels.len())], "")
                        })
                        .collect(),
                },
            ]
        };
        let a = judge.evaluate(&tb, &runs());
        let b = judge.evaluate(&tb, &runs());
        assert_eq!(
            a.normalized(0, Criterion::Accuracy, None),
            b.normalized(0, Criterion::Accuracy, None)
        );
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_runs_panic() {
        let tb = mini_suite();
        let model = SimLlm::new("gpt-4o");
        let judge = Judge::new(&model);
        let runs = vec![
            ToolRun {
                tool: "x".into(),
                diagnoses: vec![],
            },
            ToolRun {
                tool: "y".into(),
                diagnoses: vec![],
            },
        ];
        judge.evaluate(&tb, &runs);
    }
}
