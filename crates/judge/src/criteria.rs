//! Evaluation criteria (paper §VI-A).

use serde::Serialize;
use std::fmt;

/// The three rating criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Criterion {
    /// How accurately ground-truth labels are diagnosed.
    Accuracy,
    /// How useful the information is for understanding and fixing issues.
    Utility,
    /// How readable and understandable the report is for any user.
    Interpretability,
}

impl Criterion {
    /// All criteria in paper order.
    pub const ALL: [Criterion; 3] = [
        Criterion::Accuracy,
        Criterion::Utility,
        Criterion::Interpretability,
    ];

    /// Lower-case key used in ranking prompts.
    pub fn key(&self) -> &'static str {
        match self {
            Criterion::Accuracy => "accuracy",
            Criterion::Utility => "utility",
            Criterion::Interpretability => "interpretability",
        }
    }

    /// Description shown to the judge (paper wording).
    pub fn description(&self) -> &'static str {
        match self {
            Criterion::Accuracy => {
                "evaluate how accurately the ground truth labels are diagnosed by each tool"
            }
            Criterion::Utility => {
                "evaluate how useful the information provided in each diagnosis is for \
                 understanding the overall I/O behavior, identifying performance issues, \
                 and determining how to address each noted issue"
            }
            Criterion::Interpretability => {
                "evaluate how readable and understandable the provided information is for \
                 users at any level of familiarity with HPC I/O"
            }
        }
    }
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Criterion::Accuracy => "Accuracy",
            Criterion::Utility => "Utility",
            Criterion::Interpretability => "Interpretability",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_lowercase_and_unique() {
        let mut keys: Vec<_> = Criterion::ALL.iter().map(|c| c.key()).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n);
        for k in keys {
            assert_eq!(k, k.to_lowercase());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Criterion::Accuracy.to_string(), "Accuracy");
    }
}
