//! Positional-bias measurement (paper Fig. 4 motivation).
//!
//! To show what the augmentations buy, we rank sets of candidates and
//! accumulate the mean assigned rank as a function of the *prompt position*
//! each candidate occupied. An unbiased judge produces a flat profile; a
//! biased one favours early positions. With the rotations enabled the
//! profile flattens even though the underlying model keeps its bias.

use crate::{Augmentations, Criterion, Judge, ToolRun};
use simllm::LanguageModel;
use tracebench::TraceBench;

/// Mean assigned rank per prompt position (index = position, 0 = first in
/// prompt), measured across the whole suite and all permutations.
pub fn position_rank_matrix(
    model: &dyn LanguageModel,
    suite: &TraceBench,
    runs: &[ToolRun],
    augmentations: Augmentations,
) -> Vec<f64> {
    let judge = Judge::with_augmentations(model, augmentations);
    let n = runs.len();
    let mut sums = vec![0.0; n];
    let mut counts = vec![0usize; n];
    for (ti, entry) in suite.entries.iter().enumerate() {
        let candidates: Vec<&simllm::Diagnosis> = runs.iter().map(|r| &r.diagnoses[ti]).collect();
        for p in 0..judge.permutations {
            for (rank, position) in judge.rank_once(entry, Criterion::Utility, &candidates, p) {
                sums[position] += rank as f64;
                counts[position] += 1;
            }
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

/// Spread (max − min) of the positional mean-rank profile; 0 = unbiased.
pub fn position_bias_spread(profile: &[f64]) -> f64 {
    let max = profile.iter().cloned().fold(f64::MIN, f64::max);
    let min = profile.iter().cloned().fold(f64::MAX, f64::min);
    if profile.is_empty() {
        0.0
    } else {
        max - min
    }
}

/// Mean assigned rank **per tool** (index = tool order in `runs`). With
/// identical candidate content, a fair evaluation gives every tool the same
/// mean rank ((n+1)/2); any spread is bias leaking into the *scores*. This
/// is the quantity the augmentations actually fix: the judge model stays
/// position-biased, but rotation decorrelates tools from positions and
/// anonymisation removes name priors, so per-tool means equalise.
pub fn tool_rank_means(
    model: &dyn LanguageModel,
    suite: &TraceBench,
    runs: &[ToolRun],
    augmentations: Augmentations,
) -> Vec<f64> {
    let judge = Judge::with_augmentations(model, augmentations);
    let n = runs.len();
    let mut sums = vec![0.0; n];
    let mut counts = vec![0usize; n];
    for (ti, entry) in suite.entries.iter().enumerate() {
        let candidates: Vec<&simllm::Diagnosis> = runs.iter().map(|r| &r.diagnoses[ti]).collect();
        for p in 0..judge.permutations {
            for (tool, (rank, _)) in judge
                .rank_once(entry, Criterion::Utility, &candidates, p)
                .into_iter()
                .enumerate()
            {
                sums[tool] += rank as f64;
                counts[tool] += 1;
            }
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simllm::{Diagnosis, SimLlm};

    fn identical_runs(suite: &TraceBench, n: usize) -> Vec<ToolRun> {
        // Identical content across tools: only bias can separate them.
        (0..n)
            .map(|i| ToolRun {
                tool: format!("tool-{i}"),
                diagnoses: suite
                    .entries
                    .iter()
                    .map(|e| {
                        let mut text = String::from("Report\n");
                        for l in e.spec.labels {
                            text.push_str(&format!(
                                "Issue: {}\n  Recommendation: fix.\n",
                                l.display_name()
                            ));
                        }
                        Diagnosis::from_text(format!("tool-{i}"), text)
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn rotations_flatten_per_tool_bias() {
        let mut suite = TraceBench::generate();
        suite.entries.truncate(8);
        let model = SimLlm::new("llama-3-70b"); // strongest positional bias
        let runs = identical_runs(&suite, 4);

        let biased = tool_rank_means(&model, &suite, &runs, Augmentations::NONE);
        let mitigated = tool_rank_means(&model, &suite, &runs, Augmentations::FULL);
        let spread_biased = position_bias_spread(&biased);
        let spread_mitigated = position_bias_spread(&mitigated);
        assert!(
            spread_biased > spread_mitigated + 0.3,
            "biased spread {spread_biased:.2} vs mitigated {spread_mitigated:.2}"
        );
    }

    #[test]
    fn position_profile_shows_primacy_without_augmentation() {
        let mut suite = TraceBench::generate();
        suite.entries.truncate(6);
        let model = SimLlm::new("llama-3-70b");
        let runs = identical_runs(&suite, 4);
        let profile = position_rank_matrix(&model, &suite, &runs, Augmentations::NONE);
        // Unmitigated: the first prompt position gets better (lower) ranks.
        assert!(profile[0] < profile[3], "profile {profile:?}");
    }
}
