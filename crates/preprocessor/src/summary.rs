//! Summary extraction: Table I's module × category matrix.
//!
//! Each supported (module, category) pair has its own extraction function
//! over the module's counters, producing a compact JSON summary fragment.
//! Fragments also carry canonical evidence pairs for the diagnosis engine
//! and the broader application context (runtime, process count, module
//! presence, I/O volume) the paper attaches to every fragment.

use darshan::counters::{Module, SIZE_BINS};
use darshan::derive::{LustreSummary, ModuleAgg, TraceSummary};
use darshan::DarshanTrace;
use serde_json::{json, Value};

/// Summary categories (columns of paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SummaryCategory {
    /// Access-size distribution and volumes.
    IoSize,
    /// Operation counts.
    RequestCount,
    /// File/metadata operation profile.
    FileMetadata,
    /// Rank attribution and balance.
    Rank,
    /// Alignment with file-system boundaries.
    Alignment,
    /// Sequentiality / access order.
    Order,
    /// Mount points and file-system types.
    Mount,
    /// Lustre stripe settings.
    StripeSetting,
    /// Object-storage-target usage.
    ServerUsage,
}

impl SummaryCategory {
    /// Display name as in Table I.
    pub fn display(&self) -> &'static str {
        match self {
            SummaryCategory::IoSize => "I/O Size",
            SummaryCategory::RequestCount => "I/O Request Count",
            SummaryCategory::FileMetadata => "File Metadata",
            SummaryCategory::Rank => "Rank",
            SummaryCategory::Alignment => "Alignment",
            SummaryCategory::Order => "Order",
            SummaryCategory::Mount => "Mount",
            SummaryCategory::StripeSetting => "Stripe Setting",
            SummaryCategory::ServerUsage => "Server Usage",
        }
    }

    /// All categories in Table I column order.
    pub const ALL: [SummaryCategory; 9] = [
        SummaryCategory::IoSize,
        SummaryCategory::RequestCount,
        SummaryCategory::FileMetadata,
        SummaryCategory::Rank,
        SummaryCategory::Alignment,
        SummaryCategory::Order,
        SummaryCategory::Mount,
        SummaryCategory::StripeSetting,
        SummaryCategory::ServerUsage,
    ];
}

/// Table I: which categories each module supports.
pub fn coverage(module: Module) -> &'static [SummaryCategory] {
    use SummaryCategory::*;
    match module {
        Module::Posix => &[
            IoSize,
            RequestCount,
            FileMetadata,
            Rank,
            Alignment,
            Order,
            Mount,
        ],
        Module::Mpiio => &[IoSize, RequestCount, FileMetadata, Rank, Alignment],
        Module::Stdio => &[IoSize, RequestCount, FileMetadata],
        Module::Lustre => &[Mount, StripeSetting, ServerUsage],
    }
}

/// One categorised JSON summary fragment.
#[derive(Debug, Clone)]
pub struct SummaryFragment {
    /// Source module.
    pub module: Module,
    /// Summary category.
    pub category: SummaryCategory,
    /// Display title, e.g. `POSIX I/O Size`.
    pub title: String,
    /// The JSON summary produced by the extraction function.
    pub json: Value,
    /// Canonical evidence pairs for the diagnosis engine.
    pub evidence: Vec<(String, f64)>,
}

impl SummaryFragment {
    /// Stable key, e.g. `posix_io_size`.
    pub fn key(&self) -> String {
        format!(
            "{}_{}",
            self.module.as_str().to_lowercase(),
            self.category
                .display()
                .to_lowercase()
                .replace(['/', ' '], "_")
                .replace("__", "_")
        )
    }

    /// Evidence rendered as `EVIDENCE k=v` prompt lines.
    pub fn evidence_lines(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.evidence {
            out.push_str(&format!("EVIDENCE {k}={v}\n"));
        }
        out
    }

    /// Compact JSON text of the summary.
    pub fn json_text(&self) -> String {
        serde_json::to_string_pretty(&self.json).unwrap_or_default()
    }
}

fn hist_json(hist: &[i64; 10], total: i64) -> Value {
    let mut map = serde_json::Map::new();
    if total > 0 {
        for (i, &c) in hist.iter().enumerate() {
            if c > 0 {
                map.insert(
                    SIZE_BINS[i].to_string(),
                    json!((c as f64 / total as f64 * 100.0).round() / 100.0),
                );
            }
        }
    }
    Value::Object(map)
}

/// Per-record derived facts the aggregates cannot provide.
struct RecordDerived {
    read_reuse: f64,
    rank_cv: f64,
    shared_data: bool,
}

fn record_derived(trace: &DarshanTrace) -> RecordDerived {
    let mut read_reuse: f64 = 0.0;
    let mut by_rank: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    let mut shared_data = false;
    for r in trace
        .records
        .iter()
        .filter(|r| matches!(r.module, Module::Posix | Module::Mpiio))
    {
        let p = r.module.prefix();
        let bytes = r.ic(&format!("{p}_BYTES_READ")) + r.ic(&format!("{p}_BYTES_WRITTEN"));
        if r.is_shared() && bytes > 0 {
            shared_data = true;
        }
        if r.module == Module::Posix {
            if r.rank >= 0 {
                *by_rank.entry(r.rank).or_insert(0) += bytes;
            }
            let br = r.ic("POSIX_BYTES_READ");
            let range = r.ic("POSIX_MAX_BYTE_READ") + 1;
            if br > 0 && range > 0 {
                read_reuse = read_reuse.max(br as f64 / range as f64);
            }
        }
    }
    let rank_cv = if by_rank.len() >= 2 {
        let vals: Vec<f64> = by_rank.values().map(|&v| v as f64).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean > 0.0 {
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            var.sqrt() / mean
        } else {
            0.0
        }
    } else {
        0.0
    };
    RecordDerived {
        read_reuse,
        rank_cv,
        shared_data,
    }
}

/// Extract every supported fragment from a trace.
pub fn extract_fragments(trace: &DarshanTrace) -> Vec<SummaryFragment> {
    let summary = TraceSummary::of(trace);
    let derived = record_derived(trace);

    // Broader application context attached to every fragment.
    let context: Vec<(String, f64)> = vec![
        ("nprocs".into(), summary.nprocs as f64),
        ("runtime".into(), summary.run_time),
        ("posix.present".into(), summary.posix.is_some() as u8 as f64),
        ("mpiio.present".into(), summary.mpiio.is_some() as u8 as f64),
        ("stdio.present".into(), summary.stdio.is_some() as u8 as f64),
        (
            "lustre.present".into(),
            summary.lustre.is_some() as u8 as f64,
        ),
        ("total_bytes".into(), summary.total_bytes() as f64),
    ];

    let mut fragments = Vec::new();
    for module in Module::ALL {
        if !trace.module_present(module) {
            continue;
        }
        for &category in coverage(module) {
            let fragment = match module {
                Module::Posix => {
                    posix_fragment(trace, &summary, summary.posix.as_ref(), &derived, category)
                }
                Module::Mpiio => mpiio_fragment(summary.mpiio.as_ref(), &derived, category),
                Module::Stdio => stdio_fragment(&summary, summary.stdio.as_ref(), category),
                Module::Lustre => lustre_fragment(trace, summary.lustre.as_ref(), category),
            };
            if let Some((json, mut evidence)) = fragment {
                evidence.extend(context.iter().cloned());
                fragments.push(SummaryFragment {
                    module,
                    category,
                    title: format!("{} {}", module.as_str(), category.display()),
                    json,
                    evidence,
                });
            }
        }
    }
    fragments
}

type Extraction = Option<(Value, Vec<(String, f64)>)>;

fn posix_fragment(
    trace: &DarshanTrace,
    summary: &TraceSummary,
    agg: Option<&ModuleAgg>,
    derived: &RecordDerived,
    category: SummaryCategory,
) -> Extraction {
    let a = agg?;
    match category {
        SummaryCategory::IoSize => Some((
            json!({
                "read_histogram": hist_json(&a.read_hist, a.reads),
                "write_histogram": hist_json(&a.write_hist, a.writes),
                "bytes_read": a.bytes_read,
                "bytes_written": a.bytes_written,
                "typical_read_size": a.max_read_time_size,
                "typical_write_size": a.max_write_time_size,
            }),
            vec![
                ("posix.reads".into(), a.reads as f64),
                ("posix.writes".into(), a.writes as f64),
                ("posix.small_read_fraction".into(), a.small_read_fraction()),
                (
                    "posix.small_write_fraction".into(),
                    a.small_write_fraction(),
                ),
                ("posix.bytes_read".into(), a.bytes_read as f64),
                ("posix.bytes_written".into(), a.bytes_written as f64),
            ],
        )),
        SummaryCategory::RequestCount => Some((
            json!({
                "reads": a.reads,
                "writes": a.writes,
                "opens": a.opens,
                "seeks": a.seeks,
                "stats": a.stats,
                "rw_switches": a.rw_switches,
                "read_reuse_factor": derived.read_reuse,
            }),
            vec![
                ("posix.reads".into(), a.reads as f64),
                ("posix.writes".into(), a.writes as f64),
                ("posix.opens".into(), a.opens as f64),
                ("posix.stats".into(), a.stats as f64),
                ("posix.read_reuse_factor".into(), derived.read_reuse),
            ],
        )),
        SummaryCategory::FileMetadata => Some((
            json!({
                "files": a.files,
                "opens": a.opens,
                "stats": a.stats,
                "syncs": a.syncs,
                "meta_time_seconds": (a.meta_time * 100.0).round() / 100.0,
                "meta_time_fraction":
                    (a.meta_time_fraction(summary.run_time, summary.nprocs) * 1000.0).round()
                        / 1000.0,
            }),
            vec![
                (
                    "posix.meta_fraction".into(),
                    a.meta_time_fraction(summary.run_time, summary.nprocs),
                ),
                ("posix.opens".into(), a.opens as f64),
                ("posix.stats".into(), a.stats as f64),
            ],
        )),
        SummaryCategory::Rank => Some((
            json!({
                "shared_files": a.shared_files,
                "fastest_rank_bytes": a.fastest_rank_bytes,
                "slowest_rank_bytes": a.slowest_rank_bytes,
                "variance_rank_bytes": a.variance_rank_bytes,
                "per_rank_byte_cv": (derived.rank_cv * 1000.0).round() / 1000.0,
            }),
            vec![
                ("posix.shared_data".into(), derived.shared_data as u8 as f64),
                ("posix.rank_cv".into(), derived.rank_cv),
                ("posix.rank_ratio".into(), a.rank_byte_imbalance()),
            ],
        )),
        SummaryCategory::Alignment => Some((
            json!({
                "file_not_aligned": a.file_not_aligned,
                "mem_not_aligned": a.mem_not_aligned,
                "file_alignment": a.file_alignment,
                "misaligned_fraction": (a.misaligned_fraction() * 1000.0).round() / 1000.0,
                "typical_read_size": a.max_read_time_size,
                "typical_write_size": a.max_write_time_size,
            }),
            {
                let align = if a.file_alignment > 0 {
                    a.file_alignment
                } else {
                    1
                };
                vec![
                    ("posix.misaligned_fraction".into(), a.misaligned_fraction()),
                    (
                        "posix.read_align_mismatch".into(),
                        (a.max_read_time_size > 0 && a.max_read_time_size % align != 0) as u8
                            as f64,
                    ),
                    (
                        "posix.write_align_mismatch".into(),
                        (a.max_write_time_size > 0 && a.max_write_time_size % align != 0) as u8
                            as f64,
                    ),
                    ("posix.reads".into(), a.reads as f64),
                    ("posix.writes".into(), a.writes as f64),
                ]
            },
        )),
        SummaryCategory::Order => Some((
            json!({
                "seq_reads": a.seq_reads,
                "seq_writes": a.seq_writes,
                "consec_reads": a.consec_reads,
                "consec_writes": a.consec_writes,
                "seq_read_fraction": (a.seq_read_fraction() * 1000.0).round() / 1000.0,
                "seq_write_fraction": (a.seq_write_fraction() * 1000.0).round() / 1000.0,
            }),
            vec![
                ("posix.seq_read_fraction".into(), a.seq_read_fraction()),
                ("posix.seq_write_fraction".into(), a.seq_write_fraction()),
                ("posix.reads".into(), a.reads as f64),
                ("posix.writes".into(), a.writes as f64),
            ],
        )),
        SummaryCategory::Mount => Some((
            json!({
                "mounts": trace
                    .header
                    .mounts
                    .iter()
                    .map(|m| json!({"point": m.point, "fs": m.fs}))
                    .collect::<Vec<_>>(),
                "files": a.files,
            }),
            vec![],
        )),
        _ => None,
    }
}

fn mpiio_fragment(
    agg: Option<&ModuleAgg>,
    derived: &RecordDerived,
    category: SummaryCategory,
) -> Extraction {
    let a = agg?;
    match category {
        SummaryCategory::IoSize => Some((
            json!({
                "read_histogram": hist_json(&a.read_hist, a.reads),
                "write_histogram": hist_json(&a.write_hist, a.writes),
                "bytes_read": a.bytes_read,
                "bytes_written": a.bytes_written,
            }),
            vec![],
        )),
        SummaryCategory::RequestCount => Some((
            json!({
                "independent_reads": a.indep_reads,
                "collective_reads": a.coll_reads,
                "independent_writes": a.indep_writes,
                "collective_writes": a.coll_writes,
                "collective_read_fraction": (a.collective_read_fraction() * 1000.0).round() / 1000.0,
                "collective_write_fraction":
                    (a.collective_write_fraction() * 1000.0).round() / 1000.0,
            }),
            vec![
                ("mpiio.indep_reads".into(), a.indep_reads as f64),
                ("mpiio.coll_reads".into(), a.coll_reads as f64),
                ("mpiio.indep_writes".into(), a.indep_writes as f64),
                ("mpiio.coll_writes".into(), a.coll_writes as f64),
            ],
        )),
        SummaryCategory::FileMetadata => Some((
            json!({
                "files": a.files,
                "independent_opens": a.indep_opens,
                "collective_opens": a.coll_opens,
                "syncs": a.syncs,
                "meta_time_seconds": (a.meta_time * 100.0).round() / 100.0,
            }),
            vec![],
        )),
        SummaryCategory::Rank => Some((
            json!({
                "shared_files": a.shared_files,
                "fastest_rank_bytes": a.fastest_rank_bytes,
                "slowest_rank_bytes": a.slowest_rank_bytes,
            }),
            vec![("posix.shared_data".into(), derived.shared_data as u8 as f64)],
        )),
        SummaryCategory::Alignment => Some((
            json!({
                "typical_read_size": a.max_read_time_size,
                "typical_write_size": a.max_write_time_size,
            }),
            vec![],
        )),
        _ => None,
    }
}

fn stdio_fragment(
    summary: &TraceSummary,
    agg: Option<&ModuleAgg>,
    category: SummaryCategory,
) -> Extraction {
    let a = agg?;
    match category {
        SummaryCategory::IoSize => Some((
            json!({
                "bytes_read": a.bytes_read,
                "bytes_written": a.bytes_written,
                "stdio_read_byte_share": (summary.stdio_read_fraction() * 1000.0).round() / 1000.0,
                "stdio_write_byte_share":
                    (summary.stdio_write_fraction() * 1000.0).round() / 1000.0,
            }),
            vec![
                ("stdio.bytes_read".into(), a.bytes_read as f64),
                ("stdio.bytes_written".into(), a.bytes_written as f64),
                ("stdio.read_fraction".into(), summary.stdio_read_fraction()),
                (
                    "stdio.write_fraction".into(),
                    summary.stdio_write_fraction(),
                ),
            ],
        )),
        SummaryCategory::RequestCount => Some((
            json!({
                "reads": a.reads,
                "writes": a.writes,
                "seeks": a.seeks,
            }),
            vec![],
        )),
        SummaryCategory::FileMetadata => Some((
            json!({
                "files": a.files,
                "opens": a.opens,
                "meta_time_seconds": (a.meta_time * 100.0).round() / 100.0,
            }),
            vec![],
        )),
        _ => None,
    }
}

fn lustre_fragment(
    trace: &DarshanTrace,
    summary: Option<&LustreSummary>,
    category: SummaryCategory,
) -> Extraction {
    let l = summary?;
    match category {
        SummaryCategory::Mount => Some((
            json!({
                "mounts": trace
                    .header
                    .mounts
                    .iter()
                    .map(|m| json!({"point": m.point, "fs": m.fs}))
                    .collect::<Vec<_>>(),
                "lustre_files": l.files,
                "mdt_count": l.total_mdts,
            }),
            vec![],
        )),
        SummaryCategory::StripeSetting => Some((
            json!({
                "mean_stripe_width": l.mean_stripe_width(),
                "stripe_sizes": l.stripe_sizes.first().copied().unwrap_or(0),
                "files": l.files,
            }),
            vec![
                ("lustre.stripe_width_mean".into(), l.mean_stripe_width()),
                (
                    "lustre.stripe_size".into(),
                    l.stripe_sizes.first().copied().unwrap_or(0) as f64,
                ),
                ("lustre.osts_used".into(), l.distinct_osts_used as f64),
                ("lustre.ost_count".into(), l.total_osts as f64),
            ],
        )),
        SummaryCategory::ServerUsage => Some((
            json!({
                "total_osts": l.total_osts,
                "distinct_osts_used": l.distinct_osts_used,
                "ost_utilisation": (l.ost_utilisation() * 1000.0).round() / 1000.0,
                "ost_usage_cv": (l.ost_usage_cv() * 1000.0).round() / 1000.0,
            }),
            vec![
                ("lustre.ost_count".into(), l.total_osts as f64),
                ("lustre.osts_used".into(), l.distinct_osts_used as f64),
                ("lustre.stripe_width_mean".into(), l.mean_stripe_width()),
            ],
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracebench::TraceBench;

    #[test]
    fn coverage_matches_table1() {
        assert_eq!(coverage(Module::Posix).len(), 7);
        assert_eq!(coverage(Module::Mpiio).len(), 5);
        assert_eq!(coverage(Module::Stdio).len(), 3);
        assert_eq!(coverage(Module::Lustre).len(), 3);
    }

    #[test]
    fn fragments_extracted_for_full_stack_trace() {
        let suite = TraceBench::generate();
        let amrex = suite.get("ra_amrex").unwrap();
        let frags = extract_fragments(&amrex.trace);
        // POSIX(7) + MPIIO(5) + STDIO(3) + LUSTRE(3) = 18 for a full trace.
        assert_eq!(frags.len(), 18);
        assert!(frags
            .iter()
            .any(|f| f.key() == "posix_i_o_size" || f.key() == "posix_io_size"));
    }

    #[test]
    fn posix_only_trace_has_no_mpiio_fragments() {
        let suite = TraceBench::generate();
        let t = suite.get("io500_easy_posix_small_1").unwrap();
        let frags = extract_fragments(&t.trace);
        assert!(frags.iter().all(|f| f.module != Module::Mpiio));
    }

    #[test]
    fn every_fragment_carries_context_evidence() {
        let suite = TraceBench::generate();
        let t = suite.get("sb01_small_io").unwrap();
        for f in extract_fragments(&t.trace) {
            let keys: Vec<&str> = f.evidence.iter().map(|(k, _)| k.as_str()).collect();
            assert!(keys.contains(&"nprocs"), "{} missing context", f.title);
            assert!(
                keys.contains(&"mpiio.present"),
                "{} missing context",
                f.title
            );
        }
    }

    #[test]
    fn small_io_visible_in_io_size_fragment() {
        let suite = TraceBench::generate();
        let t = suite.get("sb01_small_io").unwrap();
        let frags = extract_fragments(&t.trace);
        let io_size = frags
            .iter()
            .find(|f| f.module == Module::Posix && f.category == SummaryCategory::IoSize)
            .unwrap();
        let small = io_size
            .evidence
            .iter()
            .find(|(k, _)| k == "posix.small_write_fraction")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(small > 0.9);
        assert!(io_size.json_text().contains("write_histogram"));
    }

    #[test]
    fn stripe_fragment_reflects_hotspot() {
        let suite = TraceBench::generate();
        let t = suite.get("sb10_server_hotspot").unwrap();
        let frags = extract_fragments(&t.trace);
        let stripe = frags
            .iter()
            .find(|f| f.category == SummaryCategory::StripeSetting)
            .unwrap();
        let width = stripe
            .evidence
            .iter()
            .find(|(k, _)| k == "lustre.stripe_width_mean")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(width, 1.0);
    }

    #[test]
    fn evidence_lines_render() {
        let suite = TraceBench::generate();
        let t = suite.get("sb01_small_io").unwrap();
        let frags = extract_fragments(&t.trace);
        let lines = frags[0].evidence_lines();
        assert!(lines.contains("EVIDENCE "));
        assert!(lines.contains("nprocs=4"));
    }

    #[test]
    fn fragment_counts_modest_for_every_trace() {
        // Fragments must stay small and bounded: that is the whole point.
        let suite = TraceBench::generate();
        for e in &suite.entries {
            let frags = extract_fragments(&e.trace);
            assert!(
                frags.len() >= 3 && frags.len() <= 18,
                "{}: {}",
                e.spec.id,
                frags.len()
            );
            for f in &frags {
                assert!(
                    f.json_text().split_whitespace().count() < 400,
                    "{} fragment too large",
                    f.title
                );
            }
        }
    }
}
