//! IOAgent's module-based pre-processor (paper §IV-A).
//!
//! Two responsibilities, mirroring the paper:
//!
//! 1. **Module split**: the Darshan log is separated into per-module CSV
//!    files so that no module's counters can be lost to context truncation
//!    ([`split`]).
//! 2. **Summary extraction**: per-module extraction functions reduce each
//!    module to a set of *categorised JSON summary fragments* (Table I's
//!    module × category matrix), each small enough to sit comfortably in
//!    any model's context window ([`summary`]).
//!
//! Each fragment also carries canonical evidence pairs (the
//! `simllm::evidence::keys` vocabulary, reproduced here as plain strings)
//! plus the broader application context the paper attaches to every
//! fragment: runtime, process count, module presence, and volume.

pub mod split;
pub mod summary;

pub use split::{module_csv, split_modules};
pub use summary::{coverage, extract_fragments, SummaryCategory, SummaryFragment};
