//! Module split: one CSV per Darshan module.
//!
//! The paper's pre-processor "separates the Darshan log into a set of CSV
//! files, with each file containing the counters and values from a single
//! Darshan module", guaranteeing that every module is visible to downstream
//! steps regardless of trace length.

use darshan::counters::Module;
use darshan::{DarshanTrace, Record};
use std::collections::{BTreeMap, BTreeSet};

/// Render one module's records as CSV text. Columns are the union of
/// counter names across the module's records (sorted), prefixed by
/// `rank,record_id,file`. Missing counters render as empty cells.
pub fn module_csv(trace: &DarshanTrace, module: Module) -> Option<String> {
    let records: Vec<&Record> = trace.records_for(module).collect();
    if records.is_empty() {
        return None;
    }
    let mut int_cols: BTreeSet<&str> = BTreeSet::new();
    let mut float_cols: BTreeSet<&str> = BTreeSet::new();
    for r in &records {
        int_cols.extend(r.icounters.keys().map(String::as_str));
        float_cols.extend(r.fcounters.keys().map(String::as_str));
    }
    let int_cols: Vec<&str> = int_cols.into_iter().collect();
    let float_cols: Vec<&str> = float_cols.into_iter().collect();

    let mut out = String::new();
    out.push_str("rank,record_id,file");
    for c in &int_cols {
        out.push(',');
        out.push_str(c);
    }
    for c in &float_cols {
        out.push(',');
        out.push_str(c);
    }
    out.push('\n');

    let mut sorted: Vec<&&Record> = records.iter().collect();
    sorted.sort_by_key(|r| (r.record_id, r.rank));
    for r in sorted {
        out.push_str(&format!("{},{},{}", r.rank, r.record_id, r.file));
        for c in &int_cols {
            match r.icounters.get(*c) {
                Some(v) => out.push_str(&format!(",{v}")),
                None => out.push(','),
            }
        }
        for c in &float_cols {
            match r.fcounters.get(*c) {
                Some(v) => out.push_str(&format!(",{v:.6}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    Some(out)
}

/// Split a trace into per-module CSVs, keyed by module.
pub fn split_modules(trace: &DarshanTrace) -> BTreeMap<Module, String> {
    Module::ALL
        .into_iter()
        .filter_map(|m| module_csv(trace, m).map(|csv| (m, csv)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darshan::JobHeader;

    fn trace() -> DarshanTrace {
        let mut t = DarshanTrace::new(JobHeader::new("./x", 4, 10.0));
        let mut a = Record::new(Module::Posix, 0, 2, "/scratch/b");
        a.set_ic("POSIX_READS", 5);
        a.set_fc("POSIX_F_READ_TIME", 0.5);
        t.push(a);
        let mut b = Record::new(Module::Posix, 1, 1, "/scratch/a");
        b.set_ic("POSIX_WRITES", 7);
        t.push(b);
        let mut l = Record::new(Module::Lustre, -1, 1, "/scratch/a");
        l.set_ic("LUSTRE_STRIPE_WIDTH", 4);
        t.push(l);
        t
    }

    #[test]
    fn csv_has_union_of_columns() {
        let csv = module_csv(&trace(), Module::Posix).unwrap();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("POSIX_READS"));
        assert!(header.contains("POSIX_WRITES"));
        assert!(header.contains("POSIX_F_READ_TIME"));
    }

    #[test]
    fn rows_sorted_by_record_id() {
        let csv = module_csv(&trace(), Module::Posix).unwrap();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert!(rows[0].contains("/scratch/a"));
        assert!(rows[1].contains("/scratch/b"));
    }

    #[test]
    fn missing_counters_render_empty() {
        let csv = module_csv(&trace(), Module::Posix).unwrap();
        // Record b has no POSIX_READS: there must be an empty cell.
        let row_a = csv.lines().find(|l| l.contains("/scratch/a")).unwrap();
        assert!(row_a.contains(",,") || row_a.ends_with(','));
    }

    #[test]
    fn absent_module_yields_none() {
        assert!(module_csv(&trace(), Module::Stdio).is_none());
    }

    #[test]
    fn split_covers_present_modules_only() {
        let map = split_modules(&trace());
        assert_eq!(map.len(), 2);
        assert!(map.contains_key(&Module::Posix));
        assert!(map.contains_key(&Module::Lustre));
    }

    #[test]
    fn split_works_on_full_tracebench_traces() {
        let suite = tracebench::TraceBench::generate();
        for entry in suite.entries.iter().take(5) {
            let map = split_modules(&entry.trace);
            assert!(map.contains_key(&Module::Posix) || map.contains_key(&Module::Stdio));
            for csv in map.values() {
                assert!(csv.lines().count() >= 2);
            }
        }
    }
}
