//! Flat struct-of-arrays storage for embedding vectors.
//!
//! The seed-era index held one heap `Vec<f32>` per entry, so a 10k-chunk
//! scan chased 10k scattered allocations. [`VectorArena`] packs all
//! vectors into a single contiguous `n × dim` buffer — rows are adjacent
//! in memory, so the scoring loop streams through cache lines — and
//! caches each row's Euclidean norm once at insert, computed with the same
//! [`ioembed::norm`] the old per-query cosine called, so cached-norm
//! scores are bit-identical to recomputed ones.
//!
//! # Why two layouts
//!
//! A bit-faithful dot product is a serial chain of f32 adds, so one row's
//! scan is bound by add *latency*, not throughput — which is also why the
//! seed scan got the two norm recomputations almost for free (independent
//! chains overlap in the out-of-order window). The only way to go faster
//! without reordering any row's summation is to keep **many rows'** chains
//! in flight at once. [`VectorArena::dot_block`] therefore scores
//! [`VectorArena::DOT_BLOCK`] rows per pass over a second, lane-interleaved
//! copy of the data (`packed`: the block's 8 rows' d-th lanes stored
//! adjacently), so each dimension step is a single 8-wide vector
//! multiply-add — one SIMD lane per row, every lane still folding strictly
//! left-to-right from `-0.0`. Per-row results are bit-identical to
//! [`ioembed::dot`]; only cross-row scheduling changes. The row-major copy
//! stays authoritative for [`VectorArena::row`] (snapshots, the reference
//! path, tests); the ~2× vector memory is the price of scoring at memory
//! bandwidth instead of add latency.

/// Contiguous row-major vector storage with per-row cached norms and a
/// lane-interleaved scoring copy.
///
/// # Cluster-major mode
///
/// An IVF-clustered index physically reorders its arena so each cluster is
/// one contiguous row range ([`VectorArena::permuted`]). In that mode the
/// interleaved scoring copy is **dropped** (`packed_stripped`), halving
/// vector memory: probed ranges are scored by
/// [`VectorArena::dot_block_at`], which gathers eight row-major rows into
/// a thread-local scratch block and runs the *same* shared fold kernel,
/// so per-row dots stay bit-identical to [`VectorArena::dot_block`]. The
/// flat-scan paths (which need `packed`) are only reachable while no IVF
/// is attached, when the arena is in external order with `packed` intact.
#[derive(Debug, Clone, Default)]
pub struct VectorArena {
    dim: usize,
    /// Row-major `n × dim`.
    data: Vec<f32>,
    /// Lane-interleaved complete blocks: block `b`, lane `d`, row-in-block
    /// `j` lives at `((b * dim) + d) * DOT_BLOCK + j`. Empty when
    /// `packed_stripped`.
    packed: Vec<f32>,
    norms: Vec<f32>,
    /// True for cluster-major arenas that dropped the interleaved copy
    /// (the derived `Default` — `false` — means `packed` is maintained).
    packed_stripped: bool,
}

impl VectorArena {
    /// Empty arena for vectors of `dim` lanes.
    pub fn new(dim: usize) -> Self {
        VectorArena {
            dim,
            data: Vec::new(),
            packed: Vec::new(),
            norms: Vec::new(),
            packed_stripped: false,
        }
    }

    /// Empty arena with room for `rows` vectors.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        VectorArena {
            dim,
            data: Vec::with_capacity(dim * rows),
            packed: Vec::with_capacity(dim * rows),
            norms: Vec::with_capacity(rows),
            packed_stripped: false,
        }
    }

    /// Lanes per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// Whether the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Append a row, caching its norm. Returns the new row's index.
    ///
    /// Panics on a cluster-major (packed-stripped) arena: rows are only
    /// appended in external order, so restore that order first
    /// ([`VectorArena::permuted`] with the inverse permutation).
    pub fn push(&mut self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.dim, "arena row dimension mismatch");
        assert!(
            !self.packed_stripped,
            "cannot push into a cluster-major arena; restore external order first"
        );
        self.data.extend_from_slice(v);
        self.norms.push(ioembed::norm(v));
        let n = self.norms.len();
        if n.is_multiple_of(Self::DOT_BLOCK) {
            // A block just completed: interleave its 8 rows into `packed`.
            let base = n - Self::DOT_BLOCK;
            for d in 0..self.dim {
                for j in 0..Self::DOT_BLOCK {
                    self.packed.push(self.data[(base + j) * self.dim + d]);
                }
            }
        }
        n - 1
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Cached Euclidean norm of row `i` (bit-identical to
    /// `ioembed::norm(self.row(i))`).
    #[inline]
    pub fn norm(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// Rows scored per pass by [`VectorArena::dot_block`].
    pub const DOT_BLOCK: usize = 8;

    /// Queries scored per pass by [`VectorArena::dot_block_batch`] (and
    /// per arena stream by the query-blocked `search_batch`).
    pub const QUERY_BLOCK: usize = 8;

    /// Dot products of `qv` against the [`VectorArena::DOT_BLOCK`] rows
    /// starting at `start` (which must be block-aligned with all 8 rows
    /// present), written to `out[j]` for row `start + j`.
    ///
    /// Each dimension step reads the 8 rows' `d`-th lanes as one
    /// contiguous run of the interleaved layout and folds them into 8
    /// per-row accumulators — a vertical SIMD multiply-add after
    /// auto-vectorisation, with every lane still a strict left-to-right
    /// f32 fold from `-0.0` (the `Iterator::sum` identity). See the module
    /// docs for why this, and not a smarter single-row kernel, is what
    /// beats the seed scan.
    #[inline]
    pub fn dot_block(&self, qv: &[f32], start: usize, out: &mut [f32; Self::DOT_BLOCK]) {
        const B: usize = VectorArena::DOT_BLOCK;
        assert!(
            !self.packed_stripped,
            "dot_block needs the interleaved copy; cluster-major arenas are scanned via \
             dot_block_at"
        );
        assert_eq!(qv.len(), self.dim, "query dimension mismatch");
        assert_eq!(start % B, 0, "dot_block start must be block-aligned");
        assert!(
            start + B <= self.len() - self.len() % B,
            "dot_block needs a complete packed block: rows {start}..{} but only {} of {} rows \
             are in complete blocks (score trailing rows with the one-row kernel)",
            start + B,
            self.len() - self.len() % B,
            self.len(),
        );
        let dim = self.dim;
        let qv = &qv[..dim];
        let block = &self.packed[(start / B) * dim * B..(start / B + 1) * dim * B];
        fold_packed_block(block, qv, out);
    }

    /// Dot products of many queries against the
    /// [`VectorArena::DOT_BLOCK`] rows starting at `start` (same
    /// alignment contract as [`VectorArena::dot_block`]), written to
    /// `out[q * DOT_BLOCK + j]` for query `q` × row `start + j`.
    ///
    /// This is the query-blocked batch kernel: the 8-row packed block
    /// (`8 × dim` floats — a few KiB, L1-resident after the first pass)
    /// is streamed from memory **once** and every query of the block is
    /// scored against it while it is cache-hot, instead of each query
    /// re-streaming the whole arena from DRAM. Each query's arithmetic
    /// goes through the *same* 8-lane vertical kernel as a single-query
    /// scan ([`VectorArena::dot_block`]), so every lane of `out` is
    /// bit-identical to [`ioembed::dot`]`(query, row)` by construction.
    pub fn dot_block_batch(&self, queries: &[&[f32]], start: usize, out: &mut [f32]) {
        const B: usize = VectorArena::DOT_BLOCK;
        assert_eq!(
            out.len(),
            queries.len() * B,
            "out needs one lane per query × row"
        );
        let mut lanes = [0.0f32; B];
        for (qv, out) in queries.iter().zip(out.chunks_exact_mut(B)) {
            self.dot_block(qv, start, &mut lanes);
            out.copy_from_slice(&lanes);
        }
    }

    /// Whether the lane-interleaved scoring copy is present (it is dropped
    /// by cluster-major arenas — see [`VectorArena::permuted`]).
    pub fn has_packed(&self) -> bool {
        !self.packed_stripped
    }

    /// Bytes of `f32` vector state held by this arena: the row-major data,
    /// the interleaved scoring copy (zero when stripped), and the cached
    /// norms. The million-chunk bench gates this at ≤ 1.1× raw vectors for
    /// a clustered index.
    pub fn f32_bytes(&self) -> usize {
        (self.data.len() + self.packed.len() + self.norms.len()) * std::mem::size_of::<f32>()
    }

    /// A copy of this arena with rows physically reordered so new row `p`
    /// is old row `order[p]` (`order` must be a permutation of `0..len`).
    ///
    /// Cached norms move with their rows, bit-unchanged. With
    /// `keep_packed = false` the interleaved scoring copy is **not** built
    /// (cluster-major mode: ~half the vector memory; score through
    /// [`VectorArena::dot_block_at`]); with `true` it is rebuilt for the
    /// new order (used when restoring external order on
    /// `disable_ivf`/`add_document`).
    pub fn permuted(&self, order: &[u32], keep_packed: bool) -> VectorArena {
        let n = self.len();
        assert_eq!(order.len(), n, "permutation must cover every row");
        let mut out = VectorArena {
            dim: self.dim,
            data: Vec::with_capacity(n * self.dim),
            packed: Vec::new(),
            norms: Vec::with_capacity(n),
            packed_stripped: !keep_packed,
        };
        for &old in order {
            out.data.extend_from_slice(self.row(old as usize));
            out.norms.push(self.norms[old as usize]);
        }
        if keep_packed {
            const B: usize = VectorArena::DOT_BLOCK;
            let full = n - n % B;
            out.packed.reserve(full * self.dim);
            for base in (0..full).step_by(B) {
                for d in 0..self.dim {
                    for j in 0..B {
                        out.packed.push(out.data[(base + j) * self.dim + d]);
                    }
                }
            }
        }
        out
    }

    /// Dot products of `qv` against the [`VectorArena::DOT_BLOCK`] rows
    /// starting at **any** `start` (with all 8 rows present), written to
    /// `out[j]` for row `start + j` — the cluster-major scan kernel.
    ///
    /// The eight row-major rows are gathered into a thread-local
    /// lane-interleaved scratch block and folded by the *same*
    /// `fold_packed_block` as [`VectorArena::dot_block`], so every lane
    /// is bit-identical to [`ioembed::dot`]`(qv, row)` by construction; no
    /// interleaved copy of the arena is required.
    pub fn dot_block_at(&self, qv: &[f32], start: usize, out: &mut [f32; Self::DOT_BLOCK]) {
        const B: usize = VectorArena::DOT_BLOCK;
        assert_eq!(qv.len(), self.dim, "query dimension mismatch");
        assert!(
            start + B <= self.len(),
            "dot_block_at needs rows {start}..{} but the arena has {}",
            start + B,
            self.len()
        );
        let dim = self.dim;
        GATHER_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.clear();
            scratch.resize(dim * B, 0.0);
            for j in 0..B {
                let row = self.row(start + j);
                for d in 0..dim {
                    scratch[d * B + j] = row[d];
                }
            }
            fold_packed_block(&scratch, &qv[..dim], out);
        });
    }
}

thread_local! {
    /// Reused 8×dim gather block for [`VectorArena::dot_block_at`]: one
    /// allocation per thread, then every cluster-major scan on that thread
    /// transposes into it allocation-free.
    static GATHER_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Fold one lane-interleaved complete block (8 rows' `d`-th lanes stored
/// adjacently per dimension) against `qv`: `out[j]` becomes the dot of
/// `qv` with the block's `j`-th row, each lane a strict left-to-right f32
/// fold from `-0.0` (the `Iterator::sum` identity) — a vertical 8-wide
/// multiply-add after auto-vectorisation.
///
/// This is the **single** implementation of the vertical kernel, shared
/// by [`VectorArena::dot_block`] and the IVF per-cluster scan
/// (`ivf::IvfIndex::scan_cluster`), so the bit-identity contract between
/// flat and probed scores cannot drift between two hand-written copies.
pub(crate) fn fold_packed_block(
    block: &[f32],
    qv: &[f32],
    out: &mut [f32; VectorArena::DOT_BLOCK],
) {
    const B: usize = VectorArena::DOT_BLOCK;
    debug_assert_eq!(block.len(), qv.len() * B, "one 8-lane column per dim");
    let mut acc = [-0.0f32; B];
    for (col, &q) in block.chunks_exact(B).zip(qv) {
        for j in 0..B {
            acc[j] += q * col[j];
        }
    }
    *out = acc;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip_and_norms_match_recompute() {
        let mut arena = VectorArena::new(4);
        let rows = [
            [1.0f32, 0.0, 0.0, 0.0],
            [0.3, -0.4, 0.5, 0.1],
            [0.0, 0.0, 0.0, 0.0],
        ];
        for r in &rows {
            arena.push(r);
        }
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.dim(), 4);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(arena.row(i), r);
            assert_eq!(
                arena.norm(i).to_bits(),
                ioembed::norm(r).to_bits(),
                "cached norm must be bit-identical to recomputation"
            );
        }
    }

    #[test]
    fn push_returns_row_index() {
        let mut arena = VectorArena::with_capacity(2, 8);
        assert_eq!(arena.push(&[1.0, 2.0]), 0);
        assert_eq!(arena.push(&[3.0, 4.0]), 1);
        assert!(!arena.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_width_row_panics() {
        VectorArena::new(4).push(&[1.0, 2.0]);
    }

    /// Every lane of a block dot must be bit-identical to the one-row
    /// kernel (and hence to the naive sequential fold) — the interleaved
    /// layout and cross-row SIMD may change scheduling, never results.
    #[test]
    fn dot_block_is_bit_identical_to_single_row_dots() {
        let dim = 37; // odd, exercises unaligned lane indexing
        let mut arena = VectorArena::new(dim);
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) as f32 * if state & 1 == 0 { 1.0 } else { -1e-3 }
        };
        for _ in 0..VectorArena::DOT_BLOCK * 3 {
            let row: Vec<f32> = (0..dim).map(|_| next()).collect();
            arena.push(&row);
        }
        let qv: Vec<f32> = (0..dim).map(|_| next()).collect();
        let mut out = [0.0f32; VectorArena::DOT_BLOCK];
        for start in (0..arena.len()).step_by(VectorArena::DOT_BLOCK) {
            arena.dot_block(&qv, start, &mut out);
            for (j, lane) in out.iter().enumerate() {
                assert_eq!(
                    lane.to_bits(),
                    ioembed::dot(&qv, arena.row(start + j)).to_bits(),
                    "row {} diverged",
                    start + j
                );
            }
        }
    }

    /// Every `(query, row)` lane of the query-blocked kernel must be
    /// bit-identical to the one-row kernel — the batch layout may change
    /// scheduling, never results.
    #[test]
    fn dot_block_batch_is_bit_identical_to_single_dots() {
        let dim = 37;
        let mut arena = VectorArena::new(dim);
        let mut state = 0x1571_7131_eb84_52cdu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) as f32 * if state & 1 == 0 { 1.0 } else { -1e-3 }
        };
        for _ in 0..VectorArena::DOT_BLOCK * 2 {
            let row: Vec<f32> = (0..dim).map(|_| next()).collect();
            arena.push(&row);
        }
        for nq in [1usize, 3, VectorArena::QUERY_BLOCK] {
            let queries: Vec<Vec<f32>> = (0..nq)
                .map(|_| (0..dim).map(|_| next()).collect())
                .collect();
            let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
            let mut out = vec![0.0f32; nq * VectorArena::DOT_BLOCK];
            for start in (0..arena.len()).step_by(VectorArena::DOT_BLOCK) {
                arena.dot_block_batch(&refs, start, &mut out);
                for (q, qv) in queries.iter().enumerate() {
                    for j in 0..VectorArena::DOT_BLOCK {
                        assert_eq!(
                            out[q * VectorArena::DOT_BLOCK + j].to_bits(),
                            ioembed::dot(qv, arena.row(start + j)).to_bits(),
                            "query {q} row {} diverged (nq={nq})",
                            start + j
                        );
                    }
                }
            }
        }
    }

    /// The gather kernel must be bit-identical to the packed kernel (and
    /// hence to the one-row kernel) at every offset, aligned or not —
    /// it is the same fold over the same lanes, only gathered on the fly.
    #[test]
    fn dot_block_at_matches_dot_block_bit_for_bit() {
        let dim = 37;
        let mut arena = VectorArena::new(dim);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) as f32 * if state & 1 == 0 { 1.0 } else { -1e-3 }
        };
        for _ in 0..VectorArena::DOT_BLOCK * 3 + 5 {
            let row: Vec<f32> = (0..dim).map(|_| next()).collect();
            arena.push(&row);
        }
        let qv: Vec<f32> = (0..dim).map(|_| next()).collect();
        let mut out = [0.0f32; VectorArena::DOT_BLOCK];
        for start in 0..=arena.len() - VectorArena::DOT_BLOCK {
            arena.dot_block_at(&qv, start, &mut out);
            for (j, lane) in out.iter().enumerate() {
                assert_eq!(
                    lane.to_bits(),
                    ioembed::dot(&qv, arena.row(start + j)).to_bits(),
                    "row {} diverged at start {start}",
                    start + j
                );
            }
        }
    }

    /// Reordering moves rows and norms bit-unchanged; the inverse
    /// permutation restores the original arena (including a rebuilt
    /// interleaved copy usable by `dot_block`).
    #[test]
    fn permuted_round_trips_through_inverse() {
        let dim = 9;
        let mut arena = VectorArena::new(dim);
        for i in 0..21 {
            let row: Vec<f32> = (0..dim)
                .map(|d| ((i * 31 + d * 7) % 13) as f32 - 6.0)
                .collect();
            arena.push(&row);
        }
        let n = arena.len();
        // Deterministic scramble: reversed order.
        let order: Vec<u32> = (0..n as u32).rev().collect();
        let scrambled = arena.permuted(&order, false);
        assert!(!scrambled.has_packed());
        assert!(scrambled.f32_bytes() < arena.f32_bytes());
        let mut inv = vec![0u32; n];
        for (new_pos, &old) in order.iter().enumerate() {
            inv[old as usize] = new_pos as u32;
        }
        let restored = scrambled.permuted(&inv, true);
        assert!(restored.has_packed());
        for i in 0..n {
            assert_eq!(restored.row(i), arena.row(i), "row {i}");
            assert_eq!(restored.norm(i).to_bits(), arena.norm(i).to_bits());
        }
        let qv: Vec<f32> = (0..dim).map(|d| d as f32 * 0.25 - 1.0).collect();
        let mut a = [0.0f32; VectorArena::DOT_BLOCK];
        let mut b = [0.0f32; VectorArena::DOT_BLOCK];
        arena.dot_block(&qv, 0, &mut a);
        restored.dot_block(&qv, 0, &mut b);
        assert_eq!(a.map(f32::to_bits), b.map(f32::to_bits));
    }

    /// `packed` only holds complete blocks; trailing rows are scored by
    /// the one-row kernel, so a non-multiple-of-8 arena must still expose
    /// every row consistently.
    #[test]
    fn partial_trailing_block_keeps_row_access_consistent() {
        let dim = 8;
        let mut arena = VectorArena::new(dim);
        for i in 0..11 {
            let row: Vec<f32> = (0..dim).map(|d| (i * dim + d) as f32).collect();
            arena.push(&row);
        }
        assert_eq!(arena.len(), 11);
        for i in 0..11 {
            assert_eq!(arena.row(i)[0], (i * dim) as f32);
        }
    }
}
