//! SQ8 scan tier: per-dimension int8 scalar quantization with exact
//! f32 rerank.
//!
//! At a million chunks even a probed f32 scan is memory-bandwidth-bound:
//! every scored row streams `dim × 4` bytes. This tier stores a second,
//! 4×-smaller representation of every row — one `u8` code per dimension
//! under a per-dimension affine codebook (`x ≈ min[d] + scale[d] · code`)
//! — and scans *that* to select a small candidate pool, which is then
//! re-scored with the exact f32 kernel ([`ioembed::dot`] over the arena
//! row plus the cached norm). The returned top-k therefore stays
//! byte-identical to what the f32 scan would keep **whenever the true
//! top-k survives the pool cut**, and with `rerank_pool >= rows scanned`
//! it is byte-identical unconditionally (pinned by
//! `tests/sq8_equivalence.rs`).
//!
//! # Scoring
//!
//! For a query `q`, `dot(q, x_i) ≈ base + Σ_d t[d] · code_i[d]` with
//! `t[d] = q[d] · scale[d]` and `base = Σ_d q[d] · min[d]` — both
//! precomputed once per query ([`Sq8Tier::prepare`]). Codes are stored
//! lane-interleaved in complete 8-row blocks over **internal**
//! (cluster-major) positions, mirroring the arena's packed layout, so the
//! scan kernel folds eight rows per dimension step.
//!
//! # Determinism, not bit-equality
//!
//! Approximate scores only pick the pool — they never appear in results —
//! so this kernel is free to use **four accumulator chains per lane**
//! (dimensions `d ≡ 0..3 (mod 4)`, combined in a fixed order). That
//! breaks the f32-add latency chain that the bit-faithful kernels must
//! respect and is what makes the SQ8 scan genuinely faster, while staying
//! fully deterministic: the same query and codes produce the same
//! approximate bits on every machine, regardless of cluster boundaries
//! (blocks are global, so a row's approximate score does not depend on
//! which cluster range a scan entered through).

use crate::arena::VectorArena;
use crate::topk::TopK;
use std::ops::Range;

/// Rows per interleaved code block (mirrors [`VectorArena::DOT_BLOCK`]).
const B: usize = VectorArena::DOT_BLOCK;

/// Independent f32 accumulator chains per lane in the SQ8 fold.
const CHAINS: usize = 4;

/// The quantized scan tier attached to a cluster-major index: per-dim
/// affine codebook plus lane-interleaved `u8` codes for every internal
/// row, and the rerank pool size searches use.
#[derive(Debug, Clone)]
pub struct Sq8Tier {
    dim: usize,
    rows: usize,
    /// Per-dimension affine offset: `x ≈ min[d] + scale[d] · code`.
    min: Vec<f32>,
    /// Per-dimension affine step, `(max − min) / 255` (0 for constant
    /// dimensions, whose codes are all 0).
    scale: Vec<f32>,
    /// `⌈rows/8⌉` complete blocks: block `b`, dim `d`, row-in-block `j`
    /// at `((b · dim) + d) · 8 + j`; pad rows beyond `rows` hold code 0.
    codes: Vec<u8>,
    /// Candidate-pool size for the exact rerank (searches clamp it to at
    /// least `k`).
    rerank_pool: usize,
}

/// A query prepared for the SQ8 scan: `t[d] = q[d] · scale[d]` and
/// `base = Σ_d q[d] · min[d]`, computed once per query.
#[derive(Debug, Clone)]
pub struct Sq8Query {
    t: Vec<f32>,
    base: f32,
}

impl Sq8Tier {
    /// Quantize every row of `arena` (in the arena's own row order —
    /// internal positions for a cluster-major arena) under a per-dim
    /// min/max codebook derived from the data.
    pub fn train(arena: &VectorArena, rerank_pool: usize) -> Self {
        let dim = arena.dim();
        let rows = arena.len();
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for i in 0..rows {
            for (d, &x) in arena.row(i).iter().enumerate() {
                if x < min[d] {
                    min[d] = x;
                }
                if x > max[d] {
                    max[d] = x;
                }
            }
        }
        if rows == 0 {
            min.fill(0.0);
            max.fill(0.0);
        }
        let scale: Vec<f32> = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| if hi > lo { (hi - lo) / 255.0 } else { 0.0 })
            .collect();
        Self::encode(arena, min, scale, rerank_pool)
    }

    /// Re-encode `arena` under an existing codebook (snapshot load:
    /// codes are derived data — a pure function of vectors + codebook —
    /// so only the codebook is persisted).
    pub fn from_codebook(
        arena: &VectorArena,
        min: Vec<f32>,
        scale: Vec<f32>,
        rerank_pool: usize,
    ) -> Result<Self, String> {
        let dim = arena.dim();
        if min.len() != dim || scale.len() != dim {
            return Err(format!(
                "codebook of {}+{} lanes for dim {dim}",
                min.len(),
                scale.len()
            ));
        }
        if let Some(bad) = min
            .iter()
            .chain(&scale)
            .find(|v| !v.is_finite())
            .or_else(|| scale.iter().find(|&&s| s < 0.0))
        {
            return Err(format!("non-finite or negative codebook value {bad}"));
        }
        Ok(Self::encode(arena, min, scale, rerank_pool))
    }

    fn encode(arena: &VectorArena, min: Vec<f32>, scale: Vec<f32>, rerank_pool: usize) -> Self {
        let dim = arena.dim();
        let rows = arena.len();
        let blocks = rows.div_ceil(B);
        let mut codes = vec![0u8; blocks * dim * B];
        for i in 0..rows {
            let (b, j) = (i / B, i % B);
            let row = arena.row(i);
            for d in 0..dim {
                let code = if scale[d] > 0.0 {
                    ((row[d] - min[d]) / scale[d]).round().clamp(0.0, 255.0) as u8
                } else {
                    0
                };
                codes[((b * dim) + d) * B + j] = code;
            }
        }
        Sq8Tier {
            dim,
            rows,
            min,
            scale,
            codes,
            rerank_pool,
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encoded row count (pad rows excluded).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Candidate-pool size the exact rerank draws from.
    pub fn rerank_pool(&self) -> usize {
        self.rerank_pool
    }

    /// Change the rerank pool size (a runtime knob: the codebook and codes
    /// are untouched).
    pub fn set_rerank_pool(&mut self, pool: usize) {
        self.rerank_pool = pool;
    }

    /// Per-dimension affine offsets of the codebook.
    pub fn min(&self) -> &[f32] {
        &self.min
    }

    /// Per-dimension affine steps of the codebook.
    pub fn scale(&self) -> &[f32] {
        &self.scale
    }

    /// Bytes held by the `u8` code store (the compressed tier; the bench
    /// accounts it separately from f32 vector memory).
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Precompute the per-query scan terms (`t`, `base`).
    pub fn prepare(&self, qv: &[f32]) -> Sq8Query {
        assert_eq!(qv.len(), self.dim, "query dimension mismatch");
        let t: Vec<f32> = qv.iter().zip(&self.scale).map(|(&q, &s)| q * s).collect();
        let mut base = -0.0f32;
        for (q, &m) in qv.iter().zip(&self.min) {
            base += q * m;
        }
        Sq8Query { t, base }
    }

    /// Offer every internal position of `range` to `pool` under its
    /// approximate cosine (`(base + Σ t·code) / (qnorm · norm)`, the same
    /// zero-guard as the exact kernel via [`ioembed::cosine_with_norms`]).
    ///
    /// Whole 8-row blocks overlapping the range are folded and only
    /// in-range rows offered, so a row's approximate bits never depend on
    /// the range a scan entered through; `norms` must be the cluster-major
    /// arena (only its cached norms are read).
    pub fn scan_range(
        &self,
        prep: &Sq8Query,
        qnorm: f32,
        norms: &VectorArena,
        range: Range<usize>,
        pool: &mut TopK,
    ) {
        if range.is_empty() {
            return;
        }
        debug_assert!(range.end <= self.rows, "range beyond encoded rows");
        let stride = self.dim * B;
        let mut out = [0.0f32; B];
        for b in range.start / B..range.end.div_ceil(B) {
            fold_sq8_block(&self.codes[b * stride..(b + 1) * stride], &prep.t, &mut out);
            let first = b * B;
            for (j, &partial) in out.iter().enumerate() {
                let p = first + j;
                if p >= range.start && p < range.end {
                    let approx = prep.base + partial;
                    pool.push(ioembed::cosine_with_norms(approx, qnorm, norms.norm(p)), p);
                }
            }
        }
    }
}

/// Fold one interleaved code block against the prepared query terms:
/// `out[j]` becomes `Σ_d t[d] · block[d·8 + j]`, accumulated in
/// [`CHAINS`] independent chains per lane (dimension `d` feeds chain
/// `d mod 4`), combined in a fixed order — deterministic everywhere, and
/// free of the single-chain f32-add latency bound.
fn fold_sq8_block(block: &[u8], t: &[f32], out: &mut [f32; B]) {
    debug_assert_eq!(block.len(), t.len() * B, "one 8-lane column per dim");
    let mut acc = [[-0.0f32; B]; CHAINS];
    for (d, col) in block.chunks_exact(B).enumerate() {
        let chain = &mut acc[d % CHAINS];
        let td = t[d];
        for j in 0..B {
            chain[j] += td * col[j] as f32;
        }
    }
    for j in 0..B {
        out[j] = ((acc[0][j] + acc[1][j]) + acc[2][j]) + acc[3][j];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_of(rows: &[Vec<f32>], dim: usize) -> VectorArena {
        let mut arena = VectorArena::new(dim);
        for r in rows {
            arena.push(r);
        }
        arena
    }

    fn synthetic_rows(n: usize, dim: usize) -> Vec<Vec<f32>> {
        let mut state = 0x518a_feed_c0de_1234_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        };
        (0..n)
            .map(|_| {
                let mut v: Vec<f32> = (0..dim).map(|_| next()).collect();
                ioembed::l2_normalize(&mut v);
                v
            })
            .collect()
    }

    /// Quantization error is bounded by half a step per dimension.
    #[test]
    fn codes_dequantize_within_half_a_step() {
        let dim = 11;
        let rows = synthetic_rows(37, dim);
        let arena = arena_of(&rows, dim);
        let sq8 = Sq8Tier::train(&arena, 16);
        for (i, row) in rows.iter().enumerate() {
            let (b, j) = (i / B, i % B);
            for (d, &x) in row.iter().enumerate() {
                let code = sq8.codes[((b * dim) + d) * B + j] as f32;
                let dequant = sq8.min[d] + sq8.scale[d] * code;
                let tol = if sq8.scale[d] > 0.0 {
                    sq8.scale[d] * 0.5 + sq8.scale[d] * 1e-3
                } else {
                    1e-6
                };
                assert!(
                    (dequant - x).abs() <= tol,
                    "row {i} dim {d}: {x} -> code {code} -> {dequant}"
                );
            }
        }
    }

    /// A row's approximate score must not depend on the range a scan
    /// entered through: scanning [0, n) in one call and as arbitrary
    /// splits offers identical bits.
    #[test]
    fn approx_scores_are_range_invariant() {
        let dim = 13;
        let rows = synthetic_rows(29, dim); // ragged: 29 % 8 != 0
        let arena = arena_of(&rows, dim);
        let sq8 = Sq8Tier::train(&arena, 64);
        let qv = rows[3].clone();
        let qnorm = ioembed::norm(&qv);
        let prep = sq8.prepare(&qv);
        let full = {
            let mut pool = TopK::new(100);
            sq8.scan_range(&prep, qnorm, &arena, 0..29, &mut pool);
            pool.into_sorted_hits()
        };
        let split = {
            let mut pool = TopK::new(100);
            for r in [0..5, 5..8, 8..21, 21..21, 21..29] {
                sq8.scan_range(&prep, qnorm, &arena, r, &mut pool);
            }
            pool.into_sorted_hits()
        };
        let a: Vec<(u32, usize)> = full
            .iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        let b: Vec<(u32, usize)> = split
            .iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 29, "every row offered exactly once");
    }

    /// Codes are a pure function of vectors + codebook: re-encoding under
    /// the trained codebook reproduces the byte store exactly.
    #[test]
    fn from_codebook_reproduces_codes() {
        let dim = 9;
        let rows = synthetic_rows(23, dim);
        let arena = arena_of(&rows, dim);
        let trained = Sq8Tier::train(&arena, 8);
        let reloaded =
            Sq8Tier::from_codebook(&arena, trained.min().to_vec(), trained.scale().to_vec(), 8)
                .unwrap();
        assert_eq!(trained.codes, reloaded.codes);
    }

    #[test]
    fn from_codebook_rejects_malformed_input() {
        let arena = arena_of(&synthetic_rows(4, 6), 6);
        assert!(Sq8Tier::from_codebook(&arena, vec![0.0; 5], vec![0.0; 6], 8).is_err());
        assert!(Sq8Tier::from_codebook(&arena, vec![0.0; 6], vec![f32::NAN; 6], 8).is_err());
        assert!(Sq8Tier::from_codebook(&arena, vec![0.0; 6], vec![-1.0; 6], 8).is_err());
    }

    #[test]
    fn empty_arena_trains_an_empty_tier() {
        let arena = VectorArena::new(6);
        let sq8 = Sq8Tier::train(&arena, 8);
        assert_eq!(sq8.rows(), 0);
        assert_eq!(sq8.code_bytes(), 0);
        let prep = sq8.prepare(&[0.0; 6]);
        let mut pool = TopK::new(4);
        sq8.scan_range(&prep, 0.0, &arena, 0..0, &mut pool);
        assert!(pool.into_sorted_hits().is_empty());
    }
}
