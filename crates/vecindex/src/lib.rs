#![warn(missing_docs)]
//! Chunking vector index with top-k cosine retrieval.
//!
//! Reproduces the paper's LlamaIndex configuration: documents are split into
//! chunks of 512 tokens with an overlap of 20, each chunk is embedded, and
//! queries retrieve the top-k chunks by cosine similarity (the paper uses
//! k = 15 before self-reflection filtering). Batch searches run in parallel
//! with rayon, mirroring IOAgent's parallel per-fragment retrieval.
//!
//! # Engine layout
//!
//! Vectors live in a flat struct-of-arrays [`VectorArena`] (`n × dim`
//! contiguous `f32`s plus a norm cached per row at insert) instead of one
//! heap allocation per entry; [`IndexEntry`] carries only metadata, with
//! `doc_id`/`citation` shared across a document's chunks via `Arc<str>`.
//! A search embeds the query once into a reused thread-local buffer,
//! computes its norm once, streams the arena through a norm-cached
//! dot-product kernel ([`ioembed::dot`], unrolled but summation-order
//! preserving), and keeps the best k in a bounded heap ([`topk::TopK`]) —
//! O(n·d + n log k) with zero per-entry allocation. Scores and orderings
//! are bit-identical to the original scan-score-sort path, which survives
//! as the executable spec in [`mod@reference`].
//!
//! # IVF probing and the query-blocked batch
//!
//! Two optional layers sit on top of the flat scan:
//!
//! - **[`ivf`]**: a deterministic k-means coarse quantizer over the arena.
//!   With an [`IvfIndex`] attached ([`VectorIndex::enable_ivf`]), a search
//!   scores only the rows of the `nprobe` most query-similar clusters —
//!   sub-linear scan cost at a measured recall trade-off. Probed rows go
//!   through the *same* kernels, and the top-k heap keeps the same set in
//!   any offer order, so `nprobe = clusters` is byte-identical to the flat
//!   scan (and to [`reference::search`]).
//! - **query-blocked [`VectorIndex::search_batch`]**: batch queries are
//!   grouped into blocks of [`VectorArena::QUERY_BLOCK`] and the arena (or
//!   each probed cluster list) is streamed **once per block** instead of
//!   once per query ([`VectorArena::dot_block_batch`] /
//!   [`ioembed::dot_multi`]), turning the DRAM-bandwidth-bound batch into
//!   an arithmetic-bound one. Per-query results stay byte-identical to
//!   [`VectorIndex::search`].
//!
//! # Cluster-major layout and the SQ8 tier
//!
//! With IVF attached the arena is **physically reordered cluster-major**
//! ([`VectorArena::permuted`] by [`IvfIndex::perm`]): each cluster is one
//! contiguous row range, scanned in place, and the flat layout's
//! interleaved scoring copy is dropped — one vector copy total instead of
//! the pre-v3 arena + per-cluster duplicates (≈2×). All public ids stay
//! **external** (entry order): [`VectorIndex::vector`] translates through
//! the permutation, scans push external ids, and the invariant is simply
//! *arena is cluster-major ⇔ IVF is attached* (detaching restores
//! external order and the packed copy).
//!
//! On top of a clustered index, [`VectorIndex::enable_sq8`] adds the
//! [`sq8`] scan tier: probed ranges are scanned over 4×-smaller int8
//! codes to pick a candidate pool of `rerank_pool` rows, which are then
//! re-scored with the exact f32 kernel. Returned scores are always exact
//! flat-scan bits; with `rerank_pool >= rows probed` the whole top-k is
//! byte-identical to the pure-f32 probe (and with `nprobe = clusters`, to
//! [`reference::search`]) — pinned by `tests/sq8_equivalence.rs`.

pub mod arena;
pub mod chunk;
pub mod ivf;
pub mod reference;
pub mod sq8;
pub mod topk;

pub use arena::VectorArena;
pub use chunk::{chunk_text, Chunk};
pub use ivf::IvfIndex;
pub use sq8::Sq8Tier;
pub use topk::{top_k, TopK};

use ioembed::Embedder;
use rayon::prelude::*;
use serde::Serialize;
use std::cell::RefCell;
use std::sync::Arc;

/// Default chunk size in tokens (LlamaIndex default used by the paper).
pub const DEFAULT_CHUNK_SIZE: usize = 512;
/// Default chunk overlap in tokens.
pub const DEFAULT_OVERLAP: usize = 20;

/// Rows below which a search scans inline rather than splitting across the
/// thread pool (spawn overhead would dwarf the scan).
const MIN_ROWS_PER_SHARD: usize = 1024;

/// One indexed chunk (metadata only; its vector lives in the arena at the
/// same row index).
#[derive(Debug, Clone, Serialize)]
pub struct IndexEntry {
    /// Identifier of the source document, shared across the document's
    /// chunks (`Arc<str>`, not a per-chunk `String` clone).
    pub doc_id: Arc<str>,
    /// Human-readable citation for the source (title, venue, year), shared
    /// like `doc_id`.
    pub citation: Arc<str>,
    /// Chunk ordinal within the document.
    pub chunk_no: usize,
    /// The chunk text.
    pub text: String,
}

/// A retrieval hit.
#[derive(Debug, Clone, Copy)]
pub struct SearchHit {
    /// Cosine similarity to the query.
    pub score: f32,
    /// Index of the entry within the index.
    pub entry_idx: usize,
}

thread_local! {
    /// Reused query-embedding buffer: one allocation per thread, then
    /// every `search` on that thread embeds into it allocation-free.
    static QUERY_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Ends a scan span and records its latency histogram on every exit path
/// of the scoring functions (they return from several branches).
struct ScanTimer {
    start: std::time::Instant,
    _span: ioobserve::Span,
}

impl Drop for ScanTimer {
    fn drop(&mut self) {
        ioobserve::metrics()
            .histogram("vecindex.scan_ns")
            .record_duration(self.start.elapsed());
    }
}

/// Default SQ8 rerank-pool size (candidate rows re-scored exactly per
/// query) used when a pool of `0` is requested.
pub const DEFAULT_SQ8_RERANK_POOL: usize = 128;

/// An in-memory vector index over chunked documents.
///
/// # Layout invariant
///
/// While [`VectorIndex::ivf`] is `Some`, the arena is **cluster-major**
/// (physically reordered by the quantizer's permutation, interleaved
/// scoring copy dropped); otherwise it is in external (entry) order with
/// the packed copy intact. Every public surface speaks external ids —
/// [`VectorIndex::vector`] translates internally.
#[derive(Debug, Clone)]
pub struct VectorIndex {
    embedder: Embedder,
    chunk_size: usize,
    overlap: usize,
    entries: Vec<IndexEntry>,
    arena: VectorArena,
    /// Optional coarse quantizer; `None` means every search is a flat
    /// scan. Shared via `Arc` so cloning an index never re-clusters.
    ivf: Option<Arc<IvfIndex>>,
    /// Optional SQ8 scan tier (requires `ivf`; codes are in internal
    /// order). Shared via `Arc` so cloning never re-encodes.
    sq8: Option<Arc<Sq8Tier>>,
}

impl Default for VectorIndex {
    fn default() -> Self {
        VectorIndex::new(Embedder::default(), DEFAULT_CHUNK_SIZE, DEFAULT_OVERLAP)
    }
}

impl VectorIndex {
    /// Create an empty index with explicit hyper-parameters.
    pub fn new(embedder: Embedder, chunk_size: usize, overlap: usize) -> Self {
        assert!(chunk_size > overlap, "chunk size must exceed overlap");
        let dim = embedder.dim;
        VectorIndex {
            embedder,
            chunk_size,
            overlap,
            entries: Vec::new(),
            arena: VectorArena::new(dim),
            ivf: None,
            sq8: None,
        }
    }

    /// Reassemble an index from previously serialized parts (e.g. an
    /// `iostore` snapshot). Entries and arena are taken as-is — vectors
    /// are NOT re-embedded — so the caller is responsible for checking
    /// that the embedder configuration matches the one the parts were
    /// built with (the snapshot header carries exactly that fingerprint).
    pub fn from_parts(
        embedder: Embedder,
        chunk_size: usize,
        overlap: usize,
        entries: Vec<IndexEntry>,
        arena: VectorArena,
    ) -> Self {
        assert!(chunk_size > overlap, "chunk size must exceed overlap");
        assert_eq!(arena.dim(), embedder.dim, "arena/embedder dim mismatch");
        assert_eq!(
            arena.len(),
            entries.len(),
            "every entry needs exactly one arena row"
        );
        VectorIndex {
            embedder,
            chunk_size,
            overlap,
            entries,
            arena,
            ivf: None,
            sq8: None,
        }
    }

    /// Cluster the arena and serve subsequent searches through IVF
    /// probing at the given default `nprobe` (both clamped to the row
    /// count). `nprobe >= clusters` keeps results byte-identical to the
    /// flat scan; smaller values trade recall for scan cost.
    ///
    /// The arena is physically reordered **cluster-major** (each cluster
    /// one contiguous range; the flat layout's interleaved copy is
    /// dropped, so vector memory does not grow). Any previous clustering
    /// or SQ8 tier is detached first.
    pub fn enable_ivf(&mut self, clusters: usize, nprobe: usize) {
        self.detach_clustering();
        let ivf = IvfIndex::build(&self.arena, clusters, nprobe);
        self.arena = self.arena.permuted(ivf.perm(), false);
        self.ivf = Some(Arc::new(ivf));
    }

    /// Drop the IVF layer (and any SQ8 tier riding on it); the arena is
    /// restored to external order with the packed copy rebuilt, and
    /// searches go back to the exact flat scan.
    pub fn disable_ivf(&mut self) {
        self.detach_clustering();
    }

    /// Attach an already-built quantizer (e.g. loaded from an `iostore`
    /// snapshot) instead of re-clustering. The arena — which must be in
    /// external order with one row per assignment — is reordered
    /// cluster-major, exactly as [`VectorIndex::enable_ivf`] does.
    pub fn attach_ivf(&mut self, ivf: Arc<IvfIndex>) {
        self.detach_clustering();
        assert_eq!(ivf.dim(), self.arena.dim(), "IVF/arena dim mismatch");
        assert_eq!(
            ivf.assignments().len(),
            self.arena.len(),
            "IVF assignment table must cover every arena row"
        );
        self.arena = self.arena.permuted(ivf.perm(), false);
        self.ivf = Some(ivf);
    }

    /// Detach quantizer + SQ8 tier and restore the arena to external
    /// order (rebuilding the interleaved copy the flat paths need). The
    /// single place the layout invariant flips back.
    fn detach_clustering(&mut self) {
        self.sq8 = None;
        if let Some(ivf) = self.ivf.take() {
            let n = self.arena.len();
            let mut order = vec![0u32; n];
            for (ext, slot) in order.iter_mut().enumerate() {
                *slot = ivf.internal_of(ext) as u32;
            }
            self.arena = self.arena.permuted(&order, true);
        }
    }

    /// The attached coarse quantizer, if any.
    pub fn ivf(&self) -> Option<&IvfIndex> {
        self.ivf.as_deref()
    }

    /// Change the default probe width of the attached quantizer (no-op
    /// without one). Cheap when this index uniquely owns the quantizer;
    /// when it is shared with clones of the index, `Arc::make_mut`
    /// **deep-clones the whole quantizer** (centroids, assignments, and
    /// the cluster-major permutation) first — prefer configuring `nprobe`
    /// at build/load time over flipping it per request on shared indexes.
    pub fn set_nprobe(&mut self, nprobe: usize) {
        if let Some(ivf) = &mut self.ivf {
            Arc::make_mut(ivf).set_nprobe(nprobe);
        }
    }

    /// Quantize the clustered arena into an [`sq8`] scan tier with the
    /// given rerank-pool size (`0` means [`DEFAULT_SQ8_RERANK_POOL`]).
    ///
    /// # Panics
    ///
    /// Panics if no IVF quantizer is attached — the tier scans contiguous
    /// cluster ranges, which only exist cluster-major.
    pub fn enable_sq8(&mut self, rerank_pool: usize) {
        assert!(
            self.ivf.is_some(),
            "enable_sq8 requires an attached IVF quantizer (enable_ivf first)"
        );
        let pool = if rerank_pool == 0 {
            DEFAULT_SQ8_RERANK_POOL
        } else {
            rerank_pool
        };
        self.sq8 = Some(Arc::new(Sq8Tier::train(&self.arena, pool)));
    }

    /// Attach an SQ8 tier from a persisted codebook (e.g. an `iostore` v3
    /// snapshot): codes are re-derived from the cluster-major arena —
    /// they are a pure function of vectors + codebook, so only the
    /// codebook is stored. Fails without an attached quantizer or with a
    /// malformed codebook.
    pub fn attach_sq8(
        &mut self,
        min: Vec<f32>,
        scale: Vec<f32>,
        rerank_pool: usize,
    ) -> Result<(), String> {
        if self.ivf.is_none() {
            return Err("SQ8 tier requires an attached IVF quantizer".to_string());
        }
        let pool = if rerank_pool == 0 {
            DEFAULT_SQ8_RERANK_POOL
        } else {
            rerank_pool
        };
        let tier = Sq8Tier::from_codebook(&self.arena, min, scale, pool)?;
        self.sq8 = Some(Arc::new(tier));
        Ok(())
    }

    /// Drop the SQ8 tier; probed searches go back to the pure-f32 scan
    /// (the IVF layer stays attached).
    pub fn disable_sq8(&mut self) {
        self.sq8 = None;
    }

    /// The attached SQ8 scan tier, if any.
    pub fn sq8(&self) -> Option<&Sq8Tier> {
        self.sq8.as_deref()
    }

    /// Change the SQ8 rerank-pool size (no-op without a tier). A runtime
    /// knob: codes and codebook are untouched, though a tier shared with
    /// clones is deep-cloned first (`Arc::make_mut`).
    pub fn set_sq8_rerank_pool(&mut self, rerank_pool: usize) {
        if let Some(sq8) = &mut self.sq8 {
            let pool = if rerank_pool == 0 {
                DEFAULT_SQ8_RERANK_POOL
            } else {
                rerank_pool
            };
            Arc::make_mut(sq8).set_rerank_pool(pool);
        }
    }

    /// The embedder this index embeds queries (and documents) with.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }

    /// Chunk size in tokens.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Chunk overlap in tokens.
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// All indexed entries, in insertion order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// The vector arena backing this index. Flat (no IVF): row `i`
    /// belongs to entry `i`. Clustered: the arena is **cluster-major** —
    /// row `p` belongs to entry `ivf().perm()[p]`; use
    /// [`VectorIndex::vector`] for entry-order access.
    pub fn arena(&self) -> &VectorArena {
        &self.arena
    }

    /// Entry `idx`'s embedding vector, regardless of the arena's physical
    /// order (translates through the cluster-major permutation when IVF
    /// is attached).
    pub fn vector(&self, idx: usize) -> &[f32] {
        match &self.ivf {
            Some(ivf) => self.arena.row(ivf.internal_of(idx)),
            None => self.arena.row(idx),
        }
    }

    /// Chunk, embed, and add a document.
    ///
    /// # Invalidation contract
    ///
    /// Adding rows invalidates **all** derived scan structures: the IVF
    /// clustering (the new rows are unassigned) *and* the SQ8 codebook
    /// (trained on the pre-add value distribution, coded in the pre-add
    /// cluster-major order). Both are detached, the arena returns to
    /// external order, and subsequent searches take the exact flat scan —
    /// so a post-add search still matches [`reference::search`]
    /// byte-for-byte (pinned by `tests/sq8_equivalence.rs`). Re-enable
    /// IVF/SQ8 after bulk loading.
    pub fn add_document(&mut self, doc_id: &str, citation: &str, text: &str) {
        self.detach_clustering();
        let doc_id: Arc<str> = Arc::from(doc_id);
        let citation: Arc<str> = Arc::from(citation);
        let first_new = self.entries.len();
        let mut vbuf = Vec::with_capacity(self.embedder.dim);
        for (i, chunk) in chunk_text(text, self.chunk_size, self.overlap)
            .into_iter()
            .enumerate()
        {
            self.embedder.embed_into(&chunk.text, &mut vbuf);
            self.arena.push(&vbuf);
            self.entries.push(IndexEntry {
                doc_id: Arc::clone(&doc_id),
                citation: Arc::clone(&citation),
                chunk_no: i,
                text: chunk.text,
            });
        }
        // Memory shape: every chunk this call appended aliases one doc_id /
        // citation allocation (the satellite this refactor pins).
        debug_assert!(self.entries[first_new..]
            .iter()
            .all(|e| Arc::ptr_eq(&e.doc_id, &doc_id) && Arc::ptr_eq(&e.citation, &citation)));
    }

    /// Number of chunks in the index.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Access an entry by index.
    pub fn entry(&self, idx: usize) -> &IndexEntry {
        &self.entries[idx]
    }

    /// Top-k entries by cosine similarity to `query`.
    ///
    /// The query is embedded once into a reused thread-local buffer and
    /// its norm computed once; every arena row is then scored with the
    /// cached-norm dot kernel and offered to a bounded k-heap. Results are
    /// bit-identical to [`reference::search`] (the old scan-score-sort
    /// path): same float operations per score, same
    /// `total_cmp`-descending / entry-index-ascending order, pinned by
    /// `tests/retrieval_equivalence.rs` and the top-k property test.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        // Take the buffer out of the thread-local rather than holding its
        // RefCell borrow across the nested parallel scan: with a
        // work-stealing scheduler (real rayon; this repo's shim never
        // steals foreign tasks, but don't depend on that), a stolen
        // sibling `search` on this thread would re-borrow and panic.
        let mut qv = QUERY_BUF.with(|buf| std::mem::take(&mut *buf.borrow_mut()));
        {
            let embed_start = std::time::Instant::now();
            let _span = ioobserve::tracer().span_fine("vecindex.embed");
            self.embedder.embed_into(query, &mut qv);
            ioobserve::metrics()
                .histogram("vecindex.embed_ns")
                .record_duration(embed_start.elapsed());
        }
        let hits = self.search_embedded(&qv, k);
        QUERY_BUF.with(|buf| *buf.borrow_mut() = qv);
        hits
    }

    /// [`VectorIndex::search`] with an already-embedded query vector.
    ///
    /// Large indexes shard the scan across the rayon pool, each shard
    /// keeping its own k-heap; shard winners are re-selected through one
    /// final heap. Because per-row scores do not depend on sharding and
    /// the heap order is total, the merged result is identical at any
    /// thread count (pinned by `tests/parallel_equivalence.rs`).
    pub fn search_embedded(&self, qv: &[f32], k: usize) -> Vec<SearchHit> {
        assert_eq!(qv.len(), self.arena.dim(), "query dimension mismatch");
        let n = self.arena.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        let qnorm = ioembed::norm(qv);
        if let Some(ivf) = &self.ivf {
            if let Some(sq8) = &self.sq8 {
                return self.search_sq8(qv, qnorm, ivf, sq8, ivf.nprobe(), k);
            }
            return self.search_ivf(qv, qnorm, ivf, ivf.nprobe(), k);
        }
        let scan_start = std::time::Instant::now();
        let mut span = ioobserve::tracer().span_fine("vecindex.scan");
        span.set_attr("rows", n);
        let m = ioobserve::metrics();
        m.counter("vecindex.queries").inc();
        m.counter("vecindex.rows_scanned").add(n as u64);
        let _scan_guard = ScanTimer {
            start: scan_start,
            _span: span,
        };
        let shards = rayon::current_num_threads().min(n.div_ceil(MIN_ROWS_PER_SHARD));
        if shards <= 1 {
            return self.scan_shard(qv, qnorm, 0, n, k).into_sorted_hits();
        }
        // Even row partition; shard boundaries cannot change scores.
        let bounds: Vec<(usize, usize)> = (0..shards)
            .map(|s| {
                let base = n / shards;
                let rem = n % shards;
                let start = s * base + s.min(rem);
                (start, start + base + usize::from(s < rem))
            })
            .collect();
        let locals: Vec<Vec<SearchHit>> = bounds
            .par_iter()
            .map(|&(start, end)| self.scan_shard(qv, qnorm, start, end, k).into_sorted_hits())
            .collect();
        let mut merged = TopK::new(k);
        for hit in locals.into_iter().flatten() {
            merged.push(hit.score, hit.entry_idx);
        }
        merged.into_sorted_hits()
    }

    /// Score rows `start..end` against the query, keeping the best `k`.
    ///
    /// Rows go through [`VectorArena::dot_block`] eight at a time so eight
    /// independent accumulator chains pipeline (a single bit-faithful dot
    /// is add-latency-bound); the tail falls back to the one-row kernel.
    /// Both produce bit-identical per-row dots, and rows are offered to
    /// the heap in index order either way.
    fn scan_shard(&self, qv: &[f32], qnorm: f32, start: usize, end: usize, k: usize) -> TopK {
        const BLOCK: usize = VectorArena::DOT_BLOCK;
        let mut top = TopK::new(k);
        let push_single = |top: &mut TopK, i: usize| {
            let score = ioembed::cosine_with_norms(
                ioembed::dot(qv, self.arena.row(i)),
                qnorm,
                self.arena.norm(i),
            );
            top.push(score, i);
        };
        let mut i = start;
        // Leading rows up to block alignment, then full packed blocks,
        // then the tail — all offered to the heap in index order.
        while i < end && !i.is_multiple_of(BLOCK) {
            push_single(&mut top, i);
            i += 1;
        }
        let mut dots = [0.0f32; BLOCK];
        while i + BLOCK <= end {
            self.arena.dot_block(qv, i, &mut dots);
            for (j, &dot) in dots.iter().enumerate() {
                let score = ioembed::cosine_with_norms(dot, qnorm, self.arena.norm(i + j));
                top.push(score, i + j);
            }
            i += BLOCK;
        }
        while i < end {
            push_single(&mut top, i);
            i += 1;
        }
        top
    }

    /// IVF-probed search: score only the rows of the `nprobe` clusters
    /// whose centroids rank highest for the query. The per-row kernel and
    /// the heap's total order are exactly the flat scan's, so probing
    /// restricts *which* rows are scored but never changes a kept score —
    /// `nprobe = clusters` visits every list and is byte-identical to the
    /// flat scan (pinned by `tests/ivf_equivalence.rs`).
    fn search_ivf(
        &self,
        qv: &[f32],
        qnorm: f32,
        ivf: &IvfIndex,
        nprobe: usize,
        k: usize,
    ) -> Vec<SearchHit> {
        let scan_start = std::time::Instant::now();
        let mut span = ioobserve::tracer().span_fine("vecindex.scan");
        let probed = ivf.probe(qv, qnorm, nprobe);
        let rows: usize = probed.iter().map(|&c| ivf.list(c as usize).len()).sum();
        span.set_attr("rows", rows);
        span.set_attr("ivf_probes", probed.len());
        let m = ioobserve::metrics();
        m.counter("vecindex.queries").inc();
        m.counter("vecindex.rows_scanned").add(rows as u64);
        m.counter("vecindex.ivf_probes").add(probed.len() as u64);
        let _scan_guard = ScanTimer {
            start: scan_start,
            _span: span,
        };
        let mut top = TopK::new(k);
        for c in probed {
            ivf.scan_cluster(&self.arena, qv, qnorm, c as usize, &mut top);
        }
        top.into_sorted_hits()
    }

    /// SQ8-tiered probed search: the probed cluster ranges are scanned
    /// over int8 codes (4× less bandwidth, multi-chain fold) to select
    /// the best `rerank_pool` candidates by approximate cosine, which are
    /// then re-scored with the **exact** f32 kernel and offered — as
    /// external ids — to the final k-heap.
    ///
    /// Every returned score is an exact flat-scan bit pattern (the
    /// approximation only picks candidates), and with
    /// `rerank_pool >= rows probed` the pool holds every probed row, so
    /// the result is byte-identical to [`VectorIndex::search_ivf`] at the
    /// same probe set (pinned by `tests/sq8_equivalence.rs`).
    fn search_sq8(
        &self,
        qv: &[f32],
        qnorm: f32,
        ivf: &IvfIndex,
        sq8: &Sq8Tier,
        nprobe: usize,
        k: usize,
    ) -> Vec<SearchHit> {
        let scan_start = std::time::Instant::now();
        let mut span = ioobserve::tracer().span_fine("vecindex.scan");
        let probed = ivf.probe(qv, qnorm, nprobe);
        let rows: usize = probed
            .iter()
            .map(|&c| ivf.cluster_range(c as usize).len())
            .sum();
        span.set_attr("rows", rows);
        span.set_attr("ivf_probes", probed.len());
        let m = ioobserve::metrics();
        m.counter("vecindex.queries").inc();
        m.counter("vecindex.rows_scanned").add(rows as u64);
        m.counter("vecindex.ivf_probes").add(probed.len() as u64);
        m.counter("vecindex.sq8_scans").inc();
        let _scan_guard = ScanTimer {
            start: scan_start,
            _span: span,
        };
        let prep = sq8.prepare(qv);
        let mut pool = TopK::new(sq8.rerank_pool().max(k));
        for &c in &probed {
            sq8.scan_range(
                &prep,
                qnorm,
                &self.arena,
                ivf.cluster_range(c as usize),
                &mut pool,
            );
        }
        let mut top = TopK::new(k);
        for cand in pool.into_sorted_hits() {
            let p = cand.entry_idx; // internal (cluster-major) position
            let exact = ioembed::cosine_with_norms(
                ioembed::dot(qv, self.arena.row(p)),
                qnorm,
                self.arena.norm(p),
            );
            top.push(exact, ivf.external_of(p));
        }
        top.into_sorted_hits()
    }

    /// Run many queries, each returning its own top-k, byte-identical to
    /// per-query [`VectorIndex::search`] calls.
    ///
    /// Queries are embedded once up front, grouped into blocks of
    /// [`VectorArena::QUERY_BLOCK`], and each block streams the arena (or
    /// each probed cluster list) **once** for all of its queries — the
    /// query-blocked kernel that reuses every loaded row across the whole
    /// block instead of re-streaming n×dim floats per query. Blocks run
    /// in parallel on the rayon pool; blocks are independent, so results
    /// are identical at any thread width.
    pub fn search_batch(&self, queries: &[String], k: usize) -> Vec<Vec<SearchHit>> {
        let embedded: Vec<Vec<f32>> = queries.par_iter().map(|q| self.embedder.embed(q)).collect();
        self.search_batch_embedded(&embedded, k)
    }

    /// [`VectorIndex::search_batch`] over already-embedded queries.
    ///
    /// With IVF attached, every query is probed **once** (the same probe
    /// the single-query path would run), and the probe lists drive both
    /// the cluster-affine grouping — queries sharing a block mostly
    /// subscribe to the same cluster lists, so each list is streamed once
    /// for many of them — and the scans themselves. Grouping only changes
    /// which queries share a pass, never a score, and results are
    /// scattered back to input order.
    pub fn search_batch_embedded(&self, queries: &[Vec<f32>], k: usize) -> Vec<Vec<SearchHit>> {
        for qv in queries {
            assert_eq!(qv.len(), self.arena.dim(), "query dimension mismatch");
        }
        if let Some(ivf) = &self.ivf {
            if let Some(sq8) = &self.sq8 {
                // SQ8 batches run the single-query tier per query (in
                // parallel blocks): the code scan already streams 4× less
                // than f32, so cluster-affine sharing buys little, and
                // reusing the one path keeps batch == single trivially.
                let blocks: Vec<&[Vec<f32>]> = queries.chunks(VectorArena::QUERY_BLOCK).collect();
                let per_block: Vec<Vec<Vec<SearchHit>>> = blocks
                    .par_iter()
                    .map(|block| {
                        block
                            .iter()
                            .map(|qv| {
                                let qnorm = ioembed::norm(qv);
                                self.search_sq8(qv, qnorm, ivf, sq8, ivf.nprobe(), k)
                            })
                            .collect()
                    })
                    .collect();
                return per_block.into_iter().flatten().collect();
            }
            return self.search_batch_ivf(queries, ivf, k);
        }
        let blocks: Vec<&[Vec<f32>]> = queries.chunks(VectorArena::QUERY_BLOCK).collect();
        let per_block: Vec<Vec<Vec<SearchHit>>> = blocks
            .par_iter()
            .map(|block| {
                let refs: Vec<&[f32]> = block.iter().map(Vec::as_slice).collect();
                self.search_block_flat(&refs, k)
            })
            .collect();
        per_block.into_iter().flatten().collect()
    }

    /// IVF batch path: probe each query once at the quantizer's default
    /// width, order queries by their best cluster, then scan blocks with
    /// the precomputed probe lists.
    fn search_batch_ivf(
        &self,
        queries: &[Vec<f32>],
        ivf: &IvfIndex,
        k: usize,
    ) -> Vec<Vec<SearchHit>> {
        let probes: Vec<(Vec<u32>, f32)> = queries
            .iter()
            .map(|qv| {
                let qnorm = ioembed::norm(qv);
                (ivf.probe(qv, qnorm, ivf.nprobe()), qnorm)
            })
            .collect();
        // Cluster-affine order: a probe list is never empty (at least one
        // cluster always exists), and ties fall back to input order.
        let mut order: Vec<usize> = (0..queries.len()).collect();
        order.sort_unstable_by_key(|&i| (probes[i].0[0], i));
        let blocks: Vec<&[usize]> = order.chunks(VectorArena::QUERY_BLOCK).collect();
        let per_block: Vec<Vec<Vec<SearchHit>>> = blocks
            .par_iter()
            .map(|idxs| self.search_block_ivf(queries, &probes, idxs, ivf, k))
            .collect();
        let mut out: Vec<Vec<SearchHit>> = vec![Vec::new(); queries.len()];
        for (&slot, hits) in order.iter().zip(per_block.into_iter().flatten()) {
            out[slot] = hits;
        }
        out
    }

    /// Top-k for one block of ≤ [`VectorArena::QUERY_BLOCK`] queries,
    /// streaming shared rows once for the whole block.
    fn search_block_flat(&self, block: &[&[f32]], k: usize) -> Vec<Vec<SearchHit>> {
        let n = self.arena.len();
        if n == 0 || k == 0 {
            return block.iter().map(|_| Vec::new()).collect();
        }
        let qnorms: Vec<f32> = block.iter().map(|q| ioembed::norm(q)).collect();
        const B: usize = VectorArena::DOT_BLOCK;
        let mut tops: Vec<TopK> = block.iter().map(|_| TopK::new(k)).collect();
        // Full packed blocks through the query-blocked kernel…
        let full = n - n % B;
        let mut dots = vec![0.0f32; block.len() * B];
        let mut i = 0;
        while i < full {
            self.arena.dot_block_batch(block, i, &mut dots);
            for ((q, top), dot_lanes) in tops.iter_mut().enumerate().zip(dots.chunks_exact(B)) {
                for (j, &dot) in dot_lanes.iter().enumerate() {
                    let score = ioembed::cosine_with_norms(dot, qnorms[q], self.arena.norm(i + j));
                    top.push(score, i + j);
                }
            }
            i += B;
        }
        // …then the trailing rows through the one-row multi-query kernel.
        let mut row_dots = vec![0.0f32; block.len()];
        for i in full..n {
            ioembed::dot_multi(block, self.arena.row(i), &mut row_dots);
            for ((top, &dot), &qnorm) in tops.iter_mut().zip(&row_dots).zip(&qnorms) {
                top.push(
                    ioembed::cosine_with_norms(dot, qnorm, self.arena.norm(i)),
                    i,
                );
            }
        }
        tops.into_iter().map(TopK::into_sorted_hits).collect()
    }

    /// IVF-probed block search over one block of query indices (into
    /// `queries`/`probes`): each query scans exactly the clusters its
    /// precomputed probe list names — the same set
    /// [`VectorIndex::search_ivf`] would — but clusters subscribed by
    /// several queries of the block are scanned back to back while their
    /// packed blocks are cache-hot.
    fn search_block_ivf(
        &self,
        queries: &[Vec<f32>],
        probes: &[(Vec<u32>, f32)],
        idxs: &[usize],
        ivf: &IvfIndex,
        k: usize,
    ) -> Vec<Vec<SearchHit>> {
        let mut tops: Vec<TopK> = idxs.iter().map(|_| TopK::new(k)).collect();
        // Cluster → block slots that probe it.
        let mut subscribers: Vec<Vec<u32>> = vec![Vec::new(); ivf.clusters()];
        for (slot, &q) in idxs.iter().enumerate() {
            for &c in &probes[q].0 {
                subscribers[c as usize].push(slot as u32);
            }
        }
        for (c, subs) in subscribers.iter().enumerate() {
            for &slot in subs {
                let q = idxs[slot as usize];
                ivf.scan_cluster(
                    &self.arena,
                    &queries[q],
                    probes[q].1,
                    c,
                    &mut tops[slot as usize],
                );
            }
        }
        tops.into_iter().map(TopK::into_sorted_hits).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> VectorIndex {
        let mut ix = VectorIndex::new(Embedder::default(), 64, 8);
        ix.add_document(
            "doc-stripe",
            "[Striping for Parallel I/O, SC 2021]",
            "Lustre stripe count determines how many object storage targets serve a file. \
             A stripe count of one serialises all accesses onto a single OST, limiting \
             bandwidth and parallelism. Increasing the stripe count spreads server load.",
        );
        ix.add_document(
            "doc-collective",
            "[Collective I/O Revisited, IPDPS 2022]",
            "Collective MPI-IO operations aggregate many small independent requests into \
             large contiguous transfers, dramatically improving shared-file write bandwidth.",
        );
        ix.add_document(
            "doc-metadata",
            "[Metadata Scalability, FAST 2023]",
            "Excessive open, stat and close operations overload the metadata server. \
             Batching metadata operations or caching attributes reduces latency.",
        );
        ix
    }

    #[test]
    fn retrieval_prefers_topical_document() {
        let ix = small_index();
        let hits = ix.search("stripe count of 1 limits parallelism on a single OST", 2);
        assert_eq!(&*ix.entry(hits[0].entry_idx).doc_id, "doc-stripe");
        assert!(hits[0].score > 0.2);
    }

    #[test]
    fn search_returns_at_most_k() {
        let ix = small_index();
        assert_eq!(ix.search("metadata", 1).len(), 1);
        assert!(ix.search("metadata", 100).len() <= ix.len());
    }

    #[test]
    fn batch_matches_individual_searches() {
        let ix = small_index();
        let queries = vec![
            "collective aggregation of small writes".to_string(),
            "stat storm".to_string(),
        ];
        let batch = ix.search_batch(&queries, 2);
        for (q, hits) in queries.iter().zip(&batch) {
            let single = ix.search(q, 2);
            let a: Vec<usize> = hits.iter().map(|h| h.entry_idx).collect();
            let b: Vec<usize> = single.iter().map(|h| h.entry_idx).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn long_document_produces_multiple_chunks() {
        let mut ix = VectorIndex::new(Embedder::default(), 32, 4);
        let long = "word ".repeat(200);
        ix.add_document("long", "[Long]", &long);
        assert!(ix.len() > 3);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let ix = VectorIndex::default();
        assert!(ix.search("anything", 5).is_empty());
        assert!(ix.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must exceed overlap")]
    fn bad_hyperparameters_panic() {
        VectorIndex::new(Embedder::default(), 10, 10);
    }

    #[test]
    fn from_parts_reconstructs_an_equivalent_index() {
        let ix = small_index();
        let rebuilt = VectorIndex::from_parts(
            ix.embedder().clone(),
            ix.chunk_size(),
            ix.overlap(),
            ix.entries().to_vec(),
            ix.arena().clone(),
        );
        assert_eq!(rebuilt.len(), ix.len());
        let q = "collective aggregation of small writes";
        let a: Vec<usize> = ix.search(q, 3).iter().map(|h| h.entry_idx).collect();
        let b: Vec<usize> = rebuilt.search(q, 3).iter().map(|h| h.entry_idx).collect();
        assert_eq!(a, b);
    }

    /// The Arc-sharing satellite: every chunk of a document must alias the
    /// same doc_id / citation allocation rather than cloning the strings.
    #[test]
    fn chunks_of_one_document_share_metadata_allocations() {
        let mut ix = VectorIndex::new(Embedder::default(), 32, 4);
        ix.add_document("shared", "[Shared, V 2024]", &"tok ".repeat(200));
        assert!(ix.len() > 2, "need multiple chunks for the test to bite");
        let first = ix.entry(0);
        for i in 1..ix.len() {
            let e = ix.entry(i);
            assert!(
                Arc::ptr_eq(&first.doc_id, &e.doc_id),
                "chunk {i} doc_id is a separate allocation"
            );
            assert!(
                Arc::ptr_eq(&first.citation, &e.citation),
                "chunk {i} citation is a separate allocation"
            );
        }
    }

    /// Engine-vs-reference equivalence in miniature (the full-corpus pin
    /// lives in tests/retrieval_equivalence.rs).
    #[test]
    fn engine_matches_reference_bit_for_bit() {
        let ix = small_index();
        for k in [1, 2, 5, 100] {
            for q in [
                "stripe count of 1 limits parallelism",
                "metadata stat storm",
                "",
            ] {
                let engine: Vec<(u32, usize)> = ix
                    .search(q, k)
                    .iter()
                    .map(|h| (h.score.to_bits(), h.entry_idx))
                    .collect();
                let reference: Vec<(u32, usize)> = reference::search(&ix, q, k)
                    .iter()
                    .map(|h| (h.score.to_bits(), h.entry_idx))
                    .collect();
                assert_eq!(engine, reference, "k={k} q={q:?}");
            }
        }
    }

    /// Exact-mode IVF (`nprobe = clusters`) must be byte-identical to the
    /// flat scan and hence to the reference, in miniature (the full pin
    /// lives in tests/ivf_equivalence.rs).
    #[test]
    fn ivf_exact_mode_matches_reference_bit_for_bit() {
        let mut ix = small_index();
        ix.enable_ivf(3, 3);
        assert_eq!(ix.ivf().unwrap().clusters(), 3);
        for k in [1, 2, 5, 100] {
            for q in [
                "stripe count of 1 limits parallelism",
                "metadata stat storm",
                "",
            ] {
                let engine: Vec<(u32, usize)> = ix
                    .search(q, k)
                    .iter()
                    .map(|h| (h.score.to_bits(), h.entry_idx))
                    .collect();
                let spec: Vec<(u32, usize)> = reference::search(&ix, q, k)
                    .iter()
                    .map(|h| (h.score.to_bits(), h.entry_idx))
                    .collect();
                assert_eq!(engine, spec, "k={k} q={q:?}");
            }
        }
    }

    /// Probed hits keep exact flat-scan scores: every IVF hit at any
    /// nprobe appears in the flat ranking with the same score bits.
    #[test]
    fn ivf_probed_scores_are_exact_flat_scores() {
        let mut ix = small_index();
        let q = "collective aggregation of small writes";
        let flat: Vec<(u32, usize)> = ix
            .search(q, ix.len())
            .iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        ix.enable_ivf(3, 1);
        for hit in ix.search(q, 5) {
            assert!(
                flat.contains(&(hit.score.to_bits(), hit.entry_idx)),
                "probed hit {} not an exact flat hit",
                hit.entry_idx
            );
        }
    }

    /// The batch path must stay byte-identical to per-query search with
    /// IVF attached, including when block queries probe different (and
    /// overlapping) cluster sets.
    #[test]
    fn ivf_batch_matches_individual_searches() {
        let mut ix = small_index();
        ix.enable_ivf(3, 2);
        let queries: Vec<String> = [
            "collective aggregation of small writes",
            "stat storm",
            "stripe count of one",
            "",
        ]
        .iter()
        .map(|q| q.to_string())
        .collect();
        let batch = ix.search_batch(&queries, 3);
        for (q, hits) in queries.iter().zip(&batch) {
            let single: Vec<(u32, usize)> = ix
                .search(q, 3)
                .iter()
                .map(|h| (h.score.to_bits(), h.entry_idx))
                .collect();
            let batched: Vec<(u32, usize)> = hits
                .iter()
                .map(|h| (h.score.to_bits(), h.entry_idx))
                .collect();
            assert_eq!(batched, single, "q={q:?}");
        }
    }

    /// Adding a document invalidates the clustering (its rows would be
    /// unassigned) *and* the SQ8 tier (its codebook and cluster-major
    /// codes describe the pre-add index), falling back to the exact flat
    /// scan.
    #[test]
    fn add_document_invalidates_ivf_and_sq8() {
        let mut ix = small_index();
        ix.enable_ivf(2, 1);
        ix.enable_sq8(16);
        assert!(ix.ivf().is_some() && ix.sq8().is_some());
        ix.add_document("late", "[Late, V 2026]", "a late arriving document");
        assert!(ix.ivf().is_none(), "stale clustering must not survive");
        assert!(ix.sq8().is_none(), "stale SQ8 codebook must not survive");
        // The post-add flat scan still matches the executable spec.
        let q = "a late arriving document";
        let engine: Vec<(u32, usize)> = ix
            .search(q, 5)
            .iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        let spec: Vec<(u32, usize)> = reference::search(&ix, q, 5)
            .iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        assert_eq!(engine, spec);
    }

    /// `vector(idx)` must keep returning entry `idx`'s embedding across
    /// cluster-major reordering, detach, and re-cluster.
    #[test]
    fn vector_is_stable_across_layout_changes() {
        let mut ix = small_index();
        let before: Vec<Vec<f32>> = (0..ix.len()).map(|i| ix.vector(i).to_vec()).collect();
        ix.enable_ivf(2, 2);
        for (i, v) in before.iter().enumerate() {
            assert_eq!(ix.vector(i), v.as_slice(), "entry {i} after enable_ivf");
        }
        ix.disable_ivf();
        for (i, v) in before.iter().enumerate() {
            assert_eq!(ix.vector(i), v.as_slice(), "entry {i} after disable_ivf");
        }
        assert!(
            ix.arena().has_packed(),
            "flat layout restores the packed copy"
        );
    }

    /// SQ8 with a pool covering every probed row must be byte-identical
    /// to the pure-f32 probe path, and at `nprobe = clusters` to the
    /// reference (the full-corpus pin lives in tests/sq8_equivalence.rs).
    #[test]
    fn sq8_full_pool_matches_reference_bit_for_bit() {
        let mut ix = small_index();
        ix.enable_ivf(3, 3);
        ix.enable_sq8(ix.len()); // pool >= every probed row
        for k in [1, 2, 5, 100] {
            for q in [
                "stripe count of 1 limits parallelism",
                "metadata stat storm",
                "",
            ] {
                let engine: Vec<(u32, usize)> = ix
                    .search(q, k)
                    .iter()
                    .map(|h| (h.score.to_bits(), h.entry_idx))
                    .collect();
                let spec: Vec<(u32, usize)> = reference::search(&ix, q, k)
                    .iter()
                    .map(|h| (h.score.to_bits(), h.entry_idx))
                    .collect();
                assert_eq!(engine, spec, "k={k} q={q:?}");
            }
        }
    }

    /// Even with a tiny pool, every returned SQ8 score is an exact
    /// flat-scan bit pattern (the approximation only picks candidates).
    #[test]
    fn sq8_hits_always_carry_exact_scores() {
        let mut ix = small_index();
        let q = "collective aggregation of small writes";
        let flat: Vec<(u32, usize)> = ix
            .search(q, ix.len())
            .iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        ix.enable_ivf(3, 2);
        ix.enable_sq8(2); // deliberately small pool
        for hit in ix.search(q, 5) {
            assert!(
                flat.contains(&(hit.score.to_bits(), hit.entry_idx)),
                "sq8 hit {} is not an exact flat hit",
                hit.entry_idx
            );
        }
    }

    /// The batch path must stay byte-identical to per-query search with
    /// the SQ8 tier attached.
    #[test]
    fn sq8_batch_matches_individual_searches() {
        let mut ix = small_index();
        ix.enable_ivf(3, 2);
        ix.enable_sq8(4);
        let queries: Vec<String> = [
            "collective aggregation of small writes",
            "stat storm",
            "stripe count of one",
            "",
        ]
        .iter()
        .map(|q| q.to_string())
        .collect();
        let batch = ix.search_batch(&queries, 3);
        for (q, hits) in queries.iter().zip(&batch) {
            let single: Vec<(u32, usize)> = ix
                .search(q, 3)
                .iter()
                .map(|h| (h.score.to_bits(), h.entry_idx))
                .collect();
            let batched: Vec<(u32, usize)> = hits
                .iter()
                .map(|h| (h.score.to_bits(), h.entry_idx))
                .collect();
            assert_eq!(batched, single, "q={q:?}");
        }
    }

    /// set_nprobe clamps and round-trips through the attached quantizer.
    #[test]
    fn nprobe_is_adjustable_and_clamped() {
        let mut ix = small_index();
        ix.enable_ivf(3, 1);
        ix.set_nprobe(999);
        assert_eq!(ix.ivf().unwrap().nprobe(), 3);
        ix.set_nprobe(0);
        assert_eq!(ix.ivf().unwrap().nprobe(), 1);
    }

    /// Force the sharded path (n ≥ MIN_ROWS_PER_SHARD rows) and check it
    /// still matches the sequential reference.
    #[test]
    fn sharded_scan_matches_reference() {
        let mut ix = VectorIndex::new(Embedder::new(8), 4, 1);
        // ~1.3k chunks of repetitive but distinguishable text.
        for d in 0..40 {
            let text: String = (0..130)
                .map(|i| format!("w{} ", (d * 7 + i) % 90))
                .collect();
            ix.add_document(&format!("d{d}"), "[C]", &text);
        }
        assert!(ix.len() >= MIN_ROWS_PER_SHARD, "len {}", ix.len());
        let q = "w3 w40 w77";
        let engine: Vec<(u32, usize)> = ix
            .search(q, 15)
            .iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        let reference: Vec<(u32, usize)> = reference::search(&ix, q, 15)
            .iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        assert_eq!(engine, reference);
    }
}
