//! Chunking vector index with top-k cosine retrieval.
//!
//! Reproduces the paper's LlamaIndex configuration: documents are split into
//! chunks of 512 tokens with an overlap of 20, each chunk is embedded, and
//! queries retrieve the top-k chunks by cosine similarity (the paper uses
//! k = 15 before self-reflection filtering). Batch searches run in parallel
//! with rayon, mirroring IOAgent's parallel per-fragment retrieval.

pub mod chunk;

pub use chunk::{chunk_text, Chunk};

use ioembed::Embedder;
use rayon::prelude::*;
use serde::Serialize;

/// Default chunk size in tokens (LlamaIndex default used by the paper).
pub const DEFAULT_CHUNK_SIZE: usize = 512;
/// Default chunk overlap in tokens.
pub const DEFAULT_OVERLAP: usize = 20;

/// One indexed chunk.
#[derive(Debug, Clone, Serialize)]
pub struct IndexEntry {
    /// Identifier of the source document.
    pub doc_id: String,
    /// Human-readable citation for the source (title, venue, year).
    pub citation: String,
    /// Chunk ordinal within the document.
    pub chunk_no: usize,
    /// The chunk text.
    pub text: String,
    /// The embedding vector.
    #[serde(skip)]
    pub vector: Vec<f32>,
}

/// A retrieval hit.
#[derive(Debug, Clone)]
pub struct SearchHit {
    /// Cosine similarity to the query.
    pub score: f32,
    /// Index of the entry within the index.
    pub entry_idx: usize,
}

/// An in-memory vector index over chunked documents.
#[derive(Debug, Clone)]
pub struct VectorIndex {
    embedder: Embedder,
    chunk_size: usize,
    overlap: usize,
    entries: Vec<IndexEntry>,
}

impl Default for VectorIndex {
    fn default() -> Self {
        VectorIndex::new(Embedder::default(), DEFAULT_CHUNK_SIZE, DEFAULT_OVERLAP)
    }
}

impl VectorIndex {
    /// Create an empty index with explicit hyper-parameters.
    pub fn new(embedder: Embedder, chunk_size: usize, overlap: usize) -> Self {
        assert!(chunk_size > overlap, "chunk size must exceed overlap");
        VectorIndex {
            embedder,
            chunk_size,
            overlap,
            entries: Vec::new(),
        }
    }

    /// Reassemble an index from previously serialized parts (e.g. an
    /// `iostore` snapshot). The entries are taken as-is — vectors are NOT
    /// re-embedded — so the caller is responsible for checking that the
    /// embedder configuration matches the one the entries were built with
    /// (the snapshot header carries exactly that fingerprint).
    pub fn from_parts(
        embedder: Embedder,
        chunk_size: usize,
        overlap: usize,
        entries: Vec<IndexEntry>,
    ) -> Self {
        assert!(chunk_size > overlap, "chunk size must exceed overlap");
        VectorIndex {
            embedder,
            chunk_size,
            overlap,
            entries,
        }
    }

    /// The embedder this index embeds queries (and documents) with.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }

    /// Chunk size in tokens.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Chunk overlap in tokens.
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// All indexed entries, in insertion order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Chunk, embed, and add a document.
    pub fn add_document(&mut self, doc_id: &str, citation: &str, text: &str) {
        for (i, chunk) in chunk_text(text, self.chunk_size, self.overlap)
            .into_iter()
            .enumerate()
        {
            let vector = self.embedder.embed(&chunk.text);
            self.entries.push(IndexEntry {
                doc_id: doc_id.to_string(),
                citation: citation.to_string(),
                chunk_no: i,
                text: chunk.text,
                vector,
            });
        }
    }

    /// Number of chunks in the index.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Access an entry by index.
    pub fn entry(&self, idx: usize) -> &IndexEntry {
        &self.entries[idx]
    }

    /// Top-k entries by cosine similarity to `query`. Scanning is parallel
    /// across index chunks; the ordered `collect` plus the total-order sort
    /// below make the result identical at any thread count (ties broken by
    /// entry index), pinned by `tests/parallel_equivalence.rs`.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        let qv = self.embedder.embed(query);
        let mut scored: Vec<SearchHit> = self
            .entries
            .par_iter()
            .enumerate()
            .map(|(i, e)| SearchHit {
                score: ioembed::cosine(&qv, &e.vector),
                entry_idx: i,
            })
            .collect();
        // NaN-safe ordering: `partial_cmp().unwrap()` would panic mid-search
        // on a NaN score. `total_cmp` imposes a deterministic total order
        // instead (in this descending comparator +NaN sorts first, -NaN
        // last); `ioembed::cosine` returns 0.0 for degenerate vectors, so
        // NaN should be unreachable — the point is that a scoring bug
        // degrades ranking rather than panicking the service.
        scored.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.entry_idx.cmp(&b.entry_idx))
        });
        scored.truncate(k);
        scored
    }

    /// Run many queries in parallel, each returning its own top-k.
    pub fn search_batch(&self, queries: &[String], k: usize) -> Vec<Vec<SearchHit>> {
        queries.par_iter().map(|q| self.search(q, k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_index() -> VectorIndex {
        let mut ix = VectorIndex::new(Embedder::default(), 64, 8);
        ix.add_document(
            "doc-stripe",
            "[Striping for Parallel I/O, SC 2021]",
            "Lustre stripe count determines how many object storage targets serve a file. \
             A stripe count of one serialises all accesses onto a single OST, limiting \
             bandwidth and parallelism. Increasing the stripe count spreads server load.",
        );
        ix.add_document(
            "doc-collective",
            "[Collective I/O Revisited, IPDPS 2022]",
            "Collective MPI-IO operations aggregate many small independent requests into \
             large contiguous transfers, dramatically improving shared-file write bandwidth.",
        );
        ix.add_document(
            "doc-metadata",
            "[Metadata Scalability, FAST 2023]",
            "Excessive open, stat and close operations overload the metadata server. \
             Batching metadata operations or caching attributes reduces latency.",
        );
        ix
    }

    #[test]
    fn retrieval_prefers_topical_document() {
        let ix = small_index();
        let hits = ix.search("stripe count of 1 limits parallelism on a single OST", 2);
        assert_eq!(ix.entry(hits[0].entry_idx).doc_id, "doc-stripe");
        assert!(hits[0].score > 0.2);
    }

    #[test]
    fn search_returns_at_most_k() {
        let ix = small_index();
        assert_eq!(ix.search("metadata", 1).len(), 1);
        assert!(ix.search("metadata", 100).len() <= ix.len());
    }

    #[test]
    fn batch_matches_individual_searches() {
        let ix = small_index();
        let queries = vec![
            "collective aggregation of small writes".to_string(),
            "stat storm".to_string(),
        ];
        let batch = ix.search_batch(&queries, 2);
        for (q, hits) in queries.iter().zip(&batch) {
            let single = ix.search(q, 2);
            let a: Vec<usize> = hits.iter().map(|h| h.entry_idx).collect();
            let b: Vec<usize> = single.iter().map(|h| h.entry_idx).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn long_document_produces_multiple_chunks() {
        let mut ix = VectorIndex::new(Embedder::default(), 32, 4);
        let long = "word ".repeat(200);
        ix.add_document("long", "[Long]", &long);
        assert!(ix.len() > 3);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let ix = VectorIndex::default();
        assert!(ix.search("anything", 5).is_empty());
        assert!(ix.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must exceed overlap")]
    fn bad_hyperparameters_panic() {
        VectorIndex::new(Embedder::default(), 10, 10);
    }

    #[test]
    fn from_parts_reconstructs_an_equivalent_index() {
        let ix = small_index();
        let rebuilt = VectorIndex::from_parts(
            ix.embedder().clone(),
            ix.chunk_size(),
            ix.overlap(),
            ix.entries().to_vec(),
        );
        assert_eq!(rebuilt.len(), ix.len());
        let q = "collective aggregation of small writes";
        let a: Vec<usize> = ix.search(q, 3).iter().map(|h| h.entry_idx).collect();
        let b: Vec<usize> = rebuilt.search(q, 3).iter().map(|h| h.entry_idx).collect();
        assert_eq!(a, b);
    }
}
