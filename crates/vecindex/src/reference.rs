//! The pre-arena retrieval path, kept as an executable specification.
//!
//! This is, line for line, what `VectorIndex::search` did before the
//! engine rebuild: score **every** entry with `ioembed::cosine` (which
//! recomputes both the query's and the entry's norm per call), materialise
//! a [`SearchHit`] per entry, full-sort descending with the
//! `total_cmp` + entry-index tie-break, and truncate to `k`.
//!
//! The engine must match it bit for bit — same scores, same order — which
//! `tests/retrieval_equivalence.rs` pins over the seed knowledge corpus at
//! 1 and 4 shim threads, and the retrieval benchmark both asserts and uses
//! as its speedup baseline.

use crate::{SearchHit, VectorIndex};

/// Scan-score-sort search over `index` (the old hot path, sequential).
pub fn search(index: &VectorIndex, query: &str, k: usize) -> Vec<SearchHit> {
    let qv = index.embedder().embed(query);
    search_embedded(index, &qv, k)
}

/// [`search`] with an already-embedded query.
pub fn search_embedded(index: &VectorIndex, qv: &[f32], k: usize) -> Vec<SearchHit> {
    let mut scored: Vec<SearchHit> = (0..index.len())
        .map(|i| SearchHit {
            score: ioembed::cosine(qv, index.vector(i)),
            entry_idx: i,
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.entry_idx.cmp(&b.entry_idx))
    });
    scored.truncate(k);
    scored
}

/// Per-query [`search`] over a batch (the old `search_batch`, sequential).
pub fn search_batch(index: &VectorIndex, queries: &[String], k: usize) -> Vec<Vec<SearchHit>> {
    queries.iter().map(|q| search(index, q, k)).collect()
}
