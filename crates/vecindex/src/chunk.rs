//! Token-window chunking.

/// One chunk of a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// The chunk's text (tokens re-joined with single spaces).
    pub text: String,
    /// Index of the first token of this chunk in the source document.
    pub start_token: usize,
}

/// Split `text` into chunks of `chunk_size` tokens with `overlap` tokens
/// shared between consecutive chunks.
pub fn chunk_text(text: &str, chunk_size: usize, overlap: usize) -> Vec<Chunk> {
    assert!(chunk_size > overlap, "chunk size must exceed overlap");
    let tokens = ioembed::tokenize(text);
    if tokens.is_empty() {
        return Vec::new();
    }
    let stride = chunk_size - overlap;
    let mut chunks = Vec::new();
    let mut start = 0usize;
    loop {
        let end = (start + chunk_size).min(tokens.len());
        chunks.push(Chunk {
            text: tokens[start..end].join(" "),
            start_token: start,
        });
        if end == tokens.len() {
            break;
        }
        start += stride;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_text_is_one_chunk() {
        let c = chunk_text("one two three", 512, 20);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].text, "one two three");
    }

    #[test]
    fn chunks_overlap_correctly() {
        let text = (0..100)
            .map(|i| format!("t{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        let chunks = chunk_text(&text, 40, 10);
        assert_eq!(chunks[0].start_token, 0);
        assert_eq!(chunks[1].start_token, 30);
        // Overlapping region is shared.
        assert!(chunks[0].text.contains("t30"));
        assert!(chunks[1].text.contains("t30"));
    }

    #[test]
    fn all_tokens_covered() {
        let text = (0..95)
            .map(|i| format!("t{i}"))
            .collect::<Vec<_>>()
            .join(" ");
        let chunks = chunk_text(&text, 40, 10);
        let last = chunks.last().unwrap();
        assert!(last.text.ends_with("t94"));
    }

    #[test]
    fn empty_text_yields_no_chunks() {
        assert!(chunk_text("", 16, 2).is_empty());
    }
}
