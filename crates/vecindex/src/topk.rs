//! Bounded top-k selection over streamed scores.
//!
//! Replaces the seed-era "materialise every hit, full-sort O(n log n),
//! truncate" with a k-element min-heap: O(n log k) comparisons, zero
//! per-entry allocation, and — by construction over the same total order
//! (`f32::total_cmp` descending, entry index ascending on ties) — exactly
//! the hits `sort_by(...).truncate(k)` would keep, NaNs and duplicate
//! scores included. A property test in `tests/properties.rs` pins the two
//! against each other on adversarial inputs.

use crate::SearchHit;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap wrapper ordering hits **worst-first**: a hit is `Greater` when it
/// ranks lower (smaller score under `total_cmp`, larger entry index on
/// ties), so the max-heap root is the weakest kept hit — the one a better
/// candidate evicts.
#[derive(Debug, Clone, Copy)]
struct Weakest(SearchHit);

impl PartialEq for Weakest {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Weakest {}

impl PartialOrd for Weakest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weakest {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .score
            .total_cmp(&self.0.score)
            .then(self.0.entry_idx.cmp(&other.0.entry_idx))
    }
}

/// A running top-k selection.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Weakest>,
}

impl TopK {
    /// Selector keeping the best `k` hits seen.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.min(1 << 16)),
        }
    }

    /// Offer one scored entry.
    #[inline]
    pub fn push(&mut self, score: f32, entry_idx: usize) {
        if self.k == 0 {
            return;
        }
        let cand = Weakest(SearchHit { score, entry_idx });
        if self.heap.len() < self.k {
            self.heap.push(cand);
        } else if let Some(mut weakest) = self.heap.peek_mut() {
            // `cand < weakest` under worst-first order ⇔ cand ranks higher.
            if cand < *weakest {
                *weakest = cand;
            }
        }
    }

    /// The kept hits, best first (score descending, entry index ascending
    /// on ties) — the exact prefix a full descending sort would produce.
    pub fn into_sorted_hits(self) -> Vec<SearchHit> {
        // `into_sorted_vec` is ascending in `Ord`; worst-first `Ord` makes
        // that best-to-worst.
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|w| w.0)
            .collect()
    }
}

/// Top-k over a score slice: the hits `sort_by(total_cmp desc, idx asc)` +
/// `truncate(k)` would keep, selected in O(n log k). Scores index entries
/// by position.
pub fn top_k(scores: &[f32], k: usize) -> Vec<SearchHit> {
    let mut sel = TopK::new(k);
    for (i, &s) in scores.iter().enumerate() {
        sel.push(s, i);
    }
    sel.into_sorted_hits()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full-sort specification the heap must match.
    fn spec(scores: &[f32], k: usize) -> Vec<(u32, usize)> {
        let mut hits: Vec<SearchHit> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| SearchHit {
                score: s,
                entry_idx: i,
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.entry_idx.cmp(&b.entry_idx))
        });
        hits.truncate(k);
        hits.iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect()
    }

    fn bits(hits: &[SearchHit]) -> Vec<(u32, usize)> {
        hits.iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect()
    }

    #[test]
    fn matches_sort_spec_on_plain_scores() {
        let scores = [0.1f32, 0.9, 0.5, 0.9, -0.3, 0.0];
        for k in 0..=scores.len() + 2 {
            assert_eq!(bits(&top_k(&scores, k)), spec(&scores, k), "k={k}");
        }
    }

    #[test]
    fn duplicate_scores_break_ties_by_entry_index() {
        let scores = [0.5f32; 7];
        let hits = top_k(&scores, 3);
        let idxs: Vec<usize> = hits.iter().map(|h| h.entry_idx).collect();
        assert_eq!(idxs, vec![0, 1, 2]);
    }

    #[test]
    fn nan_and_zero_signs_follow_total_cmp() {
        let scores = [f32::NAN, 0.5, -f32::NAN, 0.0, -0.0, f32::INFINITY];
        for k in 0..=scores.len() {
            assert_eq!(bits(&top_k(&scores, k)), spec(&scores, k), "k={k}");
        }
    }

    #[test]
    fn k_zero_and_empty_inputs() {
        assert!(top_k(&[], 5).is_empty());
        assert!(top_k(&[1.0, 2.0], 0).is_empty());
    }
}
