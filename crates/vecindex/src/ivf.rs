//! Inverted-file (IVF) coarse quantizer over the [`VectorArena`].
//!
//! A full-scan search touches every row — O(n·d) per query no matter how
//! large the corpus grows. The standard route to sub-linear scan cost in
//! vector retrieval is an inverted file: cluster the rows around `k`
//! coarse centroids once, keep one row list per cluster, and at query time
//! score only the rows of the `nprobe` clusters whose centroids are most
//! similar to the query.
//!
//! # Cluster-major layout
//!
//! Instead of keeping per-cluster *copies* of member vectors (the pre-v3
//! design, ≈2× vector memory), the quantizer carries a **row
//! permutation**: [`IvfIndex::perm`] maps internal (cluster-major)
//! positions to external row ids, and `IvfIndex::offsets`-style ranges
//! ([`IvfIndex::cluster_range`]) make each cluster one contiguous span of
//! internal positions. The owning `VectorIndex` physically reorders its
//! arena by this permutation ([`VectorArena::permuted`]), so a probed
//! cluster streams one contiguous range of the *only* vector copy. All
//! externally visible ids — [`IvfIndex::list`], [`IvfIndex::assignments`],
//! scan results — stay external, so entry metadata and
//! [`crate::reference`] equivalence are untouched.
//!
//! # Determinism
//!
//! Clustering is k-means (Lloyd's algorithm) with:
//!
//! - seeded initialisation: a partial Fisher–Yates shuffle driven by the
//!   workspace's deterministic `rand_chacha` shim picks `k` distinct seed
//!   rows, so the same arena always clusters identically on every machine;
//! - fixed-order float arithmetic: assignments are computed row-by-row
//!   (the parallel map preserves input order) and centroid means are folded
//!   in ascending row order, so no thread count or scheduling can change a
//!   single bit of the result;
//! - total-order tie-breaking: a row equidistant from two centroids joins
//!   the lower-numbered one.
//!
//! Lloyd's algorithm is followed by bounded **balance passes** (see
//! [`REBALANCE_MAX_PASSES`]): while some cluster holds more than twice the
//! target `⌈n/k⌉` rows (or some cluster is starved below an eighth of it),
//! the smallest cluster is dissolved — its rows reassigned to their
//! nearest surviving centroid — and the largest is split in two by a
//! seeded 2-means over its members (ChaCha-seeded like the
//! initialisation, ties to the lower slot index). The cluster count never
//! changes, and every step is sequential fixed-order arithmetic, so the
//! result is as deterministic as Lloyd itself.
//!
//! # Exactness contract
//!
//! Rows scored through a probe are scored with the **same** norm-cached
//! cosine kernel as the flat scan ([`VectorArena::dot_block_at`] shares
//! its fold with [`VectorArena::dot_block`]), and the bounded top-k heap
//! keeps the same set regardless of the order rows are offered (its
//! comparison is a total order over `(score, row)` with unique rows).
//! Probing therefore never changes a kept hit's score — it only restricts
//! *which* rows are scored. With `nprobe = clusters` every list is
//! visited, so the result is byte-identical to the flat scan and to
//! [`crate::reference::search`] (pinned by `tests/ivf_equivalence.rs`);
//! smaller `nprobe` trades recall for scan cost, measured by
//! `benches/batch.rs` and `benches/million.rs`.

use crate::arena::VectorArena;
use crate::topk::TopK;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::ops::Range;

/// Lloyd iterations run by [`IvfIndex::build`] (it stops early once an
/// iteration changes no assignment).
pub const KMEANS_ITERATIONS: usize = 8;

/// Seed for the deterministic centroid initialisation.
pub const KMEANS_SEED: u64 = 0x4956_465f_5345_4544; // "IVF_SEED"

/// Upper bound on post-Lloyd balance passes (each pass dissolves the
/// smallest cluster and splits the largest; the loop stops earlier once no
/// cluster is oversized or starved).
pub const REBALANCE_MAX_PASSES: usize = 16;

/// Coarse clustering of an arena's rows: centroids, a cluster-major row
/// permutation, and the default probe width searches use.
///
/// The quantizer stores **no vector copies**. It describes how the owning
/// index's arena is physically reordered (cluster-major: each cluster one
/// contiguous internal range) and maps between external row ids — the
/// stable ids entries, snapshots, and search results use — and internal
/// positions. [`IvfIndex::scan_cluster`] expects the cluster-major arena.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    nprobe: usize,
    /// `clusters × dim` row-major centroid matrix.
    centroids: Vec<f32>,
    /// Cached Euclidean norm per centroid.
    centroid_norms: Vec<f32>,
    /// External row → cluster id.
    assignments: Vec<u32>,
    /// Cluster `c` occupies internal positions `offsets[c]..offsets[c+1]`.
    offsets: Vec<u32>,
    /// Internal position → external row id; within a cluster's range the
    /// external ids ascend.
    perm: Vec<u32>,
    /// External row id → internal position (inverse of `perm`).
    inv: Vec<u32>,
}

impl IvfIndex {
    /// Cluster `arena`'s rows around `clusters` centroids (clamped to the
    /// row count) with `nprobe` as the default probe width.
    ///
    /// `arena` is read in **external** order (this is the arena *before*
    /// any cluster-major reordering); the caller applies
    /// [`IvfIndex::perm`] to the arena afterwards.
    pub fn build(arena: &VectorArena, clusters: usize, nprobe: usize) -> Self {
        let n = arena.len();
        let dim = arena.dim();
        let k = clusters.clamp(1, n.max(1));

        // Seeded distinct-row initialisation: partial Fisher–Yates over
        // the row indices. Mixing the row count into the seed keeps two
        // different corpora from sharing an initialisation by accident
        // while staying fully deterministic for any given corpus.
        let seed_mix = (n as u64).rotate_left(17);
        let mut rng = ChaCha8Rng::seed_from_u64(KMEANS_SEED ^ seed_mix);
        let mut order: Vec<usize> = (0..n).collect();
        for i in 0..k.min(n) {
            let j = i + (rng.next_u64() as usize) % (n - i);
            order.swap(i, j);
        }
        let mut centroids = vec![0.0f32; k * dim];
        for (c, &row) in order[..k.min(n)].iter().enumerate() {
            centroids[c * dim..(c + 1) * dim].copy_from_slice(arena.row(row));
        }
        let mut centroid_norms: Vec<f32> = centroids.chunks(dim).map(ioembed::norm).collect();

        let mut assignments: Vec<u32> = vec![0; n];
        for _ in 0..KMEANS_ITERATIONS {
            // Assign each row to its most-similar centroid. Rows are
            // independent, so the parallel map is order-stable and the
            // result is identical at any thread width.
            let next: Vec<u32> = (0..n)
                .into_par_iter()
                .map(|i| {
                    nearest_centroid(
                        arena.row(i),
                        arena.norm(i),
                        &centroids,
                        &centroid_norms,
                        dim,
                    )
                })
                .collect();
            let converged = next == assignments;
            assignments = next;
            if converged {
                break;
            }
            // Recompute centroids as member means, folding rows in
            // ascending order (fixed float-op sequence). An emptied
            // cluster keeps its previous centroid.
            let mut sums = vec![0.0f32; k * dim];
            let mut counts = vec![0u32; k];
            for (i, &c) in assignments.iter().enumerate() {
                let sum = &mut sums[c as usize * dim..(c as usize + 1) * dim];
                for (s, &x) in sum.iter_mut().zip(arena.row(i)) {
                    *s += x;
                }
                counts[c as usize] += 1;
            }
            for c in 0..k {
                if counts[c] == 0 {
                    continue;
                }
                let inv = 1.0 / counts[c] as f32;
                let centroid = &mut centroids[c * dim..(c + 1) * dim];
                for (dst, &s) in centroid.iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
                    *dst = s * inv;
                }
            }
            centroid_norms = centroids.chunks(dim).map(ioembed::norm).collect();
        }

        rebalance(
            arena,
            &mut centroids,
            &mut centroid_norms,
            &mut assignments,
            seed_mix,
        );

        let (offsets, perm, inv) = layout(&assignments, k);
        IvfIndex {
            dim,
            nprobe: nprobe.clamp(1, k),
            centroids,
            centroid_norms,
            assignments,
            offsets,
            perm,
            inv,
        }
    }

    /// Reassemble an IVF index from serialized parts (e.g. an `iostore`
    /// snapshot) over the arena the assignments describe. Centroids and
    /// assignments are taken as-is — nothing is re-clustered or
    /// re-balanced — so loaded probe behaviour is byte-identical to the
    /// index that was saved; only the derived cluster-major permutation is
    /// rebuilt (a pure function of the assignments).
    ///
    /// `arena` is read in **external** order, like [`IvfIndex::build`].
    pub fn from_parts(
        arena: &VectorArena,
        nprobe: usize,
        centroids: Vec<f32>,
        assignments: Vec<u32>,
    ) -> Result<Self, String> {
        let dim = arena.dim();
        if dim == 0 || !centroids.len().is_multiple_of(dim) || centroids.is_empty() {
            return Err(format!(
                "centroid matrix of {} lanes is not a non-empty multiple of dim {dim}",
                centroids.len()
            ));
        }
        if assignments.len() != arena.len() {
            return Err(format!(
                "{} assignments for {} arena rows",
                assignments.len(),
                arena.len()
            ));
        }
        let k = centroids.len() / dim;
        if let Some(&bad) = assignments.iter().find(|&&c| c as usize >= k) {
            return Err(format!("assignment to cluster {bad} but only {k} clusters"));
        }
        let centroid_norms = centroids.chunks(dim).map(ioembed::norm).collect();
        let (offsets, perm, inv) = layout(&assignments, k);
        Ok(IvfIndex {
            dim,
            nprobe: nprobe.clamp(1, k),
            centroids,
            centroid_norms,
            assignments,
            offsets,
            perm,
            inv,
        })
    }

    /// Number of coarse clusters.
    pub fn clusters(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Default probe width (clusters scored per search).
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Change the default probe width (clamped to `1..=clusters`).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.clamp(1, self.clusters());
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// External row → cluster assignment table (one entry per arena row).
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// The flat `clusters × dim` centroid matrix.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// The cluster-major permutation: internal position → external row id.
    /// The owning index's arena row `p` holds external row `perm()[p]`'s
    /// vector once reordered.
    pub fn perm(&self) -> &[u32] {
        &self.perm
    }

    /// Internal (cluster-major) position of external row `row`.
    #[inline]
    pub fn internal_of(&self, row: usize) -> usize {
        self.inv[row] as usize
    }

    /// External row id at internal (cluster-major) position `p`.
    #[inline]
    pub fn external_of(&self, p: usize) -> usize {
        self.perm[p] as usize
    }

    /// The contiguous internal-position range cluster `c` occupies in a
    /// cluster-major arena.
    #[inline]
    pub fn cluster_range(&self, c: usize) -> Range<usize> {
        self.offsets[c] as usize..self.offsets[c + 1] as usize
    }

    /// Member rows of cluster `c` as external ids, ascending (a view into
    /// the permutation — no per-cluster list is stored).
    pub fn list(&self, c: usize) -> &[u32] {
        &self.perm[self.cluster_range(c)]
    }

    /// Score every row of cluster `c` against the query, offering each
    /// `(score, external row)` to `top`.
    ///
    /// `arena` must be the **cluster-major** arena (the owning index's
    /// arena after [`VectorArena::permuted`] by [`IvfIndex::perm`]): the
    /// cluster is one contiguous range, streamed eight rows at a time
    /// through [`VectorArena::dot_block_at`] — the same shared fold as the
    /// flat scan's packed kernel, eight independent accumulator chains,
    /// each a strict left-to-right f32 fold from `-0.0` — with the
    /// `len % 8` tail through [`ioembed::dot`]. Every score is therefore
    /// bit-identical to the flat scan's for the same row, and hits carry
    /// external ids, which is what makes `nprobe = clusters` byte-identical
    /// to [`crate::reference`].
    pub fn scan_cluster(
        &self,
        arena: &VectorArena,
        qv: &[f32],
        qnorm: f32,
        c: usize,
        top: &mut TopK,
    ) {
        const B: usize = VectorArena::DOT_BLOCK;
        let range = self.cluster_range(c);
        let qv = &qv[..self.dim];
        let full = range.len() - range.len() % B;
        let mut acc = [0.0f32; B];
        let mut p = range.start;
        while p < range.start + full {
            arena.dot_block_at(qv, p, &mut acc);
            for (j, &dot) in acc.iter().enumerate() {
                let row = p + j;
                top.push(
                    ioembed::cosine_with_norms(dot, qnorm, arena.norm(row)),
                    self.perm[row] as usize,
                );
            }
            p += B;
        }
        for row in p..range.end {
            let score = ioembed::cosine_with_norms(
                ioembed::dot(qv, arena.row(row)),
                qnorm,
                arena.norm(row),
            );
            top.push(score, self.perm[row] as usize);
        }
    }

    /// The `nprobe` clusters most similar to the query, best first
    /// (cosine descending under `total_cmp`, cluster index ascending on
    /// ties — the same total order every search path uses).
    pub fn probe(&self, qv: &[f32], qnorm: f32, nprobe: usize) -> Vec<u32> {
        assert_eq!(qv.len(), self.dim, "query dimension mismatch");
        let mut top = TopK::new(nprobe.clamp(1, self.clusters()));
        for (c, centroid) in self.centroids.chunks(self.dim).enumerate() {
            let score = ioembed::cosine_with_norms(
                ioembed::dot(qv, centroid),
                qnorm,
                self.centroid_norms[c],
            );
            top.push(score, c);
        }
        top.into_sorted_hits()
            .into_iter()
            .map(|h| h.entry_idx as u32)
            .collect()
    }
}

/// Most-similar centroid for one row (ties to the lower cluster index).
fn nearest_centroid(
    row: &[f32],
    row_norm: f32,
    centroids: &[f32],
    centroid_norms: &[f32],
    dim: usize,
) -> u32 {
    let mut best = 0u32;
    let mut best_score = f32::NEG_INFINITY;
    for (c, centroid) in centroids.chunks(dim).enumerate() {
        let score =
            ioembed::cosine_with_norms(ioembed::dot(row, centroid), row_norm, centroid_norms[c]);
        // Strict `>` keeps the first (lowest-index) centroid on ties.
        if score > best_score {
            best_score = score;
            best = c as u32;
        }
    }
    best
}

/// Bounded post-Lloyd balance passes (see the module docs): while the
/// largest cluster exceeds `2 × ⌈n/k⌉` rows or the smallest is starved
/// below `⌈n/k⌉ / 8`, dissolve the smallest (reassigning its rows to
/// their nearest surviving centroid) and split the largest by a seeded
/// 2-means over its members into the two freed slots. `k` never changes,
/// every fold is sequential in ascending row order, and the 2-means seed
/// mixes the pass number and donor slot, so the outcome is fully
/// deterministic.
fn rebalance(
    arena: &VectorArena,
    centroids: &mut [f32],
    centroid_norms: &mut [f32],
    assignments: &mut [u32],
    seed_mix: u64,
) {
    let dim = arena.dim();
    let k = centroid_norms.len();
    let n = assignments.len();
    if k < 2 || n == 0 {
        return;
    }
    let target = n.div_ceil(k);
    for pass in 0..REBALANCE_MAX_PASSES {
        let mut counts = vec![0u32; k];
        for &c in assignments.iter() {
            counts[c as usize] += 1;
        }
        let (mut max_c, mut min_c) = (0usize, 0usize);
        for c in 1..k {
            // Strict comparisons keep the lowest index on ties.
            if counts[c] > counts[max_c] {
                max_c = c;
            }
            if counts[c] < counts[min_c] {
                min_c = c;
            }
        }
        let oversized = counts[max_c] as usize > 2 * target;
        let starved = (counts[min_c] as usize) * 8 < target;
        if max_c == min_c || counts[max_c] < 2 || !(oversized || starved) {
            return;
        }

        // Donor members (ascending external rows) and the dissolved
        // cluster's orphans, captured before any slot is rewritten.
        let donors: Vec<u32> = members_of(assignments, max_c);
        let orphans: Vec<u32> = members_of(assignments, min_c);

        // Seeded 2-means split of the donor into the two freed slots.
        let mut rng = ChaCha8Rng::seed_from_u64(
            KMEANS_SEED
                ^ seed_mix
                ^ (((pass as u64) << 32) | max_c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let m = donors.len();
        let ia = (rng.next_u64() as usize) % m;
        let mut ib = (rng.next_u64() as usize) % (m - 1);
        if ib >= ia {
            ib += 1;
        }
        let mut ca: Vec<f32> = arena.row(donors[ia] as usize).to_vec();
        let mut cb: Vec<f32> = arena.row(donors[ib] as usize).to_vec();
        // `false` → side a → the lower freed slot; ties stay on side a, so
        // ties still land in the lower slot index.
        let mut side = vec![false; m];
        for _ in 0..2 {
            let na = ioembed::norm(&ca);
            let nb = ioembed::norm(&cb);
            for (s, &row) in side.iter_mut().zip(&donors) {
                let r = arena.row(row as usize);
                let rn = arena.norm(row as usize);
                let sa = ioembed::cosine_with_norms(ioembed::dot(r, &ca), rn, na);
                let sb = ioembed::cosine_with_norms(ioembed::dot(r, &cb), rn, nb);
                *s = sb > sa;
            }
            // Recompute each side's centroid as its member mean, folding
            // in ascending row order; a side that empties keeps its seed.
            for (flag, centroid) in [(false, &mut ca), (true, &mut cb)] {
                let mut sum = vec![0.0f32; dim];
                let mut cnt = 0u32;
                for (s, &row) in side.iter().zip(&donors) {
                    if *s == flag {
                        for (acc, &x) in sum.iter_mut().zip(arena.row(row as usize)) {
                            *acc += x;
                        }
                        cnt += 1;
                    }
                }
                if cnt > 0 {
                    let inv = 1.0 / cnt as f32;
                    for (dst, &s) in centroid.iter_mut().zip(&sum) {
                        *dst = s * inv;
                    }
                }
            }
        }
        if side.iter().all(|&s| s) || side.iter().all(|&s| !s) {
            // Degenerate split (all members on one side): stop rather
            // than manufacture an empty cluster.
            return;
        }
        let (slot_lo, slot_hi) = (max_c.min(min_c), max_c.max(min_c));
        centroids[slot_lo * dim..(slot_lo + 1) * dim].copy_from_slice(&ca);
        centroids[slot_hi * dim..(slot_hi + 1) * dim].copy_from_slice(&cb);
        centroid_norms[slot_lo] = ioembed::norm(&ca);
        centroid_norms[slot_hi] = ioembed::norm(&cb);
        for (&s, &row) in side.iter().zip(&donors) {
            assignments[row as usize] = if s { slot_hi as u32 } else { slot_lo as u32 };
        }
        // Reassign the dissolved cluster's rows to their nearest centroid
        // under the updated matrix (ascending row order).
        for &row in &orphans {
            assignments[row as usize] = nearest_centroid(
                arena.row(row as usize),
                arena.norm(row as usize),
                centroids,
                centroid_norms,
                dim,
            );
        }
    }
}

/// External rows assigned to cluster `c`, ascending.
fn members_of(assignments: &[u32], c: usize) -> Vec<u32> {
    assignments
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a as usize == c)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Derive the cluster-major layout from an assignment table: per-cluster
/// offsets (prefix sums), the internal→external permutation (rows placed
/// in ascending order within each cluster), and its inverse.
fn layout(assignments: &[u32], k: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let n = assignments.len();
    let mut offsets = vec![0u32; k + 1];
    for &c in assignments {
        offsets[c as usize + 1] += 1;
    }
    for c in 0..k {
        offsets[c + 1] += offsets[c];
    }
    let mut cursor: Vec<u32> = offsets[..k].to_vec();
    let mut perm = vec![0u32; n];
    let mut inv = vec![0u32; n];
    for (row, &c) in assignments.iter().enumerate() {
        let p = cursor[c as usize];
        perm[p as usize] = row as u32;
        inv[row] = p;
        cursor[c as usize] = p + 1;
    }
    (offsets, perm, inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_of(rows: &[Vec<f32>], dim: usize) -> VectorArena {
        let mut arena = VectorArena::new(dim);
        for r in rows {
            arena.push(r);
        }
        arena
    }

    fn synthetic_rows(n: usize, dim: usize) -> Vec<Vec<f32>> {
        // Three well-separated directions plus deterministic jitter, so
        // k-means has real structure to find.
        let mut state = 0x5eed_1234_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        (0..n)
            .map(|i| {
                let mut v = vec![0.0f32; dim];
                v[i % 3] = 1.0;
                for lane in v.iter_mut() {
                    *lane += 0.05 * next();
                }
                ioembed::l2_normalize(&mut v);
                v
            })
            .collect()
    }

    #[test]
    fn clustering_is_deterministic_across_builds() {
        let rows = synthetic_rows(64, 8);
        let arena = arena_of(&rows, 8);
        let a = IvfIndex::build(&arena, 4, 2);
        let b = IvfIndex::build(&arena, 4, 2);
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.perm(), b.perm());
        let bits_a: Vec<u32> = a.centroids().iter().map(|f| f.to_bits()).collect();
        let bits_b: Vec<u32> = b.centroids().iter().map(|f| f.to_bits()).collect();
        assert_eq!(bits_a, bits_b);
    }

    #[test]
    fn lists_partition_all_rows() {
        let rows = synthetic_rows(50, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 5, 2);
        let mut seen: Vec<u32> = (0..ivf.clusters())
            .flat_map(|c| ivf.list(c).to_vec())
            .collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(seen, expect, "every row in exactly one list");
        for c in 0..ivf.clusters() {
            assert!(
                ivf.list(c).windows(2).all(|w| w[0] < w[1]),
                "list {c} not ascending"
            );
        }
    }

    /// The permutation and its inverse must agree with the cluster ranges:
    /// internal position p holds external row perm[p], assigned to the
    /// cluster whose range contains p.
    #[test]
    fn permutation_is_consistent_with_assignments() {
        let rows = synthetic_rows(53, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 4, 2);
        for c in 0..ivf.clusters() {
            for p in ivf.cluster_range(c) {
                let row = ivf.external_of(p);
                assert_eq!(ivf.assignments()[row], c as u32, "position {p}");
                assert_eq!(ivf.internal_of(row), p, "inverse broken at row {row}");
            }
        }
        assert_eq!(ivf.perm().len(), 53);
    }

    #[test]
    fn separated_directions_land_in_distinct_clusters() {
        let rows = synthetic_rows(60, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 3, 1);
        // Rows sharing a dominant axis must share a cluster.
        for axis in 0..3 {
            let clusters: Vec<u32> = (0..60)
                .filter(|i| i % 3 == axis)
                .map(|i| ivf.assignments()[i])
                .collect();
            assert!(
                clusters.windows(2).all(|w| w[0] == w[1]),
                "axis {axis} split across clusters: {clusters:?}"
            );
        }
    }

    #[test]
    fn probe_ranks_own_centroid_first() {
        let rows = synthetic_rows(60, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 3, 1);
        for i in [0usize, 1, 2, 30, 31, 32] {
            let qv = arena.row(i);
            let probed = ivf.probe(qv, arena.norm(i), 1);
            assert_eq!(probed, vec![ivf.assignments()[i]], "row {i}");
        }
    }

    #[test]
    fn probe_with_all_clusters_returns_every_cluster() {
        let rows = synthetic_rows(30, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 4, 1);
        let mut probed = ivf.probe(arena.row(0), arena.norm(0), ivf.clusters());
        probed.sort_unstable();
        let expect: Vec<u32> = (0..ivf.clusters() as u32).collect();
        assert_eq!(probed, expect);
    }

    #[test]
    fn from_parts_round_trips() {
        let rows = synthetic_rows(40, 8);
        let arena = arena_of(&rows, 8);
        let built = IvfIndex::build(&arena, 4, 2);
        let rebuilt = IvfIndex::from_parts(
            &arena,
            built.nprobe(),
            built.centroids().to_vec(),
            built.assignments().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.clusters(), built.clusters());
        assert_eq!(rebuilt.assignments(), built.assignments());
        assert_eq!(rebuilt.perm(), built.perm());
        for c in 0..built.clusters() {
            assert_eq!(rebuilt.list(c), built.list(c));
        }
        let a = built.probe(arena.row(7), arena.norm(7), 2);
        let b = rebuilt.probe(arena.row(7), arena.norm(7), 2);
        assert_eq!(a, b, "loaded probe order must match the built one");
    }

    #[test]
    fn from_parts_rejects_malformed_input() {
        let rows = synthetic_rows(3, 8);
        let arena = arena_of(&rows, 8);
        assert!(
            IvfIndex::from_parts(&arena, 1, vec![0.0; 12], vec![0; 3]).is_err(),
            "ragged centroids"
        );
        assert!(
            IvfIndex::from_parts(&arena, 1, vec![], vec![0; 3]).is_err(),
            "no centroids"
        );
        assert!(
            IvfIndex::from_parts(&arena, 1, vec![0.0; 16], vec![0, 1, 2]).is_err(),
            "assignment beyond cluster count"
        );
        assert!(
            IvfIndex::from_parts(&arena, 1, vec![0.0; 16], vec![0, 1]).is_err(),
            "assignment table shorter than the arena"
        );
    }

    /// The contiguous cluster-major scan must be bit-identical to scoring
    /// each cluster row with the one-row kernel from the external-order
    /// arena — including clusters whose size is not a multiple of 8.
    #[test]
    fn scan_cluster_matches_per_row_kernel_bit_for_bit() {
        use crate::topk::TopK;
        let rows = synthetic_rows(59, 8); // odd count ⇒ ragged cluster tails
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 3, 1);
        let cm = arena.permuted(ivf.perm(), false); // cluster-major, no packed copy
        let qv = arena.row(5).to_vec();
        let qnorm = arena.norm(5);
        for c in 0..ivf.clusters() {
            let mut fast = TopK::new(100);
            ivf.scan_cluster(&cm, &qv, qnorm, c, &mut fast);
            let mut slow = TopK::new(100);
            for &row in ivf.list(c) {
                let i = row as usize;
                slow.push(
                    ioembed::cosine_with_norms(
                        ioembed::dot(&qv, arena.row(i)),
                        qnorm,
                        arena.norm(i),
                    ),
                    i,
                );
            }
            let a: Vec<(u32, usize)> = fast
                .into_sorted_hits()
                .iter()
                .map(|h| (h.score.to_bits(), h.entry_idx))
                .collect();
            let b: Vec<(u32, usize)> = slow
                .into_sorted_hits()
                .iter()
                .map(|h| (h.score.to_bits(), h.entry_idx))
                .collect();
            assert_eq!(a, b, "cluster {c} diverged");
        }
    }

    /// Balance passes must pull a pathologically skewed clustering toward
    /// the target size: no cluster above 2×⌈n/k⌉ + the split can't always
    /// reach perfection, so assert a real bound *and* that the partition
    /// invariants survived.
    #[test]
    fn rebalance_bounds_cluster_sizes_on_skewed_data() {
        // One dominant direction (most rows) plus two rare ones: Lloyd
        // alone leaves one giant cluster.
        let dim = 8;
        let mut state = 0xabcd_ef01_2345_6789u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        let rows: Vec<Vec<f32>> = (0..240)
            .map(|i| {
                let mut v = vec![0.0f32; dim];
                // 90% of rows share axis 0; jitter gives the split
                // something to separate.
                v[if i % 10 < 9 { 0 } else { 1 + i % 2 }] = 1.0;
                for lane in v.iter_mut() {
                    *lane += 0.2 * next();
                }
                ioembed::l2_normalize(&mut v);
                v
            })
            .collect();
        let arena = arena_of(&rows, dim);
        let k = 8;
        let ivf = IvfIndex::build(&arena, k, 2);
        let target = 240usize.div_ceil(k);
        let sizes: Vec<usize> = (0..ivf.clusters()).map(|c| ivf.list(c).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 240, "partition lost rows");
        let max = *sizes.iter().max().unwrap();
        assert!(
            max <= 2 * target + target / 2,
            "largest cluster {max} rows vs target {target}: {sizes:?}"
        );
        // Determinism of the balanced result.
        let again = IvfIndex::build(&arena, k, 2);
        assert_eq!(ivf.assignments(), again.assignments());
    }

    #[test]
    fn cluster_count_clamps_to_row_count() {
        let rows = synthetic_rows(3, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 64, 16);
        assert_eq!(ivf.clusters(), 3);
        assert_eq!(ivf.nprobe(), 3);
    }

    #[test]
    fn empty_arena_builds_a_single_empty_cluster() {
        let arena = VectorArena::new(8);
        let ivf = IvfIndex::build(&arena, 8, 2);
        assert_eq!(ivf.clusters(), 1);
        assert!(ivf.list(0).is_empty());
        assert!(ivf.assignments().is_empty());
    }
}
