//! Inverted-file (IVF) coarse quantizer over the [`VectorArena`].
//!
//! A full-scan search touches every row — O(n·d) per query no matter how
//! large the corpus grows. The standard route to sub-linear scan cost in
//! vector retrieval is an inverted file: cluster the rows around `k`
//! coarse centroids once, keep one row list per cluster, and at query time
//! score only the rows of the `nprobe` clusters whose centroids are most
//! similar to the query.
//!
//! # Determinism
//!
//! Clustering is k-means (Lloyd's algorithm) with:
//!
//! - seeded initialisation: a partial Fisher–Yates shuffle driven by the
//!   workspace's deterministic `rand_chacha` shim picks `k` distinct seed
//!   rows, so the same arena always clusters identically on every machine;
//! - fixed-order float arithmetic: assignments are computed row-by-row
//!   (the parallel map preserves input order) and centroid means are folded
//!   in ascending row order, so no thread count or scheduling can change a
//!   single bit of the result;
//! - total-order tie-breaking: a row equidistant from two centroids joins
//!   the lower-numbered one.
//!
//! # Exactness contract
//!
//! Rows scored through a probe are scored with the **same** norm-cached
//! cosine kernel as the flat scan, and the bounded top-k heap keeps the
//! same set regardless of the order rows are offered (its comparison is a
//! total order over `(score, row)` with unique rows). Probing therefore
//! never changes a kept hit's score — it only restricts *which* rows are
//! scored. With `nprobe = clusters` every list is visited, so the result
//! is byte-identical to the flat scan and to [`crate::reference::search`]
//! (pinned by `tests/ivf_equivalence.rs`); smaller `nprobe` trades recall
//! for scan cost, measured by `benches/batch.rs`.

use crate::arena::VectorArena;
use crate::topk::TopK;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Lloyd iterations run by [`IvfIndex::build`] (it stops early once an
/// iteration changes no assignment).
pub const KMEANS_ITERATIONS: usize = 8;

/// Seed for the deterministic centroid initialisation.
pub const KMEANS_SEED: u64 = 0x4956_465f_5345_4544; // "IVF_SEED"

/// Coarse clustering of an arena's rows: centroids plus per-cluster row
/// lists, and the default probe width searches use.
///
/// Each cluster also carries a **sharded packed copy** of its member
/// vectors — the same lane-interleaved complete-8-row-block layout as
/// [`VectorArena`]'s scoring copy, but in cluster-list order — so a
/// probed cluster is scanned with the 8-lane vertical kernel instead of
/// one latency-bound serial dot per scattered row (a single bit-faithful
/// dot is a chain of dependent f32 adds; eight independent chains
/// pipeline). The packing is derived data: rebuilt from the arena on
/// load, never serialized.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    nprobe: usize,
    /// `clusters × dim` row-major centroid matrix.
    centroids: Vec<f32>,
    /// Cached Euclidean norm per centroid.
    centroid_norms: Vec<f32>,
    /// Row → cluster id.
    assignments: Vec<u32>,
    /// Cluster → member rows, ascending.
    lists: Vec<Vec<u32>>,
    /// Cluster → lane-interleaved copy of its complete 8-row blocks
    /// (list order; the `len % 8` tail rows are scored via the one-row
    /// kernel straight from the arena).
    packed: Vec<Vec<f32>>,
}

impl IvfIndex {
    /// Cluster `arena`'s rows around `clusters` centroids (clamped to the
    /// row count) with `nprobe` as the default probe width.
    pub fn build(arena: &VectorArena, clusters: usize, nprobe: usize) -> Self {
        let n = arena.len();
        let dim = arena.dim();
        let k = clusters.clamp(1, n.max(1));

        // Seeded distinct-row initialisation: partial Fisher–Yates over
        // the row indices. Mixing the row count into the seed keeps two
        // different corpora from sharing an initialisation by accident
        // while staying fully deterministic for any given corpus.
        let mut rng = ChaCha8Rng::seed_from_u64(KMEANS_SEED ^ (n as u64).rotate_left(17));
        let mut order: Vec<usize> = (0..n).collect();
        for i in 0..k.min(n) {
            let j = i + (rng.next_u64() as usize) % (n - i);
            order.swap(i, j);
        }
        let mut centroids = vec![0.0f32; k * dim];
        for (c, &row) in order[..k.min(n)].iter().enumerate() {
            centroids[c * dim..(c + 1) * dim].copy_from_slice(arena.row(row));
        }
        let mut centroid_norms: Vec<f32> = centroids.chunks(dim).map(ioembed::norm).collect();

        let mut assignments: Vec<u32> = vec![0; n];
        for _ in 0..KMEANS_ITERATIONS {
            // Assign each row to its most-similar centroid. Rows are
            // independent, so the parallel map is order-stable and the
            // result is identical at any thread width.
            let next: Vec<u32> = (0..n)
                .into_par_iter()
                .map(|i| {
                    nearest_centroid(
                        arena.row(i),
                        arena.norm(i),
                        &centroids,
                        &centroid_norms,
                        dim,
                    )
                })
                .collect();
            let converged = next == assignments;
            assignments = next;
            if converged {
                break;
            }
            // Recompute centroids as member means, folding rows in
            // ascending order (fixed float-op sequence). An emptied
            // cluster keeps its previous centroid.
            let mut sums = vec![0.0f32; k * dim];
            let mut counts = vec![0u32; k];
            for (i, &c) in assignments.iter().enumerate() {
                let sum = &mut sums[c as usize * dim..(c as usize + 1) * dim];
                for (s, &x) in sum.iter_mut().zip(arena.row(i)) {
                    *s += x;
                }
                counts[c as usize] += 1;
            }
            for c in 0..k {
                if counts[c] == 0 {
                    continue;
                }
                let inv = 1.0 / counts[c] as f32;
                let centroid = &mut centroids[c * dim..(c + 1) * dim];
                for (dst, &s) in centroid.iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
                    *dst = s * inv;
                }
            }
            centroid_norms = centroids.chunks(dim).map(ioembed::norm).collect();
        }

        let lists = lists_from_assignments(&assignments, k);
        let packed = pack_lists(arena, &lists);
        IvfIndex {
            dim,
            nprobe: nprobe.clamp(1, k),
            centroids,
            centroid_norms,
            assignments,
            lists,
            packed,
        }
    }

    /// Reassemble an IVF index from serialized parts (e.g. an `iostore`
    /// v2 snapshot) over the arena the assignments describe. Centroids
    /// and assignments are taken as-is — nothing is re-clustered — so
    /// loaded probe behaviour is byte-identical to the index that was
    /// saved; only the derived per-cluster packing is rebuilt.
    pub fn from_parts(
        arena: &VectorArena,
        nprobe: usize,
        centroids: Vec<f32>,
        assignments: Vec<u32>,
    ) -> Result<Self, String> {
        let dim = arena.dim();
        if dim == 0 || !centroids.len().is_multiple_of(dim) || centroids.is_empty() {
            return Err(format!(
                "centroid matrix of {} lanes is not a non-empty multiple of dim {dim}",
                centroids.len()
            ));
        }
        if assignments.len() != arena.len() {
            return Err(format!(
                "{} assignments for {} arena rows",
                assignments.len(),
                arena.len()
            ));
        }
        let k = centroids.len() / dim;
        if let Some(&bad) = assignments.iter().find(|&&c| c as usize >= k) {
            return Err(format!("assignment to cluster {bad} but only {k} clusters"));
        }
        let centroid_norms = centroids.chunks(dim).map(ioembed::norm).collect();
        let lists = lists_from_assignments(&assignments, k);
        let packed = pack_lists(arena, &lists);
        Ok(IvfIndex {
            dim,
            nprobe: nprobe.clamp(1, k),
            centroids,
            centroid_norms,
            assignments,
            lists,
            packed,
        })
    }

    /// Number of coarse clusters.
    pub fn clusters(&self) -> usize {
        self.lists.len()
    }

    /// Default probe width (clusters scored per search).
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Change the default probe width (clamped to `1..=clusters`).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.clamp(1, self.clusters());
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row → cluster assignment table (one entry per arena row).
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// The flat `clusters × dim` centroid matrix.
    pub fn centroids(&self) -> &[f32] {
        &self.centroids
    }

    /// Member rows of cluster `c`, ascending.
    pub fn list(&self, c: usize) -> &[u32] {
        &self.lists[c]
    }

    /// Score every row of cluster `c` against the query, offering each
    /// `(score, row)` to `top`.
    ///
    /// Complete 8-row blocks of the cluster's packed copy go through the
    /// same vertical 8-lane fold as [`VectorArena::dot_block`] — eight
    /// independent accumulator chains, each a strict left-to-right f32
    /// fold from `-0.0` — and the `len % 8` tail rows through
    /// [`ioembed::dot`] straight from the arena. Every score is therefore
    /// bit-identical to the flat scan's for the same row, which is what
    /// makes `nprobe = clusters` byte-identical to [`crate::reference`].
    pub fn scan_cluster(
        &self,
        arena: &VectorArena,
        qv: &[f32],
        qnorm: f32,
        c: usize,
        top: &mut TopK,
    ) {
        const B: usize = VectorArena::DOT_BLOCK;
        let rows = &self.lists[c];
        let full = rows.len() - rows.len() % B;
        let qv = &qv[..self.dim];
        let mut acc = [0.0f32; B];
        for (b, block) in self.packed[c].chunks_exact(self.dim * B).enumerate() {
            crate::arena::fold_packed_block(block, qv, &mut acc);
            for (j, &dot) in acc.iter().enumerate() {
                let i = rows[b * B + j] as usize;
                top.push(ioembed::cosine_with_norms(dot, qnorm, arena.norm(i)), i);
            }
        }
        for &row in &rows[full..] {
            let i = row as usize;
            let score =
                ioembed::cosine_with_norms(ioembed::dot(qv, arena.row(i)), qnorm, arena.norm(i));
            top.push(score, i);
        }
    }

    /// The `nprobe` clusters most similar to the query, best first
    /// (cosine descending under `total_cmp`, cluster index ascending on
    /// ties — the same total order every search path uses).
    pub fn probe(&self, qv: &[f32], qnorm: f32, nprobe: usize) -> Vec<u32> {
        assert_eq!(qv.len(), self.dim, "query dimension mismatch");
        let mut top = TopK::new(nprobe.clamp(1, self.clusters()));
        for (c, centroid) in self.centroids.chunks(self.dim).enumerate() {
            let score = ioembed::cosine_with_norms(
                ioembed::dot(qv, centroid),
                qnorm,
                self.centroid_norms[c],
            );
            top.push(score, c);
        }
        top.into_sorted_hits()
            .into_iter()
            .map(|h| h.entry_idx as u32)
            .collect()
    }
}

/// Most-similar centroid for one row (ties to the lower cluster index).
fn nearest_centroid(
    row: &[f32],
    row_norm: f32,
    centroids: &[f32],
    centroid_norms: &[f32],
    dim: usize,
) -> u32 {
    let mut best = 0u32;
    let mut best_score = f32::NEG_INFINITY;
    for (c, centroid) in centroids.chunks(dim).enumerate() {
        let score =
            ioembed::cosine_with_norms(ioembed::dot(row, centroid), row_norm, centroid_norms[c]);
        // Strict `>` keeps the first (lowest-index) centroid on ties.
        if score > best_score {
            best_score = score;
            best = c as u32;
        }
    }
    best
}

fn lists_from_assignments(assignments: &[u32], k: usize) -> Vec<Vec<u32>> {
    let mut lists = vec![Vec::new(); k];
    for (i, &c) in assignments.iter().enumerate() {
        lists[c as usize].push(i as u32);
    }
    lists
}

/// Lane-interleave each cluster's complete 8-row blocks (list order):
/// block `b`, lane `d`, row-in-block `j` lives at
/// `((b * dim) + d) * 8 + j`, mirroring [`VectorArena`]'s packed layout.
fn pack_lists(arena: &VectorArena, lists: &[Vec<u32>]) -> Vec<Vec<f32>> {
    const B: usize = VectorArena::DOT_BLOCK;
    let dim = arena.dim();
    lists
        .iter()
        .map(|rows| {
            let full = rows.len() - rows.len() % B;
            let mut packed = Vec::with_capacity(full * dim);
            for block in rows[..full].chunks_exact(B) {
                for d in 0..dim {
                    for &row in block {
                        packed.push(arena.row(row as usize)[d]);
                    }
                }
            }
            packed
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_of(rows: &[Vec<f32>], dim: usize) -> VectorArena {
        let mut arena = VectorArena::new(dim);
        for r in rows {
            arena.push(r);
        }
        arena
    }

    fn synthetic_rows(n: usize, dim: usize) -> Vec<Vec<f32>> {
        // Three well-separated directions plus deterministic jitter, so
        // k-means has real structure to find.
        let mut state = 0x5eed_1234_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        (0..n)
            .map(|i| {
                let mut v = vec![0.0f32; dim];
                v[i % 3] = 1.0;
                for lane in v.iter_mut() {
                    *lane += 0.05 * next();
                }
                ioembed::l2_normalize(&mut v);
                v
            })
            .collect()
    }

    #[test]
    fn clustering_is_deterministic_across_builds() {
        let rows = synthetic_rows(64, 8);
        let arena = arena_of(&rows, 8);
        let a = IvfIndex::build(&arena, 4, 2);
        let b = IvfIndex::build(&arena, 4, 2);
        assert_eq!(a.assignments(), b.assignments());
        let bits_a: Vec<u32> = a.centroids().iter().map(|f| f.to_bits()).collect();
        let bits_b: Vec<u32> = b.centroids().iter().map(|f| f.to_bits()).collect();
        assert_eq!(bits_a, bits_b);
    }

    #[test]
    fn lists_partition_all_rows() {
        let rows = synthetic_rows(50, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 5, 2);
        let mut seen: Vec<u32> = (0..ivf.clusters())
            .flat_map(|c| ivf.list(c).to_vec())
            .collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(seen, expect, "every row in exactly one list");
        for c in 0..ivf.clusters() {
            assert!(
                ivf.list(c).windows(2).all(|w| w[0] < w[1]),
                "list {c} not ascending"
            );
        }
    }

    #[test]
    fn separated_directions_land_in_distinct_clusters() {
        let rows = synthetic_rows(60, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 3, 1);
        // Rows sharing a dominant axis must share a cluster.
        for axis in 0..3 {
            let clusters: Vec<u32> = (0..60)
                .filter(|i| i % 3 == axis)
                .map(|i| ivf.assignments()[i])
                .collect();
            assert!(
                clusters.windows(2).all(|w| w[0] == w[1]),
                "axis {axis} split across clusters: {clusters:?}"
            );
        }
    }

    #[test]
    fn probe_ranks_own_centroid_first() {
        let rows = synthetic_rows(60, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 3, 1);
        for i in [0usize, 1, 2, 30, 31, 32] {
            let qv = arena.row(i);
            let probed = ivf.probe(qv, arena.norm(i), 1);
            assert_eq!(probed, vec![ivf.assignments()[i]], "row {i}");
        }
    }

    #[test]
    fn probe_with_all_clusters_returns_every_cluster() {
        let rows = synthetic_rows(30, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 4, 1);
        let mut probed = ivf.probe(arena.row(0), arena.norm(0), ivf.clusters());
        probed.sort_unstable();
        let expect: Vec<u32> = (0..ivf.clusters() as u32).collect();
        assert_eq!(probed, expect);
    }

    #[test]
    fn from_parts_round_trips() {
        let rows = synthetic_rows(40, 8);
        let arena = arena_of(&rows, 8);
        let built = IvfIndex::build(&arena, 4, 2);
        let rebuilt = IvfIndex::from_parts(
            &arena,
            built.nprobe(),
            built.centroids().to_vec(),
            built.assignments().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.clusters(), built.clusters());
        assert_eq!(rebuilt.assignments(), built.assignments());
        for c in 0..built.clusters() {
            assert_eq!(rebuilt.list(c), built.list(c));
        }
        let a = built.probe(arena.row(7), arena.norm(7), 2);
        let b = rebuilt.probe(arena.row(7), arena.norm(7), 2);
        assert_eq!(a, b, "loaded probe order must match the built one");
    }

    #[test]
    fn from_parts_rejects_malformed_input() {
        let rows = synthetic_rows(3, 8);
        let arena = arena_of(&rows, 8);
        assert!(
            IvfIndex::from_parts(&arena, 1, vec![0.0; 12], vec![0; 3]).is_err(),
            "ragged centroids"
        );
        assert!(
            IvfIndex::from_parts(&arena, 1, vec![], vec![0; 3]).is_err(),
            "no centroids"
        );
        assert!(
            IvfIndex::from_parts(&arena, 1, vec![0.0; 16], vec![0, 1, 2]).is_err(),
            "assignment beyond cluster count"
        );
        assert!(
            IvfIndex::from_parts(&arena, 1, vec![0.0; 16], vec![0, 1]).is_err(),
            "assignment table shorter than the arena"
        );
    }

    /// The sharded packed scan must be bit-identical to scoring each
    /// cluster row with the one-row kernel — including clusters whose
    /// size is not a multiple of 8 (tail path).
    #[test]
    fn scan_cluster_matches_per_row_kernel_bit_for_bit() {
        use crate::topk::TopK;
        let rows = synthetic_rows(59, 8); // odd count ⇒ ragged cluster tails
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 3, 1);
        let qv = arena.row(5).to_vec();
        let qnorm = arena.norm(5);
        for c in 0..ivf.clusters() {
            let mut fast = TopK::new(100);
            ivf.scan_cluster(&arena, &qv, qnorm, c, &mut fast);
            let mut slow = TopK::new(100);
            for &row in ivf.list(c) {
                let i = row as usize;
                slow.push(
                    ioembed::cosine_with_norms(
                        ioembed::dot(&qv, arena.row(i)),
                        qnorm,
                        arena.norm(i),
                    ),
                    i,
                );
            }
            let a: Vec<(u32, usize)> = fast
                .into_sorted_hits()
                .iter()
                .map(|h| (h.score.to_bits(), h.entry_idx))
                .collect();
            let b: Vec<(u32, usize)> = slow
                .into_sorted_hits()
                .iter()
                .map(|h| (h.score.to_bits(), h.entry_idx))
                .collect();
            assert_eq!(a, b, "cluster {c} diverged");
        }
    }

    #[test]
    fn cluster_count_clamps_to_row_count() {
        let rows = synthetic_rows(3, 8);
        let arena = arena_of(&rows, 8);
        let ivf = IvfIndex::build(&arena, 64, 16);
        assert_eq!(ivf.clusters(), 3);
        assert_eq!(ivf.nprobe(), 3);
    }

    #[test]
    fn empty_arena_builds_a_single_empty_cluster() {
        let arena = VectorArena::new(8);
        let ivf = IvfIndex::build(&arena, 8, 2);
        assert_eq!(ivf.clusters(), 1);
        assert!(ivf.list(0).is_empty());
        assert!(ivf.assignments().is_empty());
    }
}
