//! Deterministic lexical text embeddings.
//!
//! Stands in for the paper's `text-embedding-3-large`: a feature-hashing
//! embedding over word tokens and character trigrams, TF-weighted and
//! L2-normalised, under which lexically/semantically related HPC-I/O text
//! lands close in cosine space. Fully deterministic — no model weights, no
//! network — which keeps the whole RAG pipeline reproducible.

pub mod tokenize;
pub mod vector;

pub use tokenize::tokenize;
pub use vector::{cosine, l2_normalize, norm};

use serde::{Deserialize, Serialize};

/// Default embedding dimensionality.
pub const DEFAULT_DIM: usize = 256;

/// A deterministic text embedder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Embedder {
    /// Embedding dimensionality.
    pub dim: usize,
}

impl Default for Embedder {
    fn default() -> Self {
        Embedder { dim: DEFAULT_DIM }
    }
}

/// FNV-1a 64-bit hash (stable across runs and platforms).
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Embedder {
    /// Create an embedder with a custom dimensionality (≥ 8).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 8, "embedding dimension too small");
        Embedder { dim }
    }

    /// Embed a text into an L2-normalised vector.
    ///
    /// Each token contributes to two hashed slots with ±1 signs (feature
    /// hashing), as do its character trigrams (at 0.4 weight); counts are
    /// squashed with `ln(1+tf)`.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0f32; self.dim];
        let tokens = tokenize(text);
        // Term frequencies first, so weighting is ln(1+tf), not per-instance.
        let mut tf: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        for t in &tokens {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        for (tok, count) in tf {
            let w = (1.0 + count as f32).ln();
            self.bump(&mut v, tok.as_bytes(), 0, w);
            self.bump(&mut v, tok.as_bytes(), 1, w);
            let bytes = tok.as_bytes();
            if bytes.len() >= 3 {
                for tri in bytes.windows(3) {
                    self.bump(&mut v, tri, 2, w * 0.4);
                }
            }
        }
        l2_normalize(&mut v);
        v
    }

    fn bump(&self, v: &mut [f32], bytes: &[u8], seed: u64, weight: f32) {
        let h = fnv1a(bytes, seed);
        let slot = (h % self.dim as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[slot] += sign * weight;
    }

    /// Cosine similarity between two texts' embeddings.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_is_deterministic() {
        let e = Embedder::default();
        assert_eq!(
            e.embed("small write requests hurt Lustre"),
            e.embed("small write requests hurt Lustre")
        );
    }

    #[test]
    fn embedding_is_normalised() {
        let e = Embedder::default();
        let v = e.embed("collective MPI-IO aggregates small requests into large ones");
        assert!((norm(&v) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = Embedder::default();
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn related_text_scores_higher_than_unrelated() {
        let e = Embedder::default();
        let query = "most write operations are smaller than 1 MB causing poor bandwidth";
        let related =
            "small write requests below 1 MB degrade I/O bandwidth on parallel file systems";
        let unrelated = "the quantum chromodynamics lattice uses gauge field tensors";
        assert!(e.similarity(query, related) > e.similarity(query, unrelated) + 0.1);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let e = Embedder::default();
        let a = "stripe count of one serialises file access onto a single OST";
        let b = "increasing the Lustre stripe count spreads load across servers";
        let s1 = e.similarity(a, b);
        let s2 = e.similarity(b, a);
        assert!((s1 - s2).abs() < 1e-6);
        assert!((-1.0..=1.0).contains(&s1));
    }

    #[test]
    fn self_similarity_is_one() {
        let e = Embedder::default();
        let t = "metadata operations dominate runtime";
        assert!((e.similarity(t, t) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn custom_dim_respected() {
        let e = Embedder::new(64);
        assert_eq!(e.embed("hello world").len(), 64);
    }

    #[test]
    #[should_panic(expected = "dimension too small")]
    fn tiny_dim_panics() {
        Embedder::new(4);
    }
}
