//! Deterministic lexical text embeddings.
//!
//! Stands in for the paper's `text-embedding-3-large`: a feature-hashing
//! embedding over word tokens and character trigrams, TF-weighted and
//! L2-normalised, under which lexically/semantically related HPC-I/O text
//! lands close in cosine space. Fully deterministic — no model weights, no
//! network — which keeps the whole RAG pipeline reproducible.
//!
//! The hot path ([`Embedder::embed_into`]) performs **zero per-token heap
//! allocations**: tokens are lowercased into a reused thread-local scratch
//! buffer, term frequencies are counted by sorting the token spans in
//! place (no `HashMap`), and the caller supplies (and can reuse) the
//! output vector. Sorting also fixes a subtle seed-era bug: the original
//! implementation iterated a `std::collections::HashMap` whose order
//! varies per *instance*, so on texts long enough for several tokens to
//! hash into one slot the f32 accumulation order — and therefore the last
//! ulps of the embedding — changed from call to call. Distinct tokens are
//! now always folded in lexicographic order, making embeddings bit-stable
//! across calls, threads, and processes.

pub mod tokenize;
pub mod vector;

pub use tokenize::{token_count, token_slices, tokenize};
pub use vector::{cosine, cosine_with_norms, dot, dot_multi, l2_normalize, norm};

use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Default embedding dimensionality.
pub const DEFAULT_DIM: usize = 256;

/// A deterministic text embedder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Embedder {
    /// Embedding dimensionality.
    pub dim: usize,
}

impl Default for Embedder {
    fn default() -> Self {
        Embedder { dim: DEFAULT_DIM }
    }
}

/// FNV-1a 64-bit hash (stable across runs and platforms).
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Reused per-thread tokenisation state: the lowercased concatenation of
/// the input's tokens plus the (start, end) span of each token within it.
/// Living in a thread-local, the buffers are allocated once per thread and
/// amortise to zero allocations per embed.
#[derive(Default)]
struct EmbedScratch {
    lower: String,
    spans: Vec<(u32, u32)>,
}

thread_local! {
    static EMBED_SCRATCH: RefCell<EmbedScratch> = RefCell::new(EmbedScratch::default());
}

impl Embedder {
    /// Create an embedder with a custom dimensionality (≥ 8).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 8, "embedding dimension too small");
        Embedder { dim }
    }

    /// Embed a text into an L2-normalised vector.
    ///
    /// Each token contributes to two hashed slots with ±1 signs (feature
    /// hashing), as do its character trigrams (at 0.4 weight); counts are
    /// squashed with `ln(1+tf)`.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = Vec::new();
        self.embed_into(text, &mut v);
        v
    }

    /// [`Embedder::embed`] into a caller-owned buffer, the allocation-free
    /// hot path: `out` is cleared and refilled (its capacity is reused on
    /// repeat calls), and all intermediate state lives in reused
    /// thread-local scratch. `vecindex` drives every query embedding in
    /// `search` / `search_batch` through this.
    pub fn embed_into(&self, text: &str, out: &mut Vec<f32>) {
        assert!(
            text.len() <= u32::MAX as usize,
            "text too large to embed in one call"
        );
        out.clear();
        out.resize(self.dim, 0.0);
        EMBED_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.lower.clear();
            scratch.spans.clear();

            // Tokenise through the shared borrowed iterator (one token
            // definition for the whole crate), lowercasing each slice
            // into the scratch string and recording its span. Tokens are
            // ASCII-only, so per-byte lowercasing is UTF-8 safe.
            for tok in tokenize::token_slices(text) {
                let start = scratch.lower.len() as u32;
                for &b in tok.as_bytes() {
                    scratch.lower.push(b.to_ascii_lowercase() as char);
                }
                scratch.spans.push((start, scratch.lower.len() as u32));
            }

            // Term frequencies without a map: sort the spans by token
            // bytes (in place, no allocation) and fold runs of equal
            // tokens. Lexicographic order makes the f32 accumulation
            // order — and thus the embedding — bit-stable call to call.
            let lower = scratch.lower.as_bytes();
            let tok = |&(s, e): &(u32, u32)| &lower[s as usize..e as usize];
            scratch.spans.sort_unstable_by(|a, b| tok(a).cmp(tok(b)));

            let spans = &scratch.spans;
            let mut i = 0;
            while i < spans.len() {
                let bytes = tok(&spans[i]);
                let mut j = i + 1;
                while j < spans.len() && tok(&spans[j]) == bytes {
                    j += 1;
                }
                let w = (1.0 + (j - i) as f32).ln();
                self.bump(out, bytes, 0, w);
                self.bump(out, bytes, 1, w);
                if bytes.len() >= 3 {
                    for tri in bytes.windows(3) {
                        self.bump(out, tri, 2, w * 0.4);
                    }
                }
                i = j;
            }
        });
        l2_normalize(out);
    }

    fn bump(&self, v: &mut [f32], bytes: &[u8], seed: u64, weight: f32) {
        let h = fnv1a(bytes, seed);
        let slot = (h % self.dim as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[slot] += sign * weight;
    }

    /// Cosine similarity between two texts' embeddings.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_is_deterministic() {
        let e = Embedder::default();
        assert_eq!(
            e.embed("small write requests hurt Lustre"),
            e.embed("small write requests hurt Lustre")
        );
    }

    /// The regression the sorted tf-fold fixes: long texts (many slot
    /// collisions) must embed bit-identically on every call. The HashMap
    /// iteration of the original implementation failed this on effectively
    /// every call for 400-token texts.
    #[test]
    fn long_text_embedding_is_bit_stable_across_calls() {
        let e = Embedder::default();
        let mut text = String::new();
        for i in 0..400 {
            text.push_str(&format!("tok{i} stripe{i} write {i} "));
        }
        let a = e.embed(&text);
        for _ in 0..10 {
            let b = e.embed(&text);
            let bits_a: Vec<u32> = a.iter().map(|f| f.to_bits()).collect();
            let bits_b: Vec<u32> = b.iter().map(|f| f.to_bits()).collect();
            assert_eq!(bits_a, bits_b);
        }
    }

    #[test]
    fn embed_into_matches_embed_and_reuses_the_buffer() {
        let e = Embedder::default();
        let texts = [
            "collective MPI-IO aggregates small requests",
            "",
            "stripe count one serialises onto a single OST",
        ];
        let mut buf = Vec::new();
        for t in texts {
            e.embed_into(t, &mut buf);
            let fresh = e.embed(t);
            assert_eq!(buf.len(), e.dim);
            let bits_a: Vec<u32> = buf.iter().map(|f| f.to_bits()).collect();
            let bits_b: Vec<u32> = fresh.iter().map(|f| f.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "embed_into diverged on {t:?}");
        }
        // A dirty, over-sized buffer is fully overwritten.
        let mut dirty = vec![7.0f32; 1024];
        e.embed_into("metadata stat storm", &mut dirty);
        assert_eq!(dirty.len(), e.dim);
        assert_eq!(dirty, e.embed("metadata stat storm"));
    }

    #[test]
    fn embedding_is_normalised() {
        let e = Embedder::default();
        let v = e.embed("collective MPI-IO aggregates small requests into large ones");
        assert!((norm(&v) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = Embedder::default();
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.len(), e.dim);
    }

    #[test]
    fn related_text_scores_higher_than_unrelated() {
        let e = Embedder::default();
        let query = "most write operations are smaller than 1 MB causing poor bandwidth";
        let related =
            "small write requests below 1 MB degrade I/O bandwidth on parallel file systems";
        let unrelated = "the quantum chromodynamics lattice uses gauge field tensors";
        assert!(e.similarity(query, related) > e.similarity(query, unrelated) + 0.1);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let e = Embedder::default();
        let a = "stripe count of one serialises file access onto a single OST";
        let b = "increasing the Lustre stripe count spreads load across servers";
        let s1 = e.similarity(a, b);
        let s2 = e.similarity(b, a);
        assert!((s1 - s2).abs() < 1e-6);
        assert!((-1.0..=1.0).contains(&s1));
    }

    #[test]
    fn self_similarity_is_one() {
        let e = Embedder::default();
        let t = "metadata operations dominate runtime";
        assert!((e.similarity(t, t) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn custom_dim_respected() {
        let e = Embedder::new(64);
        assert_eq!(e.embed("hello world").len(), 64);
    }

    #[test]
    #[should_panic(expected = "dimension too small")]
    fn tiny_dim_panics() {
        Embedder::new(4);
    }

    /// Token case must not matter for tf grouping: "WRITE write Write"
    /// counts one token with tf 3, exactly as the old lowercase-then-count
    /// path did.
    #[test]
    fn tf_grouping_is_case_insensitive() {
        let e = Embedder::default();
        let a = e.embed("WRITE write Write");
        let b = e.embed("write write write");
        let bits_a: Vec<u32> = a.iter().map(|f| f.to_bits()).collect();
        let bits_b: Vec<u32> = b.iter().map(|f| f.to_bits()).collect();
        assert_eq!(bits_a, bits_b);
    }
}
