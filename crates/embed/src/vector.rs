//! Small dense-vector helpers.

/// Euclidean norm.
pub fn norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Normalise in place to unit length (no-op for the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// Cosine similarity; 0.0 when either vector is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0f32; 4];
        l2_normalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cosine_identical_is_one() {
        let v = [1.0f32, 2.0, 3.0];
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        assert!((cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_dim_mismatch_panics() {
        cosine(&[1.0], &[1.0, 2.0]);
    }
}
