//! Small dense-vector helpers.

/// Euclidean norm.
pub fn norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Normalise in place to unit length (no-op for the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let n = norm(v);
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

/// Dot product with a strict left-to-right summation order.
///
/// The loop is unrolled in fixed-width blocks so the multiplies pipeline
/// (the compiler can schedule/vectorise them), but every product is folded
/// into **one** accumulator in input order — the exact operation sequence
/// of `a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>()` — so the result
/// is bit-identical to the naive scan. That determinism is what lets the
/// retrieval engine cache norms and still pin byte-identical scores.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    const LANES: usize = 8;
    // `Iterator::sum::<f32>()` folds from -0.0 (its additive identity for
    // signed zeros); start there so even all-negative-zero inputs match.
    let mut acc = -0.0f32;
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let at = &a[c * LANES..c * LANES + LANES];
        let bt = &b[c * LANES..c * LANES + LANES];
        // Same adds, same order as the scalar loop — just unrolled so the
        // eight multiplies are independent instructions.
        acc += at[0] * bt[0];
        acc += at[1] * bt[1];
        acc += at[2] * bt[2];
        acc += at[3] * bt[3];
        acc += at[4] * bt[4];
        acc += at[5] * bt[5];
        acc += at[6] * bt[6];
        acc += at[7] * bt[7];
    }
    for i in chunks * LANES..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Block-dot kernel: dot products of many queries against **one** shared
/// vector, written to `out[i]` for `queries[i]`.
///
/// The shared vector is loaded from memory once and every query is scored
/// against it while it sits in L1 — the cache-blocking move that lets a
/// batch search stream each candidate row once per query *block* instead
/// of once per query. Each score is computed by the same [`dot`] kernel a
/// single-query scan uses, so `out[i]` is bit-identical to
/// `dot(queries[i], b)` by construction (pinned by a test below).
pub fn dot_multi(queries: &[&[f32]], b: &[f32], out: &mut [f32]) {
    assert_eq!(queries.len(), out.len(), "one output lane per query");
    for (o, q) in out.iter_mut().zip(queries) {
        *o = dot(q, b);
    }
}

/// Cosine similarity; 0.0 when either vector is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine_with_norms(dot(a, b), norm(a), norm(b))
}

/// Cosine from a precomputed dot product and the two precomputed norms —
/// the norm-cached form the retrieval engine scores with. Performs the
/// exact float operations of [`cosine`]'s final step (`dot / (na * nb)`
/// with the zero-vector guard), so feeding it cached norms is
/// bit-identical to recomputing them.
#[inline]
pub fn cosine_with_norms(dot: f32, na: f32, nb: f32) -> f32 {
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0f32; 4];
        l2_normalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cosine_identical_is_one() {
        let v = [1.0f32, 2.0, 3.0];
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        assert!((cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn cosine_dim_mismatch_panics() {
        cosine(&[1.0], &[1.0, 2.0]);
    }

    /// The unrolled kernel must be bit-identical to the sequential fold —
    /// including on lengths that exercise the remainder loop and on values
    /// where summation order changes the last ulp.
    #[test]
    fn dot_is_bit_identical_to_sequential_fold() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Mixed magnitudes so accumulation order matters at ulp level.
            (state as f64 / u64::MAX as f64) as f32 * if state & 1 == 0 { 1.0 } else { -1e-3 }
        };
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 64, 255, 256, 257] {
            let a: Vec<f32> = (0..len).map(|_| next()).collect();
            let b: Vec<f32> = (0..len).map(|_| next()).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot(&a, &b).to_bits(), naive.to_bits(), "len {len} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_dim_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    /// Every lane of the multi-query kernel must be bit-identical to the
    /// one-query kernel, including on ulp-sensitive mixed magnitudes.
    #[test]
    fn dot_multi_is_bit_identical_to_per_query_dots() {
        let mut state = 0x6a09e667f3bcc909u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) as f32 * if state & 1 == 0 { 1.0 } else { -1e-3 }
        };
        for len in [0usize, 1, 7, 8, 17, 256] {
            let b: Vec<f32> = (0..len).map(|_| next()).collect();
            let queries: Vec<Vec<f32>> =
                (0..5).map(|_| (0..len).map(|_| next()).collect()).collect();
            let refs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
            let mut out = vec![7.0f32; refs.len()];
            dot_multi(&refs, &b, &mut out);
            for (q, o) in queries.iter().zip(&out) {
                assert_eq!(o.to_bits(), dot(q, &b).to_bits(), "len {len} diverged");
            }
        }
        // Zero queries: nothing to write, nothing to read.
        dot_multi(&[], &[1.0, 2.0], &mut []);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_multi_dim_mismatch_panics() {
        dot_multi(&[&[1.0f32][..]], &[1.0, 2.0], &mut [0.0]);
    }

    #[test]
    fn cosine_with_norms_matches_cosine() {
        let a = [0.3f32, -0.4, 0.5, 0.1, 0.9, -0.2, 0.7, 0.6, 0.05];
        let b = [0.1f32, 0.8, -0.3, 0.2, -0.5, 0.4, 0.0, 0.9, -0.7];
        let full = cosine(&a, &b);
        let cached = cosine_with_norms(dot(&a, &b), norm(&a), norm(&b));
        assert_eq!(full.to_bits(), cached.to_bits());
        assert_eq!(cosine_with_norms(1.0, 0.0, 2.0), 0.0);
        assert_eq!(cosine_with_norms(1.0, 2.0, 0.0), 0.0);
    }
}
