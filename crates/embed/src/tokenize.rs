//! Word tokenisation shared by the embedder, chunker, and LLM simulator.

/// Lowercase word tokens: maximal runs of ASCII alphanumerics; everything
/// else is a separator. Numbers are kept (sizes like `47008` matter in this
/// domain).
pub fn tokenize(text: &str) -> Vec<String> {
    token_slices(text).map(|t| t.to_ascii_lowercase()).collect()
}

/// Borrowed tokens: `&str` slices of `text` covering each maximal run of
/// ASCII alphanumerics, in order, **without lowercasing** (and therefore
/// without allocating). [`tokenize`] is `token_slices(..).map(lowercase)`;
/// the embedder hot path lowercases into a reused scratch buffer instead.
pub fn token_slices(text: &str) -> TokenSlices<'_> {
    TokenSlices { text, pos: 0 }
}

/// Iterator returned by [`token_slices`].
#[derive(Debug, Clone)]
pub struct TokenSlices<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Iterator for TokenSlices<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let bytes = self.text.as_bytes();
        // Tokens are ASCII-only, so byte scanning is UTF-8 safe: every
        // non-ASCII byte is ≥ 0x80 and acts as a separator.
        while self.pos < bytes.len() && !bytes[self.pos].is_ascii_alphanumeric() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return None;
        }
        let start = self.pos;
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_alphanumeric() {
            self.pos += 1;
        }
        Some(&self.text[start..self.pos])
    }
}

/// Approximate token count of a text (whitespace/punctuation-delimited
/// words); the unit in which simulated context windows are measured.
///
/// A pure counting scan — no per-token `String`s, no `Vec` — over the
/// same borrowed iterator every other tokenisation consumer uses, so the
/// token definition lives in exactly one place. Always equals
/// `tokenize(text).len()` (pinned by tests here and a property test in
/// `tests/properties.rs`).
pub fn token_count(text: &str) -> usize {
    token_slices(text).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(
            tokenize("Small, WRITES (8KB)!"),
            vec!["small", "writes", "8kb"]
        );
    }

    #[test]
    fn keeps_numbers() {
        assert_eq!(
            tokenize("stripe=1 size=1048576"),
            vec!["stripe", "1", "size", "1048576"]
        );
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn token_count_matches() {
        assert_eq!(token_count("a b c"), 3);
    }

    #[test]
    fn unicode_is_separator() {
        assert_eq!(tokenize("café"), vec!["caf"]);
    }

    #[test]
    fn slices_borrow_the_original_case() {
        let toks: Vec<&str> = token_slices("Small, WRITES (8KB)!").collect();
        assert_eq!(toks, vec!["Small", "WRITES", "8KB"]);
    }

    #[test]
    fn token_count_matches_tokenize_on_edge_cases() {
        for text in [
            "",
            " ",
            "a",
            "a b",
            " leading and trailing ",
            "punct!!!only???",
            "x1y2z3",
            "café au lait",
            "1,000,000 bytes",
            "trailing-token",
            "token-trailing ",
        ] {
            assert_eq!(
                token_count(text),
                tokenize(text).len(),
                "mismatch on {text:?}"
            );
        }
    }
}
