//! Word tokenisation shared by the embedder, chunker, and LLM simulator.

/// Lowercase word tokens: maximal runs of ASCII alphanumerics; everything
/// else is a separator. Numbers are kept (sizes like `47008` matter in this
/// domain).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            cur.push(c.to_ascii_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Approximate token count of a text (whitespace/punctuation-delimited
/// words); the unit in which simulated context windows are measured.
pub fn token_count(text: &str) -> usize {
    tokenize(text).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(
            tokenize("Small, WRITES (8KB)!"),
            vec!["small", "writes", "8kb"]
        );
    }

    #[test]
    fn keeps_numbers() {
        assert_eq!(
            tokenize("stripe=1 size=1048576"),
            vec!["stripe", "1", "size", "1048576"]
        );
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn token_count_matches() {
        assert_eq!(token_count("a b c"), 3);
    }

    #[test]
    fn unicode_is_separator() {
        assert_eq!(tokenize("café"), vec!["caf"]);
    }
}
