//! Claim keys: machine-readable statements of expert knowledge.
//!
//! Each knowledge document asserts one or more claims. Downstream, a
//! retrieved document's claims (a) *ground* diagnosis rules — lowering the
//! effective difficulty of applying the corresponding expertise — and
//! (b) *correct* popular misconceptions the simulated LLM would otherwise
//! repeat (e.g. "a 1 MB stripe with stripe count 1 is optimal on Lustre").

/// Stripe count 1 serialises a file onto a single OST; widen striping.
pub const STRIPE_WIDTH_PARALLELISM: &str = "stripe_width_parallelism";
/// Stripe size should match the dominant transfer size.
pub const STRIPE_SIZE_TUNING: &str = "stripe_size_tuning";
/// Collective MPI-IO aggregates small independent requests.
pub const COLLECTIVE_IO_BENEFIT: &str = "collective_io_benefit";
/// Many sub-MB requests waste bandwidth; aggregate or buffer them.
pub const SMALL_IO_AGGREGATION: &str = "small_io_aggregation";
/// Requests crossing stripe/block boundaries pay read-modify-write costs.
pub const ALIGNMENT_MATTERS: &str = "alignment_matters";
/// Metadata operations are a scarce, centralised resource.
pub const METADATA_SCALABILITY: &str = "metadata_scalability";
/// Random access defeats prefetching and server-side streaming.
pub const RANDOM_VS_SEQUENTIAL: &str = "random_vs_sequential";
/// Shared-file access contends on locks and extents.
pub const SHARED_FILE_CONTENTION: &str = "shared_file_contention";
/// Repeatedly reading the same data should be cached or staged.
pub const REPETITIVE_READ_CACHING: &str = "repetitive_read_caching";
/// Rank-level I/O imbalance serialises the job on stragglers.
pub const RANK_BALANCE: &str = "rank_balance";
/// MPI-IO outperforms uncoordinated POSIX at scale.
pub const MPI_VS_POSIX: &str = "mpi_vs_posix";
/// STDIO streams are for configuration, not bulk parallel data.
pub const STDIO_BUFFERING: &str = "stdio_buffering";
/// Methodology: continuous characterisation with Darshan.
pub const DARSHAN_METHODOLOGY: &str = "darshan_methodology";
/// General platform-level I/O characterisation knowledge.
pub const IO_CHARACTERIZATION: &str = "io_characterization";

/// All claim keys.
pub const ALL: &[&str] = &[
    STRIPE_WIDTH_PARALLELISM,
    STRIPE_SIZE_TUNING,
    COLLECTIVE_IO_BENEFIT,
    SMALL_IO_AGGREGATION,
    ALIGNMENT_MATTERS,
    METADATA_SCALABILITY,
    RANDOM_VS_SEQUENTIAL,
    SHARED_FILE_CONTENTION,
    REPETITIVE_READ_CACHING,
    RANK_BALANCE,
    MPI_VS_POSIX,
    STDIO_BUFFERING,
    DARSHAN_METHODOLOGY,
    IO_CHARACTERIZATION,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_unique() {
        let mut v = ALL.to_vec();
        v.sort_unstable();
        let n = v.len();
        v.dedup();
        assert_eq!(v.len(), n);
    }
}
