//! The HPC I/O performance expert-knowledge corpus.
//!
//! The paper builds its RAG database by surveying five years of literature
//! for "HPC I/O performance" and manually filtering to **66 key works**,
//! which are chunked, embedded, and indexed with LlamaIndex. We cannot ship
//! those copyrighted papers, so this crate provides 66 original
//! expert-knowledge documents covering the same ground: striping,
//! collective I/O, request sizing, alignment, metadata scalability, access
//! patterns, shared-file contention, caching, load balance, interface
//! choice, and tooling. Each document carries citation metadata (title,
//! venue, year) so diagnoses can reference their sources, and a set of
//! [`claims`] keys that downstream components use for grounding.

pub mod claims;

use serde::Serialize;

/// One document of the expert corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct KnowledgeDoc {
    /// Stable identifier.
    pub id: &'static str,
    /// Paper-style title.
    pub title: &'static str,
    /// Publication venue.
    pub venue: &'static str,
    /// Publication year.
    pub year: u32,
    /// Claims this document substantiates.
    pub claims: &'static [&'static str],
    /// The document body (abstract-level expert text).
    pub body: &'static str,
}

impl KnowledgeDoc {
    /// Bracketed citation string used in diagnosis reports.
    pub fn citation(&self) -> String {
        format!("[{}, {} {}]", self.title, self.venue, self.year)
    }
}

/// The full 66-document corpus.
pub fn corpus() -> &'static [KnowledgeDoc] {
    CORPUS
}

/// Find a document by id.
pub fn get(id: &str) -> Option<&'static KnowledgeDoc> {
    CORPUS.iter().find(|d| d.id == id)
}

/// Stable FNV-1a content hash over a set of documents (every field,
/// separator-delimited). Used by persistence layers to fingerprint what an
/// on-disk knowledge-index snapshot was built from.
pub fn hash_docs(docs: &[KnowledgeDoc]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Field separator so ("ab","c") never collides with ("a","bc").
        h ^= 0x1f;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for d in docs {
        feed(d.id.as_bytes());
        feed(d.title.as_bytes());
        feed(d.venue.as_bytes());
        feed(&d.year.to_le_bytes());
        for c in d.claims {
            feed(c.as_bytes());
        }
        feed(d.body.as_bytes());
    }
    h
}

/// Content hash of the built-in corpus. Any edit to any document — body,
/// citation metadata, or claim set — changes this value, invalidating
/// index snapshots built from the previous corpus.
pub fn corpus_hash() -> u64 {
    hash_docs(CORPUS)
}

/// All documents asserting a claim.
pub fn docs_for_claim(claim: &str) -> Vec<&'static KnowledgeDoc> {
    CORPUS
        .iter()
        .filter(|d| d.claims.contains(&claim))
        .collect()
}

use claims::*;

const CORPUS: &[KnowledgeDoc] = &[
    // ---- Striping / server parallelism -----------------------------------
    KnowledgeDoc {
        id: "k01",
        title: "Striping Decisions for Parallel File Access",
        venue: "SC",
        year: 2021,
        claims: &[STRIPE_WIDTH_PARALLELISM, STRIPE_SIZE_TUNING],
        body: "The Lustre stripe count controls how many object storage targets (OSTs) \
               serve a file. A stripe count of 1 places every byte of the file on a single \
               OST, serialising all accesses and capping bandwidth at one server regardless \
               of how many ranks participate. Files accessed by many processes or larger \
               than a few gigabytes should be striped across many OSTs (lfs setstripe -c) \
               so that server load is spread and aggregate bandwidth scales.",
    },
    KnowledgeDoc {
        id: "k02",
        title: "Matching Stripe Size to Transfer Size on Lustre",
        venue: "CCGrid",
        year: 2022,
        claims: &[STRIPE_SIZE_TUNING, ALIGNMENT_MATTERS],
        body: "When an application issues large transfers, the stripe size should match or \
               divide evenly into the request size: 4 MB requests on the default 1 MB \
               stripe cause each request to touch four servers with extra lock traffic. \
               Setting the stripe size to the dominant transfer size (lfs setstripe -S 4M) \
               keeps each request on one OST and removes boundary crossings.",
    },
    KnowledgeDoc {
        id: "k03",
        title: "OST Load Imbalance in Production Lustre Deployments",
        venue: "IPDPS",
        year: 2023,
        claims: &[STRIPE_WIDTH_PARALLELISM],
        body: "Monitoring of production file systems shows that a small fraction of OSTs \
               frequently services a disproportionate share of traffic because jobs leave \
               the default stripe settings untouched. Server load imbalance manifests as \
               low aggregate utilisation of the available storage targets while individual \
               targets saturate; widening stripes or using progressive file layouts \
               restores balance.",
    },
    KnowledgeDoc {
        id: "k04",
        title: "A Coupon-Based Throttle-and-Reward Mechanism for Fair I/O Bandwidth",
        venue: "FAST",
        year: 2020,
        claims: &[STRIPE_WIDTH_PARALLELISM, IO_CHARACTERIZATION],
        body: "Parallel storage systems exhibit bandwidth collapse when competing \
               applications concentrate load on overlapping storage servers. Balancing \
               per-server traffic, either by scheduling or by striping files across \
               disjoint target sets, improves both fairness and aggregate efficiency.",
    },
    // ---- Collective I/O ---------------------------------------------------
    KnowledgeDoc {
        id: "k05",
        title: "Collective I/O Revisited: Aggregation on Modern Interconnects",
        venue: "IPDPS",
        year: 2022,
        claims: &[COLLECTIVE_IO_BENEFIT, SMALL_IO_AGGREGATION],
        body: "Collective MPI-IO (MPI_File_write_all and friends) designates aggregator \
               ranks that coalesce many small, possibly non-contiguous requests into a few \
               large, contiguous, stripe-aligned transfers. On shared files this routinely \
               improves write bandwidth by an order of magnitude over independent \
               operations. Applications issuing independent MPI-IO calls leave this \
               optimisation unused; enabling collective buffering (romio_cb_write) is \
               usually the single most effective shared-file fix.",
    },
    KnowledgeDoc {
        id: "k06",
        title: "Two-Phase I/O Aggregator Placement at Scale",
        venue: "Cluster",
        year: 2021,
        claims: &[COLLECTIVE_IO_BENEFIT],
        body: "Two-phase collective I/O splits a collective operation into a shuffle phase \
               and an I/O phase executed by aggregators. Aggregator counts and placement \
               should track the file's stripe count so that each aggregator owns whole \
               stripes; mismatches reintroduce lock contention. Collective reads benefit \
               symmetrically to writes when many ranks read a shared input.",
    },
    KnowledgeDoc {
        id: "k07",
        title: "Why Independent MPI-IO Underperforms on Shared Files",
        venue: "PDSW",
        year: 2023,
        claims: &[COLLECTIVE_IO_BENEFIT, SHARED_FILE_CONTENTION],
        body: "Independent MPI-IO operations on a shared file behave like uncoordinated \
               POSIX writes: each rank acquires extent locks, and interleaved access \
               patterns cause lock ping-pong between clients. Collective operations \
               serialise lock acquisition through aggregators and eliminate false sharing. \
               Darshan counters MPIIO_INDEP_WRITES versus MPIIO_COLL_WRITES expose the gap \
               directly.",
    },
    KnowledgeDoc {
        id: "k08",
        title: "Collective Buffering Hints in ROMIO: A Field Guide",
        venue: "EuroMPI",
        year: 2020,
        claims: &[COLLECTIVE_IO_BENEFIT],
        body: "ROMIO exposes collective buffering through hints: romio_cb_write, \
               romio_cb_read, cb_nodes, and cb_buffer_size. Enabling collective buffering \
               and setting cb_buffer_size to a multiple of the stripe size lets aggregators \
               emit stripe-aligned requests. Many applications disable collectives by \
               habit, inheriting severe small-request penalties.",
    },
    // ---- Small I/O ---------------------------------------------------------
    KnowledgeDoc {
        id: "k09",
        title: "The Cost of Small Requests on Parallel File Systems",
        venue: "SC",
        year: 2020,
        claims: &[SMALL_IO_AGGREGATION],
        body: "Requests below roughly 1 MB waste parallel file system bandwidth: fixed \
               per-request costs (RPC, locking, server CPU) dominate data movement. Darshan \
               access-size histograms with most operations in the sub-megabyte bins \
               indicate the application should buffer and aggregate, increase its record \
               size, or use a higher-level library that does so.",
    },
    KnowledgeDoc {
        id: "k10",
        title: "Write Aggregation Strategies for Checkpointing Codes",
        venue: "HPDC",
        year: 2022,
        claims: &[SMALL_IO_AGGREGATION, COLLECTIVE_IO_BENEFIT],
        body: "Checkpointing codes that emit many small records per rank achieve a small \
               fraction of achievable bandwidth. Buffering records into multi-megabyte \
               segments before issuing writes, or delegating aggregation to collective \
               MPI-IO or to libraries such as HDF5 with chunk caches, recovers most of the \
               lost performance.",
    },
    KnowledgeDoc {
        id: "k11",
        title: "Small, Frequent, and Slow: Request Size Pathologies in Production Traces",
        venue: "MSST",
        year: 2023,
        claims: &[SMALL_IO_AGGREGATION, IO_CHARACTERIZATION],
        body: "Analysis of a year of Darshan logs shows request size is the strongest \
               single predictor of realised bandwidth. Jobs whose read or write histograms \
               concentrate below 100 KB realise under 5 percent of peak. The fix is almost \
               always structural: aggregate in the application or switch to buffered \
               higher-level interfaces.",
    },
    KnowledgeDoc {
        id: "k12",
        title: "Buffered I/O Libraries Versus Raw POSIX for Scientific Workloads",
        venue: "TPDS",
        year: 2021,
        claims: &[SMALL_IO_AGGREGATION, MPI_VS_POSIX],
        body: "High-level libraries (HDF5, PnetCDF, ADIOS) internally buffer and align \
               data before touching the file system, converting application-level small \
               accesses into efficient large transfers. Raw POSIX leaves every pathology \
               visible to the storage stack.",
    },
    // ---- Alignment ---------------------------------------------------------
    KnowledgeDoc {
        id: "k13",
        title: "Alignment Effects in Striped File Systems",
        venue: "IPDPS",
        year: 2021,
        claims: &[ALIGNMENT_MATTERS, STRIPE_SIZE_TUNING],
        body: "A request that is not aligned to the file system's stripe or block \
               boundaries touches more servers than necessary and may trigger \
               read-modify-write cycles for partial blocks. Darshan's FILE_NOT_ALIGNED \
               counter quantifies the problem. Aligning record sizes and offsets to the \
               stripe size (or choosing a stripe size that divides the record) removes the \
               penalty; odd record sizes such as 47008 bytes are a classic offender.",
    },
    KnowledgeDoc {
        id: "k14",
        title: "Read-Modify-Write Amplification Under Unaligned Writes",
        venue: "FAST",
        year: 2022,
        claims: &[ALIGNMENT_MATTERS],
        body: "Unaligned writes force the server to read the surrounding block, merge the \
               new bytes, and write it back, tripling device traffic in the worst case. \
               Amplification grows with the fraction of boundary-crossing requests; \
               padding records to block multiples or aligning the first byte of each \
               rank's region eliminates it.",
    },
    KnowledgeDoc {
        id: "k15",
        title: "Lock Boundary Alignment for Shared-File Workloads",
        venue: "PDSW",
        year: 2021,
        claims: &[ALIGNMENT_MATTERS, SHARED_FILE_CONTENTION],
        body: "Extent locks on Lustre are granted in stripe-sized units. Writers whose \
               regions straddle stripe boundaries conflict with neighbours even when byte \
               ranges are disjoint, serialising otherwise parallel writes. Aligning each \
               rank's partition to stripe boundaries removes false conflicts.",
    },
    // ---- Metadata ----------------------------------------------------------
    KnowledgeDoc {
        id: "k16",
        title: "Metadata Scalability Limits of Parallel File Systems",
        venue: "FAST",
        year: 2023,
        claims: &[METADATA_SCALABILITY],
        body: "Metadata operations (open, stat, create, unlink) are serviced by a small \
               number of metadata servers and do not scale with OST count. Applications \
               that open thousands of files, stat in loops, or create per-rank-per-step \
               files spend more time in metadata than in data movement. Batching, caching \
               attributes, using fewer and larger files, or moving to object-style \
               interfaces relieves the bottleneck.",
    },
    KnowledgeDoc {
        id: "k17",
        title: "The File-Per-Process Trap at Exascale",
        venue: "SC",
        year: 2022,
        claims: &[METADATA_SCALABILITY, SHARED_FILE_CONTENTION],
        body: "File-per-process output avoids shared-file lock contention but creates a \
               metadata storm at scale: N creates, N opens, and directory lock pressure. \
               Past a few thousand ranks the create phase dominates. Middle grounds \
               (subfiling, one file per node, or collective shared files) bound both \
               failure modes.",
    },
    KnowledgeDoc {
        id: "k18",
        title: "Diagnosing Metadata Storms from Darshan Counters",
        venue: "HPDC",
        year: 2021,
        claims: &[METADATA_SCALABILITY, DARSHAN_METHODOLOGY],
        body: "A high ratio of F_META_TIME to total runtime, combined with large OPENS and \
               STATS counters relative to data volume, is a reliable signature of \
               metadata-bound execution. Shared-directory create workloads (as in \
               mdtest-hard) exhibit the pattern in its purest form.",
    },
    // ---- Random access ----------------------------------------------------
    KnowledgeDoc {
        id: "k19",
        title: "Sequentiality and Server-Side Prefetching",
        venue: "MSST",
        year: 2021,
        claims: &[RANDOM_VS_SEQUENTIAL],
        body: "Parallel file system servers prefetch aggressively on sequential streams. \
               Random access defeats prefetching, turns disk/SSD queues incoherent, and \
               cuts delivered bandwidth several-fold. Darshan's SEQ_READS/SEQ_WRITES \
               relative to total operations quantify sequentiality; reordering I/O, \
               sorting requests by offset, or batching random accesses into larger \
               windows restores streaming behaviour.",
    },
    KnowledgeDoc {
        id: "k20",
        title: "Request Reordering for Random Write Workloads",
        venue: "Cluster",
        year: 2022,
        claims: &[RANDOM_VS_SEQUENTIAL, SMALL_IO_AGGREGATION],
        body: "Random small writes combine the two worst behaviours on striped storage. \
               Client-side write-behind buffers that sort by file offset before flushing \
               convert random patterns into near-sequential ones, and collective I/O \
               performs this reordering across ranks.",
    },
    KnowledgeDoc {
        id: "k21",
        title: "Access Pattern Classification from Coarse Counters",
        venue: "IPDPS",
        year: 2020,
        claims: &[RANDOM_VS_SEQUENTIAL, IO_CHARACTERIZATION],
        body: "Coarse per-file counters suffice to classify access patterns: consecutive \
               and sequential operation fractions separate streaming, strided, and random \
               workloads with high accuracy, without full traces. A sequential fraction \
               below 40 percent almost always indicates a random pattern worth fixing.",
    },
    // ---- Shared file ------------------------------------------------------
    KnowledgeDoc {
        id: "k22",
        title: "Shared-File Contention: Locks, Extents, and False Sharing",
        venue: "SC",
        year: 2023,
        claims: &[SHARED_FILE_CONTENTION, COLLECTIVE_IO_BENEFIT],
        body: "When many ranks write one file, extent lock contention and false sharing on \
               stripe boundaries serialise progress. Remedies in rising order of effort: \
               align partitions to stripes, enable collective buffering so only \
               aggregators touch the file, or restructure output with subfiling. \
               Shared-file access is not inherently bad — uncoordinated shared-file \
               access is.",
    },
    KnowledgeDoc {
        id: "k23",
        title: "Single Shared File Versus File Per Process: A Decade of Measurements",
        venue: "TPDS",
        year: 2022,
        claims: &[SHARED_FILE_CONTENTION, METADATA_SCALABILITY],
        body: "Neither extreme wins universally: single shared files bottleneck on locks \
               without collectives, file-per-process bottlenecks on metadata at scale. \
               Measurements across five systems show collective shared-file I/O with \
               stripe-aligned partitions matches or beats file-per-process beyond 1024 \
               ranks.",
    },
    // ---- Repetitive reads --------------------------------------------------
    KnowledgeDoc {
        id: "k24",
        title: "Detecting and Eliminating Redundant Reads in Scientific Workflows",
        venue: "HPDC",
        year: 2023,
        claims: &[REPETITIVE_READ_CACHING],
        body: "Workflows frequently re-read the same input regions — bytes read far \
               exceeding the touched byte range in Darshan is the telltale sign. Staging \
               the data in node-local memory or burst buffers, enabling client-side \
               caching, or restructuring loops to reuse buffers removes the redundant \
               traffic entirely.",
    },
    KnowledgeDoc {
        id: "k25",
        title: "Burst Buffers as Read Caches for Iterative Analytics",
        venue: "Cluster",
        year: 2020,
        claims: &[REPETITIVE_READ_CACHING, IO_CHARACTERIZATION],
        body: "Iterative analytics that sweep the same dataset each epoch gain \
               near-linear speedups from staging the dataset into burst buffers or \
               node-local NVMe once, instead of re-reading from the parallel file system \
               every iteration.",
    },
    // ---- Rank balance ------------------------------------------------------
    KnowledgeDoc {
        id: "k26",
        title: "Stragglers in Parallel I/O: Rank-Level Load Imbalance",
        venue: "IPDPS",
        year: 2022,
        claims: &[RANK_BALANCE],
        body: "When one rank moves far more data than its peers, collective phases wait \
               on the straggler and effective bandwidth collapses to single-client speed. \
               Darshan's fastest/slowest rank bytes and rank time variance expose the \
               imbalance. Domain decomposition should spread I/O evenly; delegating \
               rank-0-funnelled I/O to parallel writes removes the classic master-writer \
               bottleneck.",
    },
    KnowledgeDoc {
        id: "k27",
        title: "Log-Assisted Straggler-Aware I/O Scheduling",
        venue: "ICPP Workshops",
        year: 2016,
        claims: &[RANK_BALANCE, IO_CHARACTERIZATION],
        body: "Server logs identify persistent straggler clients and storage targets. \
               Scheduling decisions that account for stragglers improve end-to-end I/O \
               completion times for bulk-synchronous applications where the slowest rank \
               gates progress.",
    },
    // ---- MPI vs POSIX ------------------------------------------------------
    KnowledgeDoc {
        id: "k28",
        title: "Why Multi-Process POSIX I/O Leaves Performance on the Table",
        venue: "EuroMPI",
        year: 2021,
        claims: &[MPI_VS_POSIX, COLLECTIVE_IO_BENEFIT],
        body: "Applications that run many processes but perform I/O through raw POSIX \
               forgo every coordination opportunity: no collective aggregation, no shared \
               file views, no hint-driven optimisation. At 8+ ranks, MPI-IO is expected \
               to outperform uncoordinated POSIX on shared files; a Darshan log showing \
               large POSIX volume with an absent or idle MPI-IO module flags the gap.",
    },
    KnowledgeDoc {
        id: "k29",
        title: "Interface Choice and Its Consequences in HPC I/O Stacks",
        venue: "TPDS",
        year: 2023,
        claims: &[MPI_VS_POSIX, SMALL_IO_AGGREGATION],
        body: "The interface an application chooses fixes which optimisations are \
               reachable: POSIX exposes none, MPI-IO exposes collectives and hints, \
               HDF5/PnetCDF add chunking and caching. Migrating hot I/O paths from POSIX \
               to MPI-IO is mechanical for contiguous patterns and pays off immediately \
               at scale.",
    },
    // ---- STDIO -------------------------------------------------------------
    KnowledgeDoc {
        id: "k30",
        title: "STDIO Streams in HPC Applications: Convenience with a Cost",
        venue: "PDSW",
        year: 2022,
        claims: &[STDIO_BUFFERING],
        body: "fprintf/fread streams use small libc buffers (typically 4-64 KB) and are \
               oblivious to striping and parallelism. They are fine for configuration \
               files and logs, but bulk data through STDIO serialises into small buffered \
               writes. Darshan's STDIO module volume relative to POSIX/MPI-IO reveals \
               misuse; porting bulk paths to MPI-IO or increasing stream buffers with \
               setvbuf mitigates.",
    },
    // ---- Tools & methodology ----------------------------------------------
    KnowledgeDoc {
        id: "k31",
        title: "Understanding and Improving Computational Science Storage Access Through Continuous Characterization",
        venue: "ACM TOS",
        year: 2011,
        claims: &[DARSHAN_METHODOLOGY, IO_CHARACTERIZATION],
        body: "Darshan instruments applications transparently and records bounded-size \
               per-file counters covering operation counts, access sizes, alignment, and \
               timing across POSIX, MPI-IO, and STDIO. Continuous deployment across a \
               facility yields a census of I/O behaviour and surfaces optimisation \
               candidates without developer effort.",
    },
    KnowledgeDoc {
        id: "k32",
        title: "DXT: Darshan Extended Tracing",
        venue: "Cray User Group",
        year: 2019,
        claims: &[DARSHAN_METHODOLOGY],
        body: "Darshan eXtended Tracing records each I/O operation with offset, length, \
               and timestamps, enabling fine-grained reconstruction of access patterns at \
               the cost of higher overhead. It is disabled by default; counter-level \
               analysis remains the first-line diagnostic.",
    },
    KnowledgeDoc {
        id: "k33",
        title: "Drishti: Guiding End-Users in the I/O Optimization Journey",
        venue: "PDSW",
        year: 2022,
        claims: &[DARSHAN_METHODOLOGY, IO_CHARACTERIZATION],
        body: "Drishti scans Darshan logs with a fixed set of expert triggers and emits \
               categorised issues with static recommendations. Its thresholds encode \
               facility experience (for example, flagging runs where more than 10 percent \
               of requests are under 1 MB) and it excels at quickly screening large \
               batches of logs.",
    },
    KnowledgeDoc {
        id: "k34",
        title: "IOMiner: Large-Scale Analytics Framework for Gaining Knowledge from I/O Logs",
        venue: "Cluster",
        year: 2018,
        claims: &[IO_CHARACTERIZATION],
        body: "Sweep-line analytics over facility-wide I/O logs correlate application \
               behaviour with platform conditions, identifying systemic issues such as \
               chronically overloaded storage targets and poorly striped project \
               directories.",
    },
    KnowledgeDoc {
        id: "k35",
        title: "UMAMI: A Recipe for Generating Meaningful Metrics Through Holistic I/O Performance Analysis",
        venue: "PDSW-DISCS",
        year: 2017,
        claims: &[IO_CHARACTERIZATION],
        body: "Interpreting a single job's I/O performance requires context: the same \
               bandwidth may be excellent under contention and poor on an idle system. \
               Normalising job metrics against contemporaneous platform telemetry \
               produces meaningful, comparable scores.",
    },
    KnowledgeDoc {
        id: "k36",
        title: "TOKIO on ClusterStor: Connecting Standard Tools to Enable Holistic I/O Performance Analysis",
        venue: "Cray User Group",
        year: 2018,
        claims: &[IO_CHARACTERIZATION, DARSHAN_METHODOLOGY],
        body: "Combining application-side Darshan records with server-side monitoring \
               attributes observed slowdowns to their true cause — client pathology \
               versus shared-platform contention — and avoids mis-blaming application \
               code for system weather.",
    },
    KnowledgeDoc {
        id: "k37",
        title: "Recorder 2.0: Efficient Parallel I/O Tracing and Analysis",
        venue: "IPDPSW",
        year: 2020,
        claims: &[DARSHAN_METHODOLOGY],
        body: "Recorder captures multi-level I/O traces (HDF5, MPI-IO, POSIX) with \
               per-call fidelity, enabling cross-layer attribution: a single HDF5 call \
               fanning out into thousands of small POSIX requests is immediately visible.",
    },
    KnowledgeDoc {
        id: "k38",
        title: "Enabling Agile Analysis of I/O Performance Data with PyDarshan",
        venue: "SC Workshops",
        year: 2023,
        claims: &[DARSHAN_METHODOLOGY],
        body: "PyDarshan exposes Darshan records as dataframes, letting analysts build \
               custom reductions — per-module histograms, rank heatmaps, time-window \
               summaries — without touching the binary log format.",
    },
    KnowledgeDoc {
        id: "k39",
        title: "I/O Bottleneck Detection and Tuning: Connecting the Dots Using Interactive Log Analysis",
        venue: "PDSW",
        year: 2021,
        claims: &[IO_CHARACTERIZATION, DARSHAN_METHODOLOGY],
        body: "Interactive exploration of DXT traces (DXT-Explorer) reveals spatial and \
               temporal bottlenecks — rank-0 funnelling, phase serialisation, stragglers — \
               that aggregate counters only hint at, guiding users through the tuning \
               journey step by step.",
    },
    KnowledgeDoc {
        id: "k40",
        title: "Establishing the IO-500 Benchmark",
        venue: "VI4IO White Paper",
        year: 2016,
        claims: &[IO_CHARACTERIZATION],
        body: "IO500 standardises bandwidth- and metadata-bound workloads (ior-easy, \
               ior-hard, mdtest) to characterise storage systems. ior-hard's 47008-byte \
               unaligned interleaved writes to a shared file remain a canonical stress \
               test of small, misaligned shared-file behaviour.",
    },
    // ---- Systems & platform docs -------------------------------------------
    KnowledgeDoc {
        id: "k41",
        title: "The Lustre File System Architecture",
        venue: "OpenSFS Reference",
        year: 2020,
        claims: &[STRIPE_WIDTH_PARALLELISM, STRIPE_SIZE_TUNING, METADATA_SCALABILITY],
        body: "Lustre separates metadata servers (MDS/MDT) from object storage servers \
               (OSS/OST). File data is striped RAID-0 style across OSTs according to \
               per-file layout (stripe count, stripe size, OST pool). Bandwidth scales \
               with stripe count up to client limits; metadata throughput is bounded by \
               MDS capacity.",
    },
    KnowledgeDoc {
        id: "k42",
        title: "Architecture and Design of Cray DataWarp",
        venue: "Cray User Group",
        year: 2016,
        claims: &[REPETITIVE_READ_CACHING, IO_CHARACTERIZATION],
        body: "Burst buffer tiers of NVMe close the latency gap between compute and the \
               parallel file system, absorbing checkpoint bursts and caching hot inputs. \
               Staging policies decide which datasets live in the buffer for the job's \
               lifetime.",
    },
    KnowledgeDoc {
        id: "k43",
        title: "The HDF5 Library and File Format: Chunking and Caching Internals",
        venue: "HDF Group Technical Note",
        year: 2021,
        claims: &[SMALL_IO_AGGREGATION, ALIGNMENT_MATTERS],
        body: "HDF5 chunking maps logical selections onto fixed-size chunks; the chunk \
               cache coalesces partial-chunk updates. Chunk size should be a multiple of \
               the stripe size and comparable to the transfer size, or partial-chunk \
               traffic amplifies into many small unaligned requests.",
    },
    KnowledgeDoc {
        id: "k44",
        title: "Parallel netCDF: A High-Performance Scientific I/O Interface",
        venue: "SC",
        year: 2003,
        claims: &[COLLECTIVE_IO_BENEFIT, MPI_VS_POSIX],
        body: "PnetCDF layers a self-describing array model over MPI-IO and inherits its \
               collective optimisations, letting legacy netCDF codes reach parallel \
               bandwidth without restructuring their data model.",
    },
    KnowledgeDoc {
        id: "k45",
        title: "MPI-IO Implementation Techniques: Data Sieving and Two-Phase Collectives",
        venue: "ROMIO Technical Report",
        year: 2019,
        claims: &[COLLECTIVE_IO_BENEFIT, SMALL_IO_AGGREGATION, ALIGNMENT_MATTERS],
        body: "Data sieving reads a large window and extracts scattered pieces, trading \
               extra volume for far fewer requests; two-phase collectives shuffle data to \
               aggregators that issue large aligned accesses. Both transform pathological \
               request streams into file-system-friendly ones.",
    },
    KnowledgeDoc {
        id: "k46",
        title: "GPFS Block Allocation and Byte-Range Locking Under Shared Writes",
        venue: "MSST",
        year: 2020,
        claims: &[SHARED_FILE_CONTENTION, ALIGNMENT_MATTERS],
        body: "GPFS grants byte-range tokens at block granularity; unaligned shared \
               writes provoke token revocation storms between nodes. Aligning writer \
               partitions to block boundaries sidesteps revocation entirely.",
    },
    // ---- Application studies ------------------------------------------------
    KnowledgeDoc {
        id: "k47",
        title: "AMReX: Block-Structured Adaptive Mesh Refinement for Multiphysics Applications",
        venue: "IJHPCA",
        year: 2021,
        claims: &[IO_CHARACTERIZATION, MPI_VS_POSIX],
        body: "AMReX writes plotfiles as per-level directories of binary files. Default \
               settings funnel I/O through a limited writer set using POSIX; tuning the \
               number of output files and enabling MPI-IO paths substantially changes the \
               observed pattern at scale.",
    },
    KnowledgeDoc {
        id: "k48",
        title: "I/O Characterisation of a Cosmology Checkpoint Code (HACC-IO)",
        venue: "SC",
        year: 2019,
        claims: &[SMALL_IO_AGGREGATION, SHARED_FILE_CONTENTION],
        body: "HACC's particle checkpoints write fixed-size records per rank into a \
               shared file. With independent I/O and odd record sizes the pattern is \
               small, unaligned, and contended; collective aggregation with padded \
               records restores bandwidth.",
    },
    KnowledgeDoc {
        id: "k49",
        title: "Tuning VPIC Particle Dumps on Burst-Buffer-Equipped Systems",
        venue: "Cluster",
        year: 2021,
        claims: &[SMALL_IO_AGGREGATION, RANDOM_VS_SEQUENTIAL],
        body: "VPIC's per-species particle dumps scatter small records across a shared \
               file. Sorting particles before output and batching records per cell block \
               converts the random small-write stream into sequential large writes.",
    },
    KnowledgeDoc {
        id: "k50",
        title: "OpenPMD Series Files: Chunk Layout and Collective Output",
        venue: "ISC",
        year: 2022,
        claims: &[SHARED_FILE_CONTENTION, COLLECTIVE_IO_BENEFIT, STRIPE_SIZE_TUNING],
        body: "OpenPMD stores particle-mesh series in shared container files. Default \
               small chunk sizes scatter writes; configuring chunk extents to match \
               stripe size and enabling collective backends turns the series dump into \
               aligned streaming output.",
    },
    KnowledgeDoc {
        id: "k51",
        title: "Nyx: A Massively Parallel AMR Code for Computational Cosmology",
        venue: "ApJ",
        year: 2013,
        claims: &[IO_CHARACTERIZATION, RANK_BALANCE],
        body: "Nyx restart reads concentrate grid metadata on designated ranks before \
               broadcast; at scale this concentrates both read traffic and metadata \
               operations on few ranks, an imbalance visible in per-rank byte variance.",
    },
    KnowledgeDoc {
        id: "k52",
        title: "Montage: A Grid Portal and Software Toolkit for Astronomical Image Mosaicking",
        venue: "IJCSE",
        year: 2009,
        claims: &[METADATA_SCALABILITY, SMALL_IO_AGGREGATION],
        body: "Montage pipelines process thousands of small FITS files through serial \
               tasks, producing metadata-heavy, small-access I/O profiles; consolidating \
               intermediate products into fewer container files cuts both costs.",
    },
    KnowledgeDoc {
        id: "k53",
        title: "Exascale Deep Learning for Climate Analytics: The Input Pipeline",
        venue: "SC",
        year: 2018,
        claims: &[REPETITIVE_READ_CACHING, RANDOM_VS_SEQUENTIAL],
        body: "Training epochs re-read the full dataset in randomised order; without \
               node-local caching the parallel file system sees a random re-read storm \
               every epoch. Sharding plus local shuffle buffers preserves statistical \
               randomness while restoring sequential file-system access.",
    },
    KnowledgeDoc {
        id: "k54",
        title: "The 1000 Genomes Workflow on Shared HPC Systems",
        venue: "Pegasus Case Study",
        year: 2023,
        claims: &[METADATA_SCALABILITY, STDIO_BUFFERING],
        body: "Bioinformatics workflows invoke many short-lived tools communicating \
               through small files and text streams, stressing metadata services and \
               buffered STDIO rather than bandwidth. Containerising stages and using \
               per-node scratch reduces shared-file-system pressure.",
    },
    KnowledgeDoc {
        id: "k55",
        title: "QMCPACK I/O: Ensemble Checkpointing Patterns",
        venue: "JPCM",
        year: 2018,
        claims: &[SMALL_IO_AGGREGATION, METADATA_SCALABILITY],
        body: "Ensemble quantum Monte Carlo runs emit many small per-walker checkpoints. \
               Aggregating walkers into ensemble-level HDF5 files with collective writes \
               reduces both file counts and request counts by orders of magnitude.",
    },
    // ---- Broader analysis / ML-on-logs works --------------------------------
    KnowledgeDoc {
        id: "k56",
        title: "ClusterLog: Clustering Logs for Effective Log-Based Anomaly Detection",
        venue: "FTXS",
        year: 2022,
        claims: &[IO_CHARACTERIZATION],
        body: "Clustering semantically similar log events compresses noisy system logs \
               into stable vocabularies, improving downstream anomaly detection on \
               parallel file system logs.",
    },
    KnowledgeDoc {
        id: "k57",
        title: "SentiLog: Anomaly Detection on Parallel File Systems via Log-Based Sentiment Analysis",
        venue: "HotStorage",
        year: 2021,
        claims: &[IO_CHARACTERIZATION],
        body: "Language-model sentiment over file system logs separates healthy from \
               anomalous periods without hand-built parsers, transferring across Lustre \
               and BeeGFS deployments.",
    },
    KnowledgeDoc {
        id: "k58",
        title: "DRILL: Log-Based Anomaly Detection for Large-Scale Storage Systems Using Source Code Analysis",
        venue: "IPDPS",
        year: 2023,
        claims: &[IO_CHARACTERIZATION],
        body: "Grounding log analysis in the printing source statements yields precise \
               event templates and improves anomaly localisation in storage stacks.",
    },
    KnowledgeDoc {
        id: "k59",
        title: "IOPathTune: Adaptive Online Parameter Tuning for Parallel File System I/O Paths",
        venue: "arXiv",
        year: 2023,
        claims: &[IO_CHARACTERIZATION, STRIPE_SIZE_TUNING],
        body: "Online tuning of client I/O path parameters (RPC sizes, concurrency, \
               checksums) adapts to workload shifts without restarts, complementing \
               application-side fixes.",
    },
    KnowledgeDoc {
        id: "k60",
        title: "ION: Navigating the HPC I/O Optimization Journey Using Large Language Models",
        venue: "HotStorage",
        year: 2024,
        claims: &[DARSHAN_METHODOLOGY],
        body: "A proof-of-concept that prompts LLMs directly with Darshan summaries to \
               generate diagnoses. Quality tracks the backbone model closely and degrades \
               on long traces, motivating retrieval grounding and structured \
               pre-processing.",
    },
    // ---- Additional depth docs ----------------------------------------------
    KnowledgeDoc {
        id: "k61",
        title: "Progressive File Layouts: Adapting Striping to File Growth",
        venue: "LUG",
        year: 2021,
        claims: &[STRIPE_WIDTH_PARALLELISM, STRIPE_SIZE_TUNING],
        body: "Progressive file layouts start small files on one OST and widen striping \
               as files grow, giving small files low overhead and large files full \
               parallelism without user action — the right default where available \
               (lfs setstripe -E).",
    },
    KnowledgeDoc {
        id: "k62",
        title: "Asynchronous I/O and Overlap: Hiding Storage Latency in Tightly Coupled Codes",
        venue: "IPDPS",
        year: 2023,
        claims: &[IO_CHARACTERIZATION, SMALL_IO_AGGREGATION],
        body: "Non-blocking MPI-IO and background flush threads overlap computation with \
               I/O, hiding latency that synchronous small writes expose directly on the \
               critical path.",
    },
    KnowledgeDoc {
        id: "k63",
        title: "I/O Forwarding and Aggregation Layers on Leadership Systems",
        venue: "SC",
        year: 2021,
        claims: &[SMALL_IO_AGGREGATION, RANK_BALANCE],
        body: "Forwarding layers funnel compute-node I/O through dedicated nodes, \
               aggregating requests and smoothing per-server load; misconfigured \
               forwarding ratios reintroduce stragglers.",
    },
    KnowledgeDoc {
        id: "k64",
        title: "The I/O Trace Initiative: Building a Collaborative I/O Archive to Advance HPC",
        venue: "SC Workshops",
        year: 2023,
        claims: &[DARSHAN_METHODOLOGY, IO_CHARACTERIZATION],
        body: "A community archive of anonymised Darshan and Recorder traces enables \
               cross-facility studies and gives diagnosis tools shared ground truth to \
               evaluate against.",
    },
    KnowledgeDoc {
        id: "k65",
        title: "GIFT: Fair and Efficient I/O Bandwidth Management for Parallel Storage Systems",
        venue: "FAST",
        year: 2020,
        claims: &[IO_CHARACTERIZATION, RANK_BALANCE],
        body: "Coupon-based bandwidth allocation trades short-term fairness for \
               throughput while bounding unfairness, smoothing the contention that makes \
               identical jobs measure differently day to day.",
    },
    KnowledgeDoc {
        id: "k66",
        title: "From Counters to Causes: A Practitioner's Checklist for Darshan Log Triage",
        venue: "Best Practices Guide",
        year: 2024,
        claims: &[
            DARSHAN_METHODOLOGY,
            SMALL_IO_AGGREGATION,
            ALIGNMENT_MATTERS,
            METADATA_SCALABILITY,
            STRIPE_WIDTH_PARALLELISM,
        ],
        body: "Triage order for a slow job's Darshan log: check request-size histograms \
               first (small I/O), then FILE_NOT_ALIGNED (alignment), then F_META_TIME \
               against runtime (metadata), then stripe settings against file sizes and \
               process counts (server parallelism), then rank variance (stragglers), and \
               finally interface choice (POSIX vs MPI-IO vs STDIO). Most production \
               slowdowns fall to the first two checks.",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_66_documents() {
        assert_eq!(corpus().len(), 66);
    }

    #[test]
    fn ids_unique() {
        let mut ids: Vec<_> = corpus().iter().map(|d| d.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn every_doc_has_claims_and_body() {
        for d in corpus() {
            assert!(!d.claims.is_empty(), "{}", d.id);
            assert!(d.body.len() > 80, "{} body too short", d.id);
            assert!(d.year >= 2003 && d.year <= 2026, "{}", d.id);
        }
    }

    #[test]
    fn claims_are_known_keys() {
        for d in corpus() {
            for c in d.claims {
                assert!(claims::ALL.contains(c), "{} has unknown claim {c}", d.id);
            }
        }
    }

    #[test]
    fn every_claim_is_substantiated_by_multiple_docs() {
        for c in claims::ALL {
            let docs = docs_for_claim(c);
            assert!(docs.len() >= 2, "claim {c} covered by {} docs", docs.len());
        }
    }

    #[test]
    fn citation_format() {
        let d = get("k01").unwrap();
        assert_eq!(
            d.citation(),
            "[Striping Decisions for Parallel File Access, SC 2021]"
        );
    }

    #[test]
    fn lookup_miss_returns_none() {
        assert!(get("k99").is_none());
    }

    #[test]
    fn corpus_hash_is_stable_and_content_sensitive() {
        assert_eq!(corpus_hash(), corpus_hash());
        // Dropping a document, or editing any field of one, moves the hash.
        let truncated = hash_docs(&CORPUS[..65]);
        assert_ne!(corpus_hash(), truncated);
        let mut edited = CORPUS.to_vec();
        edited[0].year += 1;
        assert_ne!(corpus_hash(), hash_docs(&edited));
        let mut edited = CORPUS.to_vec();
        edited[0].body =
            "replaced body text for hash sensitivity check xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx";
        assert_ne!(corpus_hash(), hash_docs(&edited));
    }
}
