//! Regenerates **Figure 6**: pairwise tree merge versus one-step (flat)
//! merge.
//!
//! The paper's example merges four diagnosis summaries (Size, Request
//! Count, Metadata, Request Order) with Llama-3-70B and shows the one-step
//! merge losing key points and reference sources that the tree merge
//! preserves. We reproduce that, then scale to the 13-summary case the
//! paper says defeats even gpt-4o.
//!
//! Run with: `cargo run --release --bin fig6_merge_ablation -p ioagent-bench`

use ioagent_core::{MergeStrategy, SummaryBlock};
use simllm::SimLlm;

fn fig6_blocks() -> Vec<SummaryBlock> {
    vec![
        SummaryBlock::new(
            "Size",
            vec![
                "- POINT[small_write] Issue: Small Write I/O Requests — all writes are 8 KB \
                 (data: 100% below 1 MB) ;; REFS: [The Cost of Small Requests, SC 2020]"
                    .to_string(),
            ],
        ),
        SummaryBlock::new(
            "Request Count",
            vec![
                "- POINT[no_collective_write] Issue: No Collective I/O on Write — 25600 \
                 independent MPI-IO writes vs 0 collective; use MPI-IO collectives \
                 ;; REFS: [Collective I/O Revisited, IPDPS 2022]"
                    .to_string(),
            ],
        ),
        SummaryBlock::new(
            "Metadata",
            vec![
                "- POINT[high_metadata_load] Issue: High Metadata Load — 38% of runtime in \
                 opens/stats ;; REFS: [Metadata Scalability Limits, FAST 2023]"
                    .to_string(),
            ],
        ),
        SummaryBlock::new(
            "Request Order",
            vec![
                "- POINT[random_write] Issue: Random Access Patterns on Write — only 15% \
                 sequential, stride sizes irregular ;; REFS: [Sequentiality and \
                 Server-Side Prefetching, MSST 2021]"
                    .to_string(),
            ],
        ),
    ]
}

fn count_refs(block: &SummaryBlock) -> usize {
    block
        .points
        .iter()
        .filter(|p| p.contains(";; REFS:"))
        .count()
}

fn trial(
    model: &SimLlm,
    blocks: &[SummaryBlock],
    strategy: MergeStrategy,
    rounds: usize,
) -> (f64, f64) {
    let mut points = 0usize;
    let mut refs = 0usize;
    for round in 0..rounds {
        let mut bs = blocks.to_vec();
        // Perturb one line per round so the RNG streams decorrelate.
        bs[0].points[0] = format!("{} (round {round})", blocks[0].points[0]);
        let merged = ioagent_core::merge::merge_blocks(model, bs, strategy);
        points += merged.points.len();
        refs += count_refs(&merged);
    }
    let max = (blocks.len() * rounds) as f64;
    (points as f64 / max, refs as f64 / max)
}

fn main() {
    println!("Fig. 6 — pairwise tree merge vs 1-step merge\n");
    const ROUNDS: usize = 40;

    // Paper's case: 4 summaries, Llama-3-70B.
    let llama = SimLlm::new("llama-3-70b");
    let blocks = fig6_blocks();
    let (tree_p, tree_r) = trial(&llama, &blocks, MergeStrategy::Tree, ROUNDS);
    let (flat_p, flat_r) = trial(&llama, &blocks, MergeStrategy::Flat, ROUNDS);
    println!("4 summaries, llama-3-70b ({ROUNDS} rounds):");
    println!(
        "  {:<16} key points kept {:>5.1}%   references kept {:>5.1}%",
        "tree merge",
        tree_p * 100.0,
        tree_r * 100.0
    );
    println!(
        "  {:<16} key points kept {:>5.1}%   references kept {:>5.1}%",
        "1-step merge",
        flat_p * 100.0,
        flat_r * 100.0
    );

    // The 13-summary case that defeats even gpt-4o.
    let gpt4o = SimLlm::new("gpt-4o");
    let many: Vec<SummaryBlock> = (0..13)
        .map(|i| {
            SummaryBlock::new(
                format!("S{i}"),
                vec![format!(
                    "- POINT[k{i}] Issue: finding {i} with its data ;; REFS: [Source {i}, V 2021]"
                )],
            )
        })
        .collect();
    let (tree_p, tree_r) = trial(&gpt4o, &many, MergeStrategy::Tree, ROUNDS);
    let (flat_p, flat_r) = trial(&gpt4o, &many, MergeStrategy::Flat, ROUNDS);
    println!("\n13 summaries, gpt-4o ({ROUNDS} rounds):");
    println!(
        "  {:<16} key points kept {:>5.1}%   references kept {:>5.1}%",
        "tree merge",
        tree_p * 100.0,
        tree_r * 100.0
    );
    println!(
        "  {:<16} key points kept {:>5.1}%   references kept {:>5.1}%",
        "1-step merge",
        flat_p * 100.0,
        flat_r * 100.0
    );

    // One concrete sample output pair, as the figure shows.
    println!("\nsample tree-merge output (llama-3-70b, 4 summaries):");
    let merged = ioagent_core::merge::merge_blocks(&llama, fig6_blocks(), MergeStrategy::Tree);
    for p in &merged.points {
        println!("  {p}");
    }
    println!("\nsample 1-step output:");
    let merged = ioagent_core::merge::merge_blocks(&llama, fig6_blocks(), MergeStrategy::Flat);
    for p in &merged.points {
        println!("  {p}");
    }
}
