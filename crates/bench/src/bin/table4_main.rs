//! Regenerates **Table IV**: Accuracy / Utility / Interpretability ×
//! {Simple-Bench, IO500, Real-Applications, Overall} for Drishti, ION,
//! IOAgent-gpt-4o, and IOAgent-llama-3.1-70B over the full TraceBench
//! suite, judged by GPT-4o with anonymisation and rotation augmentations
//! (4 permutations per sample).
//!
//! Run with: `cargo run --release --bin table4_main -p ioagent-bench`

use ioagent_bench::{recall_precision, run_all_tools};
use judge::Judge;
use simllm::SimLlm;
use tracebench::TraceBench;

fn main() {
    let start = std::time::Instant::now();
    let suite = TraceBench::generate();
    eprintln!(
        "TraceBench generated: {} traces, {} issues",
        suite.len(),
        suite.table3().total_issues()
    );

    let runs = run_all_tools(&suite);
    eprintln!("tool diagnoses complete ({:.1?})", start.elapsed());

    // Auxiliary raw label statistics (not part of the paper's table, but
    // helpful to interpret the rank-based scores).
    eprintln!("\nraw label recall/precision per tool:");
    for r in &runs {
        let (recall, precision) = recall_precision(&suite, &r.diagnoses);
        eprintln!(
            "  {:<24} recall {:.3}  precision {:.3}",
            r.tool, recall, precision
        );
    }

    let judge_model = SimLlm::new("gpt-4o");
    let judge = Judge::new(&judge_model);
    let eval = judge.evaluate(&suite, &runs);
    println!("\nTable IV — Performance Results for Diagnosis Tools on TraceBench Subsets");
    println!("{}", eval.render_table4());
    eprintln!("total time {:.1?}", start.elapsed());
}
