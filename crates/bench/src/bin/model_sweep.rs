//! Model-agnosticism sweep: run IOAgent with every built-in backbone
//! profile and compare against each backbone's direct-prompt (ION) use.
//!
//! The paper's claim: "IOAgent is not tied to specific LLMs, performing
//! similarly well with both proprietary and open-source LLMs" — i.e. the
//! pipeline compresses the quality gap between backbones, while direct
//! prompting tracks the backbone closely.
//!
//! Run with: `cargo run --release --bin model_sweep -p ioagent-bench`

use baselines::Ion;
use ioagent_bench::recall_precision;
use ioagent_core::IoAgent;
use simllm::{Diagnosis, SimLlm, PROFILES};
use tracebench::TraceBench;

fn main() {
    let suite = TraceBench::generate();
    println!(
        "backbone sweep over all {} traces — IOAgent vs direct prompting (ION)\n",
        suite.len()
    );
    println!(
        "{:<16} {:>10} {:>16} {:>12} {:>16}",
        "backbone", "capability", "ioagent recall", "ion recall", "pipeline uplift"
    );

    let mut agent_recalls: Vec<f64> = Vec::new();
    let mut ion_recalls: Vec<f64> = Vec::new();
    for profile in PROFILES {
        let model = SimLlm::new(profile.name);
        let agent = IoAgent::new(&model);
        let agent_diag: Vec<Diagnosis> = suite
            .entries
            .iter()
            .map(|e| agent.diagnose(&e.trace))
            .collect();
        let (agent_recall, _) = recall_precision(&suite, &agent_diag);

        let ion_model = SimLlm::new(profile.name);
        let ion = Ion::new(&ion_model);
        let ion_diag: Vec<Diagnosis> = suite
            .entries
            .iter()
            .map(|e| ion.diagnose(&e.trace))
            .collect();
        let (ion_recall, _) = recall_precision(&suite, &ion_diag);

        println!(
            "{:<16} {:>10.2} {:>16.3} {:>12.3} {:>15.1}%",
            profile.name,
            profile.capability,
            agent_recall,
            ion_recall,
            (agent_recall - ion_recall) / ion_recall.max(1e-9) * 100.0
        );
        agent_recalls.push(agent_recall);
        ion_recalls.push(ion_recall);
    }

    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    println!(
        "\nrecall spread across backbones: IOAgent {:.3} vs direct prompting {:.3}",
        spread(&agent_recalls),
        spread(&ion_recalls)
    );
    println!("a smaller spread = less dependence on the specific backbone model.");
}
