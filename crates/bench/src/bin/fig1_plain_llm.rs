//! Regenerates **Figure 1**: plain-LLM diagnosis of the AMReX trace by
//! directly querying gpt-4 and gpt-4o with the parsed Darshan log.
//!
//! The paper's observations this binary reproduces:
//! - gpt-4 produces little of diagnostic value;
//! - gpt-4o is much better but (a) misses the POSIX-instead-of-MPI-IO issue
//!   because the MPI-IO rows sit in the middle/tail of the trace, and
//!   (b) repeats the "1 MB stripe is optimal" misconception because nothing
//!   grounds it;
//! - o1-preview cannot ingest the full trace at all (context too small).
//!
//! Run with: `cargo run --release --bin fig1_plain_llm -p ioagent-bench`

use baselines::Ion;
use simllm::{LanguageModel, SimLlm};
use tracebench::{IssueLabel, TraceBench};

fn main() {
    let suite = TraceBench::generate();
    let amrex = suite.get("ra_amrex").expect("AMReX trace");
    println!(
        "AMReX run: {:.0} s, {} processes, {} files (paper §III)\n",
        amrex.trace.header.run_time,
        amrex.trace.header.nprocs,
        amrex.trace.files().len()
    );
    println!("ground truth: {:?}\n", amrex.labels());

    for model_name in ["gpt-4", "gpt-4o", "o1-preview"] {
        let model = SimLlm::new(model_name);
        let ion = Ion::new(&model);
        let prompt = Ion::prompt(&amrex.trace);
        let completion = model.complete(&simllm::CompletionRequest::new(
            "You are an I/O expert.",
            prompt,
        ));
        println!("================ {} ================", model_name);
        println!(
            "input tokens: {}  attended: {:.0}%  truncated: {}",
            completion.input_tokens,
            completion.retention * 100.0,
            completion.truncated
        );
        let d = ion.diagnose(&amrex.trace);
        println!("{}", d.text);
        let found = d.issue_set();
        let missed: Vec<&str> = amrex
            .labels()
            .into_iter()
            .filter(|l| !found.contains(l))
            .map(|l| l.display_name())
            .collect();
        println!("missed ground-truth issues: {missed:?}");
        let misconception = d.text.contains("optimal for minimizing");
        println!("repeats stripe-size misconception: {misconception}");
        if found.contains(&IssueLabel::MultiProcessWithoutMpi) {
            println!("NOTE: claims multi-process-without-MPI (wrong: MPI-IO rows were lost)");
        }
        println!();
    }
}
