//! Dump one TraceBench trace as `darshan-parser` text (for piping into the
//! `ioagent` CLI or external tools).
//!
//! Run with: `cargo run --release --bin dump_trace -p ioagent-bench -- <trace_id>`

use tracebench::TraceBench;

fn main() {
    let id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ra_amrex".to_string());
    let suite = TraceBench::generate();
    match suite.get(&id) {
        Some(entry) => print!("{}", darshan::write::write_text(&entry.trace)),
        None => {
            eprintln!("unknown trace id {id:?}");
            for e in &suite.entries {
                eprintln!("  {}", e.spec.id);
            }
            std::process::exit(1);
        }
    }
}
