//! Regenerates the evidence behind **Figure 4**: the three prompt
//! augmentations (anonymisation, rank-order rotation, content rotation)
//! eliminate positional and name bias in LLM-based ranking.
//!
//! Identical candidate reports are ranked with each augmentation
//! configuration; a fair judge should produce a flat mean-rank-per-position
//! profile. The spread (max − min mean rank) quantifies residual bias.
//!
//! Run with: `cargo run --release --bin fig4_judge_bias -p ioagent-bench`

use judge::bias::{position_bias_spread, position_rank_matrix, tool_rank_means};
use judge::{Augmentations, ToolRun};
use simllm::{Diagnosis, SimLlm};
use tracebench::TraceBench;

fn identical_runs(suite: &TraceBench, names: &[&str]) -> Vec<ToolRun> {
    names
        .iter()
        .map(|name| ToolRun {
            tool: name.to_string(),
            diagnoses: suite
                .entries
                .iter()
                .map(|e| {
                    let mut text = String::from("Diagnosis report\n");
                    for l in e.spec.labels {
                        text.push_str(&format!(
                            "Issue: {}\n  observed in the trace (data: counters)\n  \
                             Recommendation: address it.\n",
                            l.display_name()
                        ));
                    }
                    Diagnosis::from_text(name.to_string(), text)
                })
                .collect(),
        })
        .collect()
}

fn main() {
    let suite = TraceBench::generate();
    // Content is identical across "tools": only bias can separate them.
    let names = ["Drishti", "ION", "IOAgent", "OtherTool"];
    let runs = identical_runs(&suite, &names);
    let model = SimLlm::new("gpt-4o");

    let configs: [(&str, Augmentations); 4] = [
        ("no augmentation", Augmentations::NONE),
        (
            "A (anonymise)",
            Augmentations {
                anonymize: true,
                rotate_rank_order: false,
                rotate_content: false,
            },
        ),
        (
            "A+B (+ rank-order rotation)",
            Augmentations {
                anonymize: true,
                rotate_rank_order: true,
                rotate_content: false,
            },
        ),
        ("A+B+C (full, paper config)", Augmentations::FULL),
    ];

    println!("Fig. 4 — judge bias vs prompt augmentations (identical candidates)\n");
    println!("(a) mean assigned rank per PROMPT POSITION (the model's intrinsic bias):");
    println!(
        "{:<30} {:>7} {:>7} {:>7} {:>7} {:>8}",
        "configuration", "pos 1", "pos 2", "pos 3", "pos 4", "spread"
    );
    for (label, aug) in configs {
        let profile = position_rank_matrix(&model, &suite, &runs, aug);
        let spread = position_bias_spread(&profile);
        println!(
            "{:<30} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2}",
            label, profile[0], profile[1], profile[2], profile[3], spread
        );
    }
    println!("\n(b) mean assigned rank per TOOL (what leaks into the scores; fair = 2.50 each):");
    println!(
        "{:<30} {:>9} {:>7} {:>9} {:>10} {:>8}",
        "configuration", names[0], names[1], names[2], names[3], "spread"
    );
    for (label, aug) in configs {
        let means = tool_rank_means(&model, &suite, &runs, aug);
        let spread = position_bias_spread(&means);
        println!(
            "{:<30} {:>9.2} {:>7.2} {:>9.2} {:>10.2} {:>8.2}",
            label, means[0], means[1], means[2], means[3], spread
        );
    }
    println!("\nThe model stays position-biased in (a); the augmentations cancel what");
    println!("reaches the per-tool scores in (b): spread collapses under A+B+C.");
}
