//! Regenerates **Table III**: the TraceBench suite composition — labelled
//! issue counts per source (Simple-Bench / IO500 / Real-Applications).
//!
//! Also verifies, via the reference detector, that every generated trace
//! exhibits exactly its planted labels.
//!
//! Run with: `cargo run --release --bin table3_tracebench -p ioagent-bench`

use tracebench::{reference_detect, IssueLabel, TraceBench};

fn main() {
    let suite = TraceBench::generate();
    println!("Table III — Summary of traces and labeled issues\n");
    println!("{}", suite.table3().render());

    // Self-check: planted labels == detected labels for all 40 traces.
    let mut ok = 0;
    for entry in &suite.entries {
        let detected: Vec<IssueLabel> = reference_detect(&entry.trace).into_iter().collect();
        let expected = entry.labels();
        if detected == expected {
            ok += 1;
        } else {
            eprintln!(
                "MISMATCH {}: {:?} vs {:?}",
                entry.spec.id, detected, expected
            );
        }
    }
    println!(
        "reference-detector self-check: {ok}/{} traces exact",
        suite.len()
    );

    println!("\ntrace inventory:");
    for entry in &suite.entries {
        println!(
            "  {:<28} {:<6} nprocs={:<3} files={:<5} lines≈{:<6} labels={}",
            entry.spec.id,
            entry.spec.source.short(),
            entry.spec.nprocs,
            entry.spec.file_count,
            entry.trace.parser_line_estimate(),
            entry.spec.labels.len()
        );
    }
}
