//! Ablation study: remove each IOAgent mechanism and measure what breaks.
//!
//! Arms (all gpt-4o backbone):
//! - **full**       — the paper's configuration;
//! - **no-rag**     — skip retrieval entirely (no grounding, no citations);
//! - **no-nl** — query the vector index with raw JSON instead of the
//!   natural-language transformation (paper §IV-B.1);
//! - **flat-merge** — one-step merge instead of the pairwise tree (Fig. 6);
//! - **ion**        — for reference: no pipeline at all (direct prompt).
//!
//! Run with: `cargo run --release --bin ablation_ioagent -p ioagent-bench`

use baselines::Ion;
use ioagent_bench::recall_precision;
use ioagent_core::{AgentConfig, IoAgent, MergeStrategy};
use simllm::{Diagnosis, SimLlm};
use tracebench::TraceBench;

fn main() {
    let suite = TraceBench::generate();
    println!(
        "IOAgent ablations over all {} TraceBench traces (gpt-4o backbone)\n",
        suite.len()
    );
    println!(
        "{:<12} {:>7} {:>10} {:>12} {:>14}",
        "arm", "recall", "precision", "refs/trace", "misconceptions"
    );

    let arms: Vec<(&str, AgentConfig)> = vec![
        ("full", AgentConfig::default()),
        (
            "no-rag",
            AgentConfig {
                use_rag: false,
                ..AgentConfig::default()
            },
        ),
        (
            "no-nl",
            AgentConfig {
                nl_transform: false,
                ..AgentConfig::default()
            },
        ),
        (
            "flat-merge",
            AgentConfig {
                merge: MergeStrategy::Flat,
                ..AgentConfig::default()
            },
        ),
    ];

    for (name, config) in arms {
        let model = SimLlm::new("gpt-4o");
        let agent = IoAgent::with_config(&model, config);
        let diagnoses: Vec<Diagnosis> = suite
            .entries
            .iter()
            .map(|e| agent.diagnose(&e.trace))
            .collect();
        report(name, &suite, &diagnoses);
    }

    let model = SimLlm::new("gpt-4o");
    let ion = Ion::new(&model);
    let diagnoses: Vec<Diagnosis> = suite
        .entries
        .iter()
        .map(|e| ion.diagnose(&e.trace))
        .collect();
    report("ion", &suite, &diagnoses);

    println!(
        "\nRAG carries grounding: without it citations vanish and ungrounded\n\
         misconceptions suppress findings (visible as the recall drop; IOAgent's\n\
         merge strips the misconception prose itself, while ION's direct output\n\
         keeps it — hence the nonzero count only on the ion row). The tree merge\n\
         carries completeness: flat merging halves recall, exactly Fig. 6 at scale."
    );
}

fn report(name: &str, suite: &TraceBench, diagnoses: &[Diagnosis]) {
    let (recall, precision) = recall_precision(suite, diagnoses);
    let refs: usize = diagnoses.iter().map(|d| d.references.len()).sum();
    let misconceptions = diagnoses
        .iter()
        .filter(|d| d.text.contains("optimal for minimizing"))
        .count();
    println!(
        "{:<12} {:>7.3} {:>10.3} {:>12.2} {:>14}",
        name,
        recall,
        precision,
        refs as f64 / suite.len() as f64,
        misconceptions
    );
}
