//! Regenerates **Table I**: coverage of summary categories across Darshan
//! modules, straight from the pre-processor's extraction registry.
//!
//! Run with: `cargo run --bin table1_coverage -p ioagent-bench`

use darshan::counters::Module;
use preprocessor::{coverage, SummaryCategory};

fn main() {
    println!("Table I — Coverage of Summary Categories Across Darshan Modules\n");
    print!("{:<8}", "Module");
    for c in SummaryCategory::ALL {
        print!(" {:>18}", c.display());
    }
    println!();
    for m in Module::ALL {
        print!("{:<8}", m.as_str());
        let covered = coverage(m);
        for c in SummaryCategory::ALL {
            print!(" {:>18}", if covered.contains(&c) { "x" } else { "-" });
        }
        println!();
    }
    let total: usize = Module::ALL.iter().map(|&m| coverage(m).len()).sum();
    println!("\n{total} (module, category) extraction functions registered.");
}
