//! Regenerates **Table II**: the TraceBench issue-label taxonomy with
//! descriptions.
//!
//! Run with: `cargo run --bin table2_labels -p ioagent-bench`

use tracebench::IssueLabel;

fn main() {
    println!("Table II — I/O Issues and Descriptions\n");
    for label in IssueLabel::ALL {
        println!("{:<38} {}", label.display_name(), label.description());
    }
    println!("\n{} labels.", IssueLabel::ALL.len());
}
