//! Shared harness for regenerating every table and figure of the IOAgent
//! paper. Each `src/bin/*` binary prints one artifact; the Criterion
//! benches in `benches/` time the underlying pipelines.

pub mod synth;

use baselines::{Drishti, Ion};
use ioagent_core::IoAgent;
use judge::{Judge, ToolRun};
use simllm::{Diagnosis, SimLlm};
use tracebench::TraceBench;

/// The four competing tools of the paper's main evaluation, in Table IV row
/// order: Drishti, ION (gpt-4o), IOAgent-gpt-4o, IOAgent-llama-3.1-70B.
pub fn run_all_tools(suite: &TraceBench) -> Vec<ToolRun> {
    let drishti_run = ToolRun {
        tool: "Drishti".to_string(),
        diagnoses: suite
            .entries
            .iter()
            .map(|e| Drishti.diagnose(&e.trace))
            .collect(),
    };

    let ion_model = SimLlm::new("gpt-4o");
    let ion = Ion::new(&ion_model);
    let ion_run = ToolRun {
        tool: "ION".to_string(),
        diagnoses: suite
            .entries
            .iter()
            .map(|e| ion.diagnose(&e.trace))
            .collect(),
    };

    let gpt4o = SimLlm::new("gpt-4o");
    let agent_gpt4o = IoAgent::new(&gpt4o);
    let agent_gpt4o_run = ToolRun {
        tool: "IOAgent-gpt-4o".to_string(),
        diagnoses: suite
            .entries
            .iter()
            .map(|e| agent_gpt4o.diagnose(&e.trace))
            .collect(),
    };

    let llama = SimLlm::new("llama-3.1-70b");
    let agent_llama = IoAgent::new(&llama);
    let agent_llama_run = ToolRun {
        tool: "IOAgent-llama-3.1-70B".to_string(),
        diagnoses: suite
            .entries
            .iter()
            .map(|e| agent_llama.diagnose(&e.trace))
            .collect(),
    };

    vec![drishti_run, ion_run, agent_gpt4o_run, agent_llama_run]
}

/// Run the full Table IV pipeline: all tools over all 40 traces, judged by
/// GPT-4o with full augmentations and 4 permutations.
pub fn table4_evaluation(suite: &TraceBench) -> judge::Evaluation {
    let runs = run_all_tools(suite);
    let judge_model = SimLlm::new("gpt-4o");
    let judge = Judge::new(&judge_model);
    judge.evaluate(suite, &runs)
}

/// Per-tool label recall/precision over the suite (auxiliary diagnostics,
/// not a paper artifact but useful for EXPERIMENTS.md).
pub fn recall_precision(suite: &TraceBench, diagnoses: &[Diagnosis]) -> (f64, f64) {
    let mut hit = 0usize;
    let mut total = 0usize;
    let mut reported = 0usize;
    for (entry, d) in suite.entries.iter().zip(diagnoses) {
        let found = d.issue_set();
        reported += found.len();
        for l in entry.spec.labels {
            total += 1;
            if found.contains(l) {
                hit += 1;
            }
        }
    }
    let recall = hit as f64 / total.max(1) as f64;
    let precision = hit as f64 / reported.max(1) as f64;
    (recall, precision)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tools_produce_aligned_runs() {
        let mut suite = TraceBench::generate();
        suite.entries.truncate(4);
        let runs = run_all_tools(&suite);
        assert_eq!(runs.len(), 4);
        for r in &runs {
            assert_eq!(r.diagnoses.len(), 4, "{}", r.tool);
        }
    }
}
