//! Deterministic synthetic retrieval corpus shared by the retrieval and
//! batch benchmarks (`benches/retrieval.rs`, `benches/batch.rs`).
//!
//! Every function is seeded SplitMix64, so every run — on any machine —
//! builds the identical corpus and query set and therefore measures the
//! identical work. The vocabulary is domain-flavoured (stripe counts,
//! collective I/O, metadata storms) and documents are **topical**: each
//! document draws most of its tokens from one of [`TOPICS`] overlapping
//! vocabulary slices, the way real trace descriptions cluster around one
//! failure mode. That gives the embedding space genuine cluster structure
//! — which is what makes IVF recall measurements meaningful; a corpus of
//! uniform vocabulary soup has nothing for a coarse quantizer to find.

use vecindex::VectorIndex;

/// Chunk size the synthetic corpus is indexed with.
pub const CHUNK_SIZE: usize = 128;
/// Chunk overlap the synthetic corpus is indexed with.
pub const OVERLAP: usize = 16;

/// Domain-flavoured vocabulary the synthetic corpus draws from.
pub const VOCAB: &[&str] = &[
    "stripe",
    "ost",
    "mdt",
    "collective",
    "aggregate",
    "bandwidth",
    "latency",
    "metadata",
    "open",
    "stat",
    "close",
    "write",
    "read",
    "seek",
    "random",
    "sequential",
    "aligned",
    "misaligned",
    "shared",
    "independent",
    "posix",
    "mpiio",
    "stdio",
    "lustre",
    "gpfs",
    "buffer",
    "cache",
    "flush",
    "sync",
    "request",
    "transfer",
    "block",
    "chunk",
    "offset",
    "extent",
    "server",
    "client",
    "rank",
    "process",
    "node",
    "burst",
    "checkpoint",
];

/// SplitMix64 — deterministic streams, identical on every machine.
pub struct Rng(pub u64);

impl Rng {
    /// Next 64 mixed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform pick from a pool.
    pub fn pick<'a>(&mut self, pool: &[&'a str]) -> &'a str {
        pool[(self.next_u64() % pool.len() as u64) as usize]
    }
}

/// Distinct topics documents (and queries) cluster around.
pub const TOPICS: usize = 16;

/// Share (percent) of a topical text's tokens drawn from its topic slice;
/// the rest come from the full vocabulary, as real descriptions mix
/// topic-specific and generic I/O terms.
const TOPIC_SHARE: u64 = 85;

/// One token of a `topic`-flavoured text.
fn topical_token<'a>(rng: &mut Rng, topic: usize) -> &'a str {
    if rng.next_u64() % 100 < TOPIC_SHARE {
        // Overlapping 6-word slice of the vocabulary, rotated per topic.
        let i = (topic * 5 + (rng.next_u64() % 6) as usize) % VOCAB.len();
        VOCAB[i]
    } else {
        rng.pick(VOCAB)
    }
}

/// One synthetic document of roughly `tokens` vocabulary tokens around
/// one topic, with numeric tokens sprinkled in, as real trace text has.
pub fn synthetic_doc(rng: &mut Rng, tokens: usize, topic: usize) -> String {
    let mut text = String::with_capacity(tokens * 8);
    for _ in 0..tokens {
        text.push_str(topical_token(rng, topic));
        if rng.next_u64().is_multiple_of(7) {
            text.push_str(&format!(" {}", rng.next_u64() % 1_048_576));
        }
        text.push(' ');
    }
    text
}

/// Build the synthetic corpus: topic-rotating documents are appended
/// until the index holds at least `target_chunks` chunks.
pub fn build_corpus(target_chunks: usize) -> VectorIndex {
    let mut ix = VectorIndex::new(ioembed::Embedder::default(), CHUNK_SIZE, OVERLAP);
    let mut rng = Rng(0x10a6e27);
    let mut doc = 0usize;
    while ix.len() < target_chunks {
        let text = synthetic_doc(&mut rng, 1200, doc % TOPICS);
        ix.add_document(
            &format!("syn-{doc:05}"),
            &format!("[Synthetic {doc}, BENCH 2026]"),
            &text,
        );
        doc += 1;
    }
    ix
}

/// Build the million-scale corpus: `chunks` short (~24-token),
/// single-chunk documents embedded at `dim` lanes.
///
/// A separate builder rather than a parameter on [`build_corpus`], for two
/// reasons: the 10k benches' 1200-token documents would make a million
/// chunks unaffordable to embed (and their committed baselines depend on
/// `build_corpus` staying bit-identical), and short single-chunk documents
/// are the regime the million-chunk bench models — one chunk per trace
/// fragment description. Documents rotate through the same [`TOPICS`] as
/// the 10k corpus, so the embedding space keeps the cluster structure that
/// makes IVF recall measurements meaningful.
pub fn million_corpus(chunks: usize, dim: usize) -> VectorIndex {
    let mut ix = VectorIndex::new(ioembed::Embedder::new(dim), CHUNK_SIZE, OVERLAP);
    let mut rng = Rng(0x4d31_4c4c_494f_4e21);
    for doc in 0..chunks {
        let text = synthetic_doc(&mut rng, 24, doc % TOPICS);
        ix.add_document(
            &format!("m-{doc:07}"),
            &format!("[Million {doc}, BENCH 2026]"),
            &text,
        );
    }
    assert_eq!(ix.len(), chunks, "each short document must be one chunk");
    ix
}

/// A deterministic batch of `n` 24-token queries, query `i` flavoured
/// around topic `i % TOPICS` (so a batch mixes every topic, as concurrent
/// traffic from many users would).
pub fn batch_queries(n: usize) -> Vec<String> {
    let mut rng = Rng(0xbeefcafe);
    (0..n)
        .map(|i| {
            let mut q = format!("query {i}: ");
            for _ in 0..24 {
                q.push_str(topical_token(&mut rng, i % TOPICS));
                q.push(' ');
            }
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_and_queries_are_deterministic() {
        let a = build_corpus(64);
        let b = build_corpus(64);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            let bits_a: Vec<u32> = a.vector(i).iter().map(|f| f.to_bits()).collect();
            let bits_b: Vec<u32> = b.vector(i).iter().map(|f| f.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "chunk {i}");
        }
        assert_eq!(batch_queries(8), batch_queries(8));
    }

    #[test]
    fn million_corpus_is_single_chunk_and_deterministic() {
        let a = million_corpus(200, 64);
        let b = million_corpus(200, 64);
        assert_eq!(a.len(), 200, "one chunk per document");
        assert_eq!(a.embedder().dim, 64);
        for i in 0..a.len() {
            let bits_a: Vec<u32> = a.vector(i).iter().map(|f| f.to_bits()).collect();
            let bits_b: Vec<u32> = b.vector(i).iter().map(|f| f.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "chunk {i}");
        }
    }
}
