//! Merge-strategy benchmarks (the Fig. 6 time-overhead axis): the paper
//! notes the tree merge "introduces both additional time and monetary
//! overhead" versus a single flat merge — this quantifies it, alongside
//! the retention the overhead buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ioagent_core::merge::merge_blocks;
use ioagent_core::{MergeStrategy, SummaryBlock};
use simllm::SimLlm;
use std::hint::black_box;

fn blocks(n: usize) -> Vec<SummaryBlock> {
    (0..n)
        .map(|i| {
            SummaryBlock::new(
                format!("S{i}"),
                vec![format!(
                    "- POINT[k{i}] Issue: finding {i} with supporting data ;; REFS: [Doc {i}, V 2021]"
                )],
            )
        })
        .collect()
}

fn bench_merge(c: &mut Criterion) {
    let model = SimLlm::new("gpt-4o");
    let mut group = c.benchmark_group("merge");
    group.sample_size(20);
    for n in [4usize, 8, 13, 18] {
        let input = blocks(n);
        group.bench_with_input(BenchmarkId::new("tree", n), &input, |b, input| {
            b.iter(|| black_box(merge_blocks(&model, input.clone(), MergeStrategy::Tree)))
        });
        group.bench_with_input(BenchmarkId::new("flat", n), &input, |b, input| {
            b.iter(|| black_box(merge_blocks(&model, input.clone(), MergeStrategy::Flat)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
