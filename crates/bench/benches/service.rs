//! `ioagentd` throughput benchmark: wall-clock for a 64-trace heterogeneous
//! batch through the diagnosis service at 1 worker vs N workers, plus the
//! cache-hit fast path.
//!
//! Two scaling arms:
//!
//! - **cpu**: raw local compute. Scales with physical cores (on a 1-core
//!   container both widths are equivalent by construction).
//! - **rpc**: each fresh job additionally pays a simulated 20 ms
//!   remote-LLM round trip — the regime a deployed service actually runs
//!   in, where worker concurrency hides latency rather than splitting
//!   compute. This arm scales with the worker count on any machine.
//!
//! All service instances share one pre-built knowledge index so the
//! comparison isolates diagnosis throughput from index construction; the
//! result cache is disabled in the scaling arms so every job does real
//! work. A `speedup` summary is printed after the samples.
//!
//! A final **tracing-overhead** arm times the cpu batch with span tracing
//! off, then on (`--trace-dir`-style file tracer at the default stage
//! detail, installed via the set-once global, so it must run last), then
//! with tail-based sampling (`--trace-sample tail:p99`, which buffers
//! fine-detail spans per job and only flushes the slow ones). Diagnoses
//! must stay byte-identical across all three, and the min-of-N numbers
//! go to `BENCH_obs.json` at the repo root. With `BENCH_GATE=1` the run
//! fails if either tracing mode costs more than 3% of batch wall time
//! (with a 5 ms absolute noise floor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ioagentd::{DiagnosisService, JobRequest, Retriever, ServiceConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracebench::TraceBench;

const N_JOBS: usize = 64;
const RPC_LATENCY: Duration = Duration::from_millis(20);

/// 64 heterogeneous jobs: the 40 TraceBench traces cycled, with the model
/// alternating so repeated traces are still distinct (cache-busting) work.
fn workload(suite: &TraceBench) -> Vec<JobRequest> {
    let models = ["gpt-4o", "gpt-4o-mini", "llama-3.1-70b"];
    (0..N_JOBS)
        .map(|i| {
            let entry = &suite.entries[i % suite.entries.len()];
            let model = models[(i / suite.entries.len()) % models.len()];
            JobRequest::new(
                format!("job-{i}-{}", entry.spec.id),
                entry.trace.clone(),
                model,
            )
        })
        .collect()
}

fn timed_batch(service: &DiagnosisService, jobs: &[JobRequest]) -> Duration {
    let start = Instant::now();
    black_box(service.run_batch(jobs.to_vec()).unwrap());
    start.elapsed()
}

fn bench_service(c: &mut Criterion) {
    let suite = TraceBench::generate();
    let jobs = workload(&suite);
    let index = Arc::new(Retriever::build());
    let n_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4);

    let mut group = c.benchmark_group("service");
    group.sample_size(5);

    let mut summary: Vec<(String, Duration)> = Vec::new();
    for (arm, rpc) in [("cpu", Duration::ZERO), ("rpc", RPC_LATENCY)] {
        for workers in [1, n_workers] {
            let service = DiagnosisService::with_shared_index(
                ServiceConfig::with_workers(workers)
                    .cache_capacity(0)
                    .rpc_latency(rpc),
                Arc::clone(&index),
            );
            let label = format!("{arm}_{workers}worker");
            group.bench_with_input(BenchmarkId::new("batch64", &label), &jobs, |b, jobs| {
                b.iter(|| black_box(service.run_batch(jobs.to_vec()).unwrap()));
            });
            summary.push((label, timed_batch(&service, &jobs)));
            service.shutdown();
        }
    }

    // Combined grain: half the workers, each running its jobs over a
    // 2-thread intra-job shim pool — the same workers × intra-threads
    // budget as the plain rpc_N arm, but split across both grains. Shows
    // the thread-budget interaction (README "Parallelism model"); with the
    // per-JOB rpc sleep, job-level concurrency is what hides latency, so
    // this arm is expected to trail rpc_N on latency and match it on
    // correctness-relevant throughput shape.
    let combined_workers = (n_workers / 2).max(1);
    let combined = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(combined_workers)
            .intra_threads(2)
            .cache_capacity(0)
            .rpc_latency(RPC_LATENCY),
        Arc::clone(&index),
    );
    let combined_label = format!("rpc_combined_{combined_workers}x2");
    group.bench_with_input(
        BenchmarkId::new("batch64", &combined_label),
        &jobs,
        |b, jobs| {
            b.iter(|| black_box(combined.run_batch(jobs.to_vec()).unwrap()));
        },
    );
    summary.push((combined_label, timed_batch(&combined, &jobs)));
    combined.shutdown();

    // Cache arm: after the first batch, every job is answered from the LRU.
    let cached_service = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(n_workers).cache_capacity(2 * N_JOBS),
        Arc::clone(&index),
    );
    cached_service.run_batch(jobs.clone()).unwrap(); // warm the cache
    group.bench_with_input(
        BenchmarkId::new("batch64", "cache_hit"),
        &jobs,
        |b, jobs| {
            b.iter(|| black_box(cached_service.run_batch(jobs.to_vec()).unwrap()));
        },
    );
    summary.push(("cache_hit".into(), timed_batch(&cached_service, &jobs)));
    cached_service.shutdown();
    group.finish();

    println!("\nservice scaling summary ({N_JOBS} jobs, N = {n_workers} workers):");
    for (label, t) in &summary {
        println!("  {label:16} {t:>12.3?}");
    }
    let find = |l: &str| summary.iter().find(|(s, _)| s == l).map(|(_, t)| *t);
    if let (Some(one), Some(n)) = (
        find("rpc_1worker"),
        &find(&format!("rpc_{n_workers}worker")),
    ) {
        println!(
            "  rpc arm speedup: {:.2}x ({} workers vs 1)",
            one.as_secs_f64() / n.as_secs_f64(),
            n_workers
        );
    }
    if let (Some(one), Some(n)) = (
        find("cpu_1worker"),
        &find(&format!("cpu_{n_workers}worker")),
    ) {
        println!(
            "  cpu arm speedup: {:.2}x ({} workers vs 1)",
            one.as_secs_f64() / n.as_secs_f64(),
            n_workers
        );
    }
}

/// Tracing-overhead arm. Runs after `bench_service` (the global tracer
/// is set-once, so everything before this point measures the disabled
/// path): min-of-N cpu batches with tracing off, then the same batches
/// with a file tracer installed, byte-identity asserted between the two.
fn bench_tracing_overhead(_c: &mut Criterion) {
    let test_mode = std::env::args().any(|a| a == "--test");
    let samples = if test_mode { 1 } else { 7 };
    let suite = TraceBench::generate();
    let jobs = workload(&suite);
    let index = Arc::new(Retriever::build());
    let workers = 4;

    let min_of = |service: &DiagnosisService| -> (Duration, Vec<String>) {
        let texts = service
            .run_batch(jobs.clone())
            .unwrap()
            .into_iter()
            .map(|r| r.diagnosis.text)
            .collect();
        let best = (0..samples)
            .map(|_| timed_batch(service, &jobs))
            .min()
            .unwrap();
        (best, texts)
    };

    assert!(
        !ioobserve::tracer().enabled(),
        "tracing arm must start with the tracer disabled"
    );
    let off_service = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(workers).cache_capacity(0),
        Arc::clone(&index),
    );
    let (off_min, off_texts) = min_of(&off_service);
    off_service.shutdown();

    let trace_dir = std::env::temp_dir().join(format!("ioagentd-bench-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&trace_dir);
    let tracer = ioobserve::Tracer::to_dir(&trace_dir).expect("open trace dir");
    assert!(
        ioobserve::init_tracer(tracer),
        "a tracer was already installed; the overhead arm needs a fresh process"
    );
    let on_service = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(workers).cache_capacity(0),
        Arc::clone(&index),
    );
    let (on_min, on_texts) = min_of(&on_service);
    on_service.shutdown();

    assert_eq!(
        off_texts, on_texts,
        "tracing must not perturb diagnosis output"
    );
    let count_spans = |dir: &std::path::Path| {
        std::fs::read_dir(dir)
            .map(|dir| {
                dir.flatten()
                    .filter_map(|e| std::fs::read_to_string(e.path()).ok())
                    .map(|text| text.lines().count())
                    .sum::<usize>()
            })
            .unwrap_or(0)
    };
    let spans_written = count_spans(&trace_dir);
    let _ = std::fs::remove_dir_all(&trace_dir);

    // Tail-sampled arm: fine detail buffered per job, flushed only for
    // the slow tail — the worst case for sampling bookkeeping. The
    // global tracer is already set, so this arm swaps it via
    // `install_tracer` (the multi-arm escape hatch).
    let tail_rule = ioobserve::TailRule::parse("p99").expect("tail rule");
    let tail_dir = std::env::temp_dir().join(format!("ioagentd-bench-tail-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tail_dir);
    let tail_tracer = ioobserve::Tracer::to_dir(&tail_dir)
        .expect("open tail trace dir")
        .with_tail_sampling(tail_rule);
    ioobserve::install_tracer(tail_tracer);
    let tail_service = DiagnosisService::with_shared_index(
        ServiceConfig::with_workers(workers).cache_capacity(0),
        Arc::clone(&index),
    );
    let (tail_min, tail_texts) = min_of(&tail_service);
    tail_service.shutdown();
    assert_eq!(
        off_texts, tail_texts,
        "tail sampling must not perturb diagnosis output"
    );
    ioobserve::tracer().flush();
    let tail_spans = count_spans(&tail_dir);
    let _ = std::fs::remove_dir_all(&tail_dir);

    let overhead = (on_min.as_secs_f64() - off_min.as_secs_f64()) / off_min.as_secs_f64();
    let tail_overhead = (tail_min.as_secs_f64() - off_min.as_secs_f64()) / off_min.as_secs_f64();
    println!(
        "\ntracing overhead ({N_JOBS} jobs, {workers} workers, min of {samples}): \
         off {off_min:.3?}, on {on_min:.3?} ({:+.2}%), {spans_written} spans written; \
         tail {tail_min:.3?} ({:+.2}%), {tail_spans} spans written",
        overhead * 100.0,
        tail_overhead * 100.0
    );

    if test_mode {
        println!("bench service tracing arm: ok (test mode, JSON/gate skipped)");
        return;
    }

    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = serde_json::json!({
        "bench": "service_tracing_overhead",
        "trace_detail": "stage",
        "jobs": N_JOBS,
        "workers": workers,
        "samples": samples,
        "tracing_off_min_ms": off_min.as_secs_f64() * 1e3,
        "tracing_on_min_ms": on_min.as_secs_f64() * 1e3,
        "overhead_pct": overhead * 100.0,
        "spans_written": spans_written,
        "tail_rule": "tail:p99",
        "tracing_tail_min_ms": tail_min.as_secs_f64() * 1e3,
        "tail_overhead_pct": tail_overhead * 100.0,
        "tail_spans_written": tail_spans,
        "generated_unix": generated_unix,
    });
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    std::fs::write(
        &path,
        format!("{}\n", serde_json::to_string(&record).unwrap()),
    )
    .expect("write BENCH_obs.json");
    println!("wrote {}", path.display());

    if std::env::var("BENCH_GATE").is_ok() {
        // Same-run ratio: machine-independent. The absolute floor keeps a
        // sub-noise delta on a very fast batch from false-redding.
        let mut failed = false;
        for (label, on, pct) in [
            ("tracing", on_min, overhead),
            ("tail sampling", tail_min, tail_overhead),
        ] {
            let absolute = on.saturating_sub(off_min);
            if pct < 0.03 || absolute < Duration::from_millis(5) {
                println!(
                    "gate: OK ({label} overhead {:.2}% < 3%)",
                    pct.max(0.0) * 100.0
                );
            } else {
                eprintln!(
                    "REGRESSION: {label} overhead {:.2}% exceeds the 3% budget \
                     (off {off_min:.3?}, on {on:.3?})",
                    pct * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}

criterion_group!(benches, bench_service, bench_tracing_overhead);
criterion_main!(benches);
