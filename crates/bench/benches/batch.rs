//! Batch-retrieval benchmark: the query-blocked kernel and IVF probing
//! (ISSUE 5), and the second perf-trajectory datapoint next to
//! `BENCH_retrieval.json`.
//!
//! PR 4 left the 64-query batch DRAM-bandwidth-bound: each query streamed
//! the whole 10k × 256 arena by itself, so 4 threads were as fast as 1.
//! This bench measures the two fixes on the same deterministic synthetic
//! corpus the retrieval bench uses:
//!
//! - **per-query loop** — the PR 4 `search_batch` (one full arena stream
//!   per query, queries in parallel), replicated here as the baseline;
//! - **query-blocked batch** — `search_batch` streaming the arena once
//!   per 8-query block (`dot_block_batch` / `dot_multi`), byte-identical
//!   results, asserted before timing;
//! - **IVF probing** at `nprobe ∈ {1, default, all}` over 32 coarse
//!   clusters — recall@15 against the exact flat top-15 plus throughput,
//!   with `nprobe = all` asserted byte-identical to the flat scan.
//!
//! Results go to `BENCH_batch.json` at the repo root. With `BENCH_GATE=1`
//! the run **fails** (exit 1) when the same-run batch speedup at the
//! default nprobe falls below 3× the per-query loop, when recall@15 at
//! the default nprobe falls below 0.95, or when throughput regresses >2×
//! against the committed baseline while the (machine-independent)
//! same-run speedup also collapsed. `--test` runs one iteration per arm
//! as a smoke test and skips the JSON write and the gate.

use ioagent_bench::synth;
use std::hint::black_box;
use std::time::{Duration, Instant};
use vecindex::SearchHit;

const TARGET_CHUNKS: usize = 10_000;
const TOP_K: usize = 15;
const BATCH: usize = 64;
/// Coarse clusters the IVF arm builds over the 10k-chunk corpus.
const CLUSTERS: usize = 32;
/// The default probe width (`IvfParams::with_default_nprobe`: an eighth
/// of the clusters) — the configuration the gate holds to ≥ 3× speedup
/// and ≥ 0.95 recall@15.
const DEFAULT_NPROBE: usize = CLUSTERS / 8;
const MIN_SPEEDUP: f64 = 3.0;
const MIN_RECALL: f64 = 0.95;

fn at_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .unwrap()
        .install(f)
}

/// Median-of-samples timing (1 warm-up call), returning (median, min).
fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> (Duration, Duration) {
    black_box(f());
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    (times[times.len() / 2], times[0])
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn bits(batch: &[Vec<SearchHit>]) -> Vec<Vec<(u32, usize)>> {
    batch
        .iter()
        .map(|hits| {
            hits.iter()
                .map(|h| (h.score.to_bits(), h.entry_idx))
                .collect()
        })
        .collect()
}

/// Mean recall@k of `approx` against the exact per-query top-k sets.
fn recall_at_k(exact: &[Vec<SearchHit>], approx: &[Vec<SearchHit>]) -> f64 {
    assert_eq!(exact.len(), approx.len());
    let mut total = 0.0f64;
    for (e, a) in exact.iter().zip(approx) {
        if e.is_empty() {
            total += 1.0;
            continue;
        }
        let found = e
            .iter()
            .filter(|h| a.iter().any(|x| x.entry_idx == h.entry_idx))
            .count();
        total += found as f64 / e.len() as f64;
    }
    total / exact.len().max(1) as f64
}

fn repo_root_bench_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_batch.json")
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let samples = |full: usize| if test_mode { 1 } else { full };

    // Read the committed baseline *before* overwriting it.
    let baseline: Option<serde_json::Value> = std::fs::read_to_string(repo_root_bench_path())
        .ok()
        .and_then(|raw| serde_json::from_str(&raw).ok());
    let baseline_field =
        |name: &str| -> Option<f64> { baseline.as_ref()?.get(name).and_then(|x| x.as_f64()) };

    println!("building synthetic corpus ({TARGET_CHUNKS}+ chunks)…");
    let flat = synth::build_corpus(TARGET_CHUNKS);
    let n = flat.len();
    let dim = flat.embedder().dim;
    let queries = synth::batch_queries(BATCH);
    println!("corpus ready: {n} chunks × {dim} lanes, {BATCH} queries");

    // The exact per-query answers (flat engine, sequential) are both the
    // ground truth for recall and the equivalence spec for the kernels.
    let exact: Vec<Vec<SearchHit>> = at_width(1, || {
        queries.iter().map(|q| flat.search(q, TOP_K)).collect()
    });

    // Correctness before speed: the query-blocked batch must be
    // byte-identical to per-query searches at both widths.
    for width in [1usize, 4] {
        let blocked = at_width(width, || flat.search_batch(&queries, TOP_K));
        assert_eq!(
            bits(&blocked),
            bits(&exact),
            "query-blocked batch diverged from per-query search at width {width}"
        );
    }
    println!("blocked-batch/per-query equivalence: OK (byte-identical at widths 1, 4)");

    println!("clustering: {CLUSTERS} coarse centroids (deterministic seeded k-means)…");
    let mut ivf = flat.clone();
    ivf.enable_ivf(CLUSTERS, DEFAULT_NPROBE);
    assert_eq!(ivf.ivf().unwrap().clusters(), CLUSTERS);

    // Exact-mode IVF (`nprobe = all`) must be byte-identical to the flat
    // scan — probing restricts which rows are scored, never their scores.
    let mut exact_mode = ivf.clone();
    exact_mode.set_nprobe(CLUSTERS);
    let all_hits = at_width(1, || exact_mode.search_batch(&queries, TOP_K));
    assert_eq!(
        bits(&all_hits),
        bits(&exact),
        "nprobe = all diverged from the exact flat scan"
    );
    println!("IVF exact-mode equivalence: OK (nprobe = {CLUSTERS} byte-identical)");

    // ---- per-query loop (the PR 4 batch path) ----------------------------
    let (perquery_med, perquery_min) = at_width(4, || {
        time(samples(10), || {
            use rayon::prelude::*;
            black_box(
                queries
                    .par_iter()
                    .map(|q| flat.search(q, TOP_K))
                    .collect::<Vec<_>>(),
            )
        })
    });
    println!(
        "bench batch/batch64_perquery_threads4: median {:.2} ms (min {:.2} ms)",
        ms(perquery_med),
        ms(perquery_min)
    );

    // ---- query-blocked batch, flat ---------------------------------------
    let mut blocked_ms = [0.0f64; 2];
    for (slot, width) in [1usize, 4].into_iter().enumerate() {
        let (med, min) = at_width(width, || {
            time(samples(10), || {
                black_box(flat.search_batch(&queries, TOP_K))
            })
        });
        println!(
            "bench batch/batch64_blocked_threads{width}: median {:.2} ms (min {:.2} ms)",
            ms(med),
            ms(min)
        );
        blocked_ms[slot] = ms(med);
    }

    // ---- IVF probing arms ------------------------------------------------
    let mut ivf_ms = std::collections::BTreeMap::new();
    let mut recalls = std::collections::BTreeMap::new();
    for nprobe in [1usize, DEFAULT_NPROBE, CLUSTERS] {
        let mut ix = ivf.clone();
        ix.set_nprobe(nprobe);
        let hits = at_width(4, || ix.search_batch(&queries, TOP_K));
        let recall = recall_at_k(&exact, &hits);
        let (med, min) = at_width(4, || {
            time(samples(10), || black_box(ix.search_batch(&queries, TOP_K)))
        });
        println!(
            "bench batch/batch64_ivf_nprobe{nprobe}: median {:.2} ms (min {:.2} ms) \
             recall@{TOP_K} {recall:.4}",
            ms(med),
            ms(min)
        );
        ivf_ms.insert(nprobe, ms(med));
        recalls.insert(nprobe, recall);
    }
    assert_eq!(recalls[&CLUSTERS], 1.0, "exact mode must recall everything");

    let default_ms = ivf_ms[&DEFAULT_NPROBE];
    let default_recall = recalls[&DEFAULT_NPROBE];
    let speedup_blocked = ms(perquery_med) / blocked_ms[1].max(1e-9);
    let speedup_default = ms(perquery_med) / default_ms.max(1e-9);
    println!(
        "64-query batch speedup over the PR 4 per-query loop: blocked {speedup_blocked:.1}x, \
         blocked+IVF(nprobe={DEFAULT_NPROBE}) {speedup_default:.1}x"
    );

    if test_mode {
        println!("bench batch: ok (test mode, 1 iteration per arm, JSON/gate skipped)");
        return;
    }

    // ---- BENCH_batch.json at the repo root -------------------------------
    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = serde_json::json!({
        "bench": "batch",
        "corpus_chunks": n,
        "dim": dim,
        "top_k": TOP_K,
        "batch": BATCH,
        "ivf_clusters": CLUSTERS,
        "default_nprobe": DEFAULT_NPROBE,
        "batch64_perquery_threads4_ms": ms(perquery_med),
        "batch64_blocked_threads1_ms": blocked_ms[0],
        "batch64_blocked_threads4_ms": blocked_ms[1],
        "batch64_ivf_nprobe1_ms": ivf_ms[&1],
        "batch64_ivf_default_ms": default_ms,
        "batch64_ivf_all_ms": ivf_ms[&CLUSTERS],
        "recall_nprobe1": recalls[&1],
        "recall_default": default_recall,
        "speedup_blocked": speedup_blocked,
        "speedup_default": speedup_default,
        "generated_unix": generated_unix,
    });
    let path = repo_root_bench_path();
    std::fs::write(
        &path,
        format!("{}\n", serde_json::to_string(&record).unwrap()),
    )
    .expect("write BENCH_batch.json");
    println!("wrote {}", path.display());

    // ---- multi-metric gate -----------------------------------------------
    if std::env::var("BENCH_GATE").is_ok() {
        let mut failures: Vec<String> = Vec::new();
        // Recall and same-run speedup are machine-independent: hard gates.
        if default_recall < MIN_RECALL {
            failures.push(format!(
                "recall@{TOP_K} at nprobe={DEFAULT_NPROBE} is {default_recall:.4} \
                 (floor {MIN_RECALL})"
            ));
        }
        if speedup_default < MIN_SPEEDUP {
            failures.push(format!(
                "batch speedup at default nprobe is {speedup_default:.1}x \
                 (floor {MIN_SPEEDUP}x over the per-query loop)"
            ));
        }
        // Throughput vs the committed baseline needs both signals — the
        // absolute >2× check AND a collapsed same-run ratio — so a slow
        // CI machine that inflates every arm equally cannot false-red.
        if let (Some(base_ms), Some(base_speedup)) = (
            baseline_field("batch64_ivf_default_ms"),
            baseline_field("speedup_default"),
        ) {
            let absolute_regressed = default_ms > 2.0 * base_ms;
            let ratio_collapsed = speedup_default < base_speedup / 2.0;
            if absolute_regressed && ratio_collapsed {
                failures.push(format!(
                    "default-nprobe batch {default_ms:.1} ms is more than 2× the committed \
                     baseline {base_ms:.1} ms AND the same-run speedup collapsed to \
                     {speedup_default:.1}x (baseline {base_speedup:.1}x)"
                ));
            } else if absolute_regressed {
                println!(
                    "gate: {default_ms:.1} ms exceeds 2× baseline {base_ms:.1} ms but the \
                     same-run speedup is still {speedup_default:.1}x — slow machine, not a \
                     regression; passing"
                );
            }
        } else {
            println!("gate: no committed batch baseline found — skipping throughput comparison");
        }
        if failures.is_empty() {
            println!(
                "gate: OK (recall {default_recall:.4}, speedup {speedup_default:.1}x at \
                 nprobe {DEFAULT_NPROBE})"
            );
        } else {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}
