//! Million-chunk retrieval benchmark: cluster-major IVF + the SQ8 scan
//! tier (ISSUE 10), and the scale datapoint next to `BENCH_batch.json`.
//!
//! The 10k-chunk benches established the query-blocked kernel and IVF
//! probing; this bench grows the corpus two orders of magnitude (1M
//! short single-chunk documents at 64 lanes) and measures the two ISSUE
//! 10 changes on it:
//!
//! - **f32 probe** — the PR 5-style path: probe `NPROBE` of `CLUSTERS`
//!   coarse clusters, scan the probed rows in full f32 over the
//!   cluster-major arena;
//! - **SQ8 + rerank** — scan the same probed rows over int8 codes to
//!   select a `RERANK_POOL`-sized candidate pool, then rerank the pool
//!   with exact f32 cosine. Returned scores are always exact.
//!
//! Correctness is asserted before any timing: the flat engine matches
//! `vecindex::reference` byte for byte on spot-check queries, SQ8 with a
//! pool covering every probed row is byte-identical to the f32 probe
//! path, and SQ8 at `nprobe = all` with a full pool is byte-identical to
//! the reference scan. The cluster-major memory claim is asserted too:
//! f32 vector memory of the clustered index (arena + centroids) must stay
//! within 1.1× the raw vectors — the duplicate packed copies are gone.
//!
//! Results go to `BENCH_million.json` at the repo root (override the path
//! with `BENCH_MILLION_OUT`, e.g. for the `-C target-cpu=native` CI arm;
//! override the corpus size with `BENCH_MILLION_CHUNKS`). With
//! `BENCH_GATE=1` the run **fails** (exit 1) when SQ8 recall@15 against
//! the exact flat top-15 falls below 0.95, when the same-run SQ8 speedup
//! over the f32 probe path falls below 2×, or when per-query latency
//! regresses >2× against the committed baseline while the
//! (machine-independent) same-run speedup also collapsed. `--test` runs a
//! reduced corpus with one iteration per arm and skips the JSON write and
//! the gate.

use ioagent_bench::synth;
use std::hint::black_box;
use std::time::{Duration, Instant};
use vecindex::{reference, SearchHit, VectorIndex};

/// Corpus size of the committed run (`BENCH_MILLION_CHUNKS` overrides).
const DEFAULT_CHUNKS: usize = 1_000_000;
/// Reduced corpus for `--test` smoke runs.
const TEST_CHUNKS: usize = 20_000;
/// Embedding lanes — deliberately narrower than the 256-lane knowledge
/// index so a million chunks stay affordable to embed and cluster.
const DIM: usize = 64;
const CLUSTERS: usize = 256;
/// Clusters probed per query by both timed arms.
const NPROBE: usize = 8;
const TOP_K: usize = 15;
const QUERIES: usize = 64;
/// SQ8 candidates reranked in exact f32 per query (the default arm).
const RERANK_POOL: usize = 128;
/// Queries spot-checked against the O(n) reference scan-score-sort spec.
const REFERENCE_SPOT_CHECKS: usize = 4;
const MIN_RECALL: f64 = 0.95;
const MIN_SPEEDUP: f64 = 2.0;
const MAX_MEMORY_RATIO: f64 = 1.1;

/// Median-of-samples timing (1 warm-up call), returning (median, min).
fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> (Duration, Duration) {
    black_box(f());
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    (times[times.len() / 2], times[0])
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn bits(hits: &[SearchHit]) -> Vec<(u32, usize)> {
    hits.iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect()
}

/// Mean recall@k of `approx` against the exact per-query top-k sets.
fn recall_at_k(exact: &[Vec<SearchHit>], approx: &[Vec<SearchHit>]) -> f64 {
    assert_eq!(exact.len(), approx.len());
    let mut total = 0.0f64;
    for (e, a) in exact.iter().zip(approx) {
        if e.is_empty() {
            total += 1.0;
            continue;
        }
        let found = e
            .iter()
            .filter(|h| a.iter().any(|x| x.entry_idx == h.entry_idx))
            .count();
        total += found as f64 / e.len() as f64;
    }
    total / exact.len().max(1) as f64
}

fn search_all(ix: &VectorIndex, queries: &[String]) -> Vec<Vec<SearchHit>> {
    queries.iter().map(|q| ix.search(q, TOP_K)).collect()
}

fn repo_root_bench_path() -> std::path::PathBuf {
    let name =
        std::env::var("BENCH_MILLION_OUT").unwrap_or_else(|_| "BENCH_million.json".to_string());
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../{name}"))
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let samples = |full: usize| if test_mode { 1 } else { full };
    let chunks = std::env::var("BENCH_MILLION_CHUNKS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if test_mode {
            TEST_CHUNKS
        } else {
            DEFAULT_CHUNKS
        });

    // Read the committed baseline *before* overwriting it.
    let baseline: Option<serde_json::Value> = std::fs::read_to_string(repo_root_bench_path())
        .ok()
        .and_then(|raw| serde_json::from_str(&raw).ok());
    let baseline_field =
        |name: &str| -> Option<f64> { baseline.as_ref()?.get(name).and_then(|x| x.as_f64()) };

    println!("building million-scale corpus ({chunks} chunks × {DIM} lanes)…");
    let build_start = Instant::now();
    let flat = synth::million_corpus(chunks, DIM);
    let n = flat.len();
    let queries = synth::batch_queries(QUERIES);
    println!(
        "corpus ready: {n} chunks × {DIM} lanes in {:.1} s, {QUERIES} queries",
        build_start.elapsed().as_secs_f64()
    );

    // The exact per-query answers (flat engine) are both the ground truth
    // for recall and the equivalence spec for the probed arms; the flat
    // engine itself is pinned to the O(n·q) reference scan-score-sort on
    // spot-check queries.
    let exact = search_all(&flat, &queries);
    for (i, q) in queries.iter().take(REFERENCE_SPOT_CHECKS).enumerate() {
        assert_eq!(
            bits(&exact[i]),
            bits(&reference::search(&flat, q, TOP_K)),
            "flat engine diverged from vecindex::reference on query {i}"
        );
    }
    println!("reference equivalence: OK ({REFERENCE_SPOT_CHECKS} spot-check queries)");

    // ---- flat full-scan arm (context) ------------------------------------
    let (flat_med, _) = time(samples(3), || black_box(search_all(&flat, &queries)));
    println!(
        "bench million/flat_full_scan: median {:.2} ms/query",
        ms(flat_med) / QUERIES as f64
    );

    println!("clustering: {CLUSTERS} coarse centroids (deterministic seeded k-means)…");
    let cluster_start = Instant::now();
    let mut ivf_ix = flat;
    ivf_ix.enable_ivf(CLUSTERS, NPROBE);
    let clusters = ivf_ix.ivf().unwrap().clusters();
    println!(
        "clustered into {clusters} lists in {:.1} s",
        cluster_start.elapsed().as_secs_f64()
    );

    // Cluster-major memory claim: the arena holds exactly one f32 copy of
    // the vectors (plus norms), and the quantizer adds only centroids —
    // the per-cluster packed duplicates of the previous layout are gone.
    let ivf = ivf_ix.ivf().unwrap();
    let f32_vector_bytes = ivf_ix.arena().f32_bytes()
        + (ivf.centroids().len() + ivf.clusters()) * std::mem::size_of::<f32>();
    let raw_bytes = n * DIM * std::mem::size_of::<f32>();
    let memory_ratio = f32_vector_bytes as f64 / raw_bytes as f64;
    assert!(
        memory_ratio <= MAX_MEMORY_RATIO,
        "clustered f32 vector memory is {memory_ratio:.3}× raw vectors \
         (cap {MAX_MEMORY_RATIO}×): {f32_vector_bytes} vs {raw_bytes} bytes"
    );
    println!(
        "clustered f32 vector memory: {:.1} MiB = {memory_ratio:.3}× raw vectors (cap \
         {MAX_MEMORY_RATIO}×)",
        f32_vector_bytes as f64 / (1024.0 * 1024.0)
    );

    // ---- byte-identity: SQ8 + rerank vs the f32 probe path ---------------
    // With a pool covering every probed row, the rerank re-scores exactly
    // the rows the f32 path scores — the int8 scan only reorders which
    // candidates enter the pool, so the returned top-k must be
    // byte-identical.
    let f32_hits = search_all(&ivf_ix, &queries);
    let mut sq8_full_pool = ivf_ix.clone();
    sq8_full_pool.enable_sq8(n);
    let full_pool_hits = search_all(&sq8_full_pool, &queries);
    for (i, (a, b)) in f32_hits.iter().zip(&full_pool_hits).enumerate() {
        assert_eq!(
            bits(a),
            bits(b),
            "full-pool SQ8 diverged from the f32 probe path on query {i}"
        );
    }
    println!("SQ8 full-pool equivalence: OK (byte-identical to the f32 probe path)");

    // …and at `nprobe = all` the probed set is every row, so a full pool
    // is byte-identical to the reference scan itself.
    sq8_full_pool.set_nprobe(clusters);
    for (i, q) in queries.iter().take(REFERENCE_SPOT_CHECKS).enumerate() {
        assert_eq!(
            bits(&sq8_full_pool.search(q, TOP_K)),
            bits(&exact[i]),
            "exact-mode SQ8 diverged from the flat scan on query {i}"
        );
    }
    drop(sq8_full_pool);
    println!("SQ8 exact-mode equivalence: OK (nprobe = {clusters}, full pool)");

    // ---- timed arms ------------------------------------------------------
    let (f32_med, f32_min) = time(samples(5), || black_box(search_all(&ivf_ix, &queries)));
    let recall_f32 = recall_at_k(&exact, &f32_hits);
    println!(
        "bench million/f32_probe_nprobe{NPROBE}: median {:.3} ms/query (min {:.3}) \
         recall@{TOP_K} {recall_f32:.4}",
        ms(f32_med) / QUERIES as f64,
        ms(f32_min) / QUERIES as f64
    );

    let mut sq8_ix = ivf_ix.clone();
    sq8_ix.enable_sq8(RERANK_POOL);
    let sq8_hits = search_all(&sq8_ix, &queries);
    let (sq8_med, sq8_min) = time(samples(5), || black_box(search_all(&sq8_ix, &queries)));
    let recall_sq8 = recall_at_k(&exact, &sq8_hits);
    let sq8_code_bytes = sq8_ix.sq8().unwrap().code_bytes();
    println!(
        "bench million/sq8_pool{RERANK_POOL}_nprobe{NPROBE}: median {:.3} ms/query \
         (min {:.3}) recall@{TOP_K} {recall_sq8:.4}, codes {:.1} MiB",
        ms(sq8_med) / QUERIES as f64,
        ms(sq8_min) / QUERIES as f64,
        sq8_code_bytes as f64 / (1024.0 * 1024.0)
    );

    let speedup_sq8 = ms(f32_med) / ms(sq8_med).max(1e-9);
    let flat_per_query = ms(flat_med) / QUERIES as f64;
    let f32_per_query = ms(f32_med) / QUERIES as f64;
    let sq8_per_query = ms(sq8_med) / QUERIES as f64;
    println!(
        "per-query: flat {flat_per_query:.3} ms → f32 probe {f32_per_query:.3} ms → \
         SQ8+rerank {sq8_per_query:.3} ms ({speedup_sq8:.1}x over the f32 probe path)"
    );

    if test_mode {
        println!("bench million: ok (test mode, {chunks} chunks, JSON/gate skipped)");
        return;
    }

    // ---- BENCH_million.json at the repo root -----------------------------
    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = serde_json::json!({
        "bench": "million",
        "corpus_chunks": n,
        "dim": DIM,
        "top_k": TOP_K,
        "queries": QUERIES,
        "ivf_clusters": clusters,
        "nprobe": NPROBE,
        "sq8_rerank_pool": RERANK_POOL,
        "flat_full_scan_ms_per_query": flat_per_query,
        "f32_probe_ms_per_query": f32_per_query,
        "sq8_ms_per_query": sq8_per_query,
        "speedup_sq8": speedup_sq8,
        "recall_f32_probe": recall_f32,
        "recall_sq8": recall_sq8,
        "vector_memory_ratio": memory_ratio,
        "sq8_code_bytes": sq8_code_bytes,
        "generated_unix": generated_unix,
    });
    let path = repo_root_bench_path();
    std::fs::write(
        &path,
        format!("{}\n", serde_json::to_string(&record).unwrap()),
    )
    .expect("write BENCH_million.json");
    println!("wrote {}", path.display());

    // ---- multi-metric gate -----------------------------------------------
    if std::env::var("BENCH_GATE").is_ok() {
        let mut failures: Vec<String> = Vec::new();
        // Recall and same-run speedup are machine-independent: hard gates.
        if recall_sq8 < MIN_RECALL {
            failures.push(format!(
                "SQ8 recall@{TOP_K} at nprobe={NPROBE} is {recall_sq8:.4} (floor {MIN_RECALL})"
            ));
        }
        if speedup_sq8 < MIN_SPEEDUP {
            failures.push(format!(
                "SQ8 speedup over the f32 probe path is {speedup_sq8:.1}x \
                 (floor {MIN_SPEEDUP}x)"
            ));
        }
        // Per-query latency vs the committed baseline needs both signals —
        // the absolute >2× check AND a collapsed same-run ratio — so a
        // slow CI machine that inflates every arm equally cannot
        // false-red.
        if let (Some(base_ms), Some(base_speedup)) = (
            baseline_field("sq8_ms_per_query"),
            baseline_field("speedup_sq8"),
        ) {
            let absolute_regressed = sq8_per_query > 2.0 * base_ms;
            let ratio_collapsed = speedup_sq8 < base_speedup / 2.0;
            if absolute_regressed && ratio_collapsed {
                failures.push(format!(
                    "SQ8 per-query latency {sq8_per_query:.3} ms is more than 2× the \
                     committed baseline {base_ms:.3} ms AND the same-run speedup collapsed \
                     to {speedup_sq8:.1}x (baseline {base_speedup:.1}x)"
                ));
            } else if absolute_regressed {
                println!(
                    "gate: {sq8_per_query:.3} ms/query exceeds 2× baseline {base_ms:.3} ms \
                     but the same-run speedup is still {speedup_sq8:.1}x — slow machine, \
                     not a regression; passing"
                );
            }
        } else {
            println!("gate: no committed million baseline found — skipping latency comparison");
        }
        if failures.is_empty() {
            println!(
                "gate: OK (recall {recall_sq8:.4}, speedup {speedup_sq8:.1}x, memory \
                 {memory_ratio:.3}x)"
            );
        } else {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}
