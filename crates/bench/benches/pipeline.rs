//! End-to-end pipeline benchmarks: per-trace diagnosis latency for every
//! tool (the cost side of the paper's accuracy/cost trade-off discussion)
//! and the judge's per-sample ranking cost (Table IV's harness).

use baselines::{Drishti, Ion};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ioagent_core::IoAgent;
use judge::Judge;
use simllm::SimLlm;
use std::hint::black_box;
use tracebench::TraceBench;

fn bench_tools(c: &mut Criterion) {
    let suite = TraceBench::generate();
    let small = suite.get("sb01_small_io").unwrap();
    let large = suite.get("io500_mdtest_hard_1").unwrap(); // ~40k raw lines

    let mut group = c.benchmark_group("diagnose");
    group.sample_size(10);
    for (name, entry) in [("small_trace", small), ("large_trace", large)] {
        group.bench_with_input(BenchmarkId::new("drishti", name), entry, |b, e| {
            b.iter(|| black_box(Drishti.diagnose(&e.trace)))
        });
        group.bench_with_input(BenchmarkId::new("ion_gpt4o", name), entry, |b, e| {
            let model = SimLlm::new("gpt-4o");
            let ion = Ion::new(&model);
            b.iter(|| black_box(ion.diagnose(&e.trace)))
        });
        group.bench_with_input(BenchmarkId::new("ioagent_gpt4o", name), entry, |b, e| {
            let model = SimLlm::new("gpt-4o");
            let agent = IoAgent::new(&model);
            b.iter(|| black_box(agent.diagnose(&e.trace)))
        });
        group.bench_with_input(BenchmarkId::new("ioagent_llama31", name), entry, |b, e| {
            let model = SimLlm::new("llama-3.1-70b");
            let agent = IoAgent::new(&model);
            b.iter(|| black_box(agent.diagnose(&e.trace)))
        });
    }
    group.finish();
}

fn bench_judge(c: &mut Criterion) {
    let mut suite = TraceBench::generate();
    suite.entries.truncate(6);
    let runs = ioagent_bench::run_all_tools(&suite);
    let model = SimLlm::new("gpt-4o");
    let judge = Judge::new(&model);

    let mut group = c.benchmark_group("judge");
    group.sample_size(10);
    group.bench_function("rank_one_sample_4perms", |b| {
        let candidates: Vec<&simllm::Diagnosis> = runs.iter().map(|r| &r.diagnoses[0]).collect();
        b.iter(|| {
            black_box(judge.mean_ranks(&suite.entries[0], judge::Criterion::Accuracy, &candidates))
        })
    });
    group.bench_function("evaluate_6_traces_all_criteria", |b| {
        b.iter(|| black_box(judge.evaluate(&suite, &runs)))
    });
    group.finish();
}

fn bench_table4(c: &mut Criterion) {
    // The whole paper: TraceBench + 4 tools + judge, end to end.
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("full_pipeline_40_traces", |b| {
        b.iter(|| {
            let suite = TraceBench::generate();
            black_box(ioagent_bench::table4_evaluation(&suite))
        })
    });
    group.finish();
}

fn bench_tracebench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracebench");
    group.sample_size(10);
    group.bench_function("generate_full_suite", |b| {
        b.iter(|| black_box(TraceBench::generate()))
    });
    let suite = TraceBench::generate();
    group.bench_function("reference_detect_all", |b| {
        b.iter(|| {
            for e in &suite.entries {
                black_box(tracebench::reference_detect(&e.trace));
            }
        })
    });
    group.bench_function("darshan_text_roundtrip_amrex", |b| {
        let trace = &suite.get("ra_amrex").unwrap().trace;
        b.iter(|| {
            let text = darshan::write::write_text(trace);
            black_box(darshan::parse::parse_text(&text).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tools,
    bench_judge,
    bench_table4,
    bench_tracebench
);
criterion_main!(benches);
