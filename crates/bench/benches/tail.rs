//! Tail-latency benchmark: heavy-tailed faulty LLMs with and without the
//! ioagentd countermeasures (ISSUE 9).
//!
//! An **open-loop** load generator submits a fixed arrival schedule
//! (job *i* at `i/rate`, rate derived from the measured fault-free mean
//! service time so the offered load is ~50% of capacity on any machine)
//! into a shared-index diagnosis service, three arms:
//!
//! - **nofault** — no fault plan: the latency floor.
//! - **faults_off** — the heavy-tailed fault-injecting plan with the
//!   countermeasures off (the simulator's infinite-patience retry loop):
//!   straggling draws and injected faults land directly in the tail.
//! - **faults_on** — the same plan under a 3 s deadline, 3 bounded
//!   retries with decorrelated backoff, and hedged requests after
//!   max(6 ms, observed p95 attempt latency).
//!
//! Per-job latency is `queue_wait + exec` (submission is on schedule, so
//! queueing from stragglers hogging workers is charged to the tail they
//! cause). Before any timing, a 24-job batch is run through the faulted
//! service with hedging on and off and asserted **byte-identical** to
//! the fault-free reference — the countermeasures may only move time,
//! never content.
//!
//! Results go to `BENCH_tail.json` at the repo root. With `BENCH_GATE=1`
//! the run fails when the same-run p999 improvement (faults_off /
//! faults_on) falls below 2×, or when p999 regresses >2× against the
//! committed baseline while the (machine-independent) same-run
//! improvement also collapsed. `--test` runs a small smoke workload and
//! skips the JSON write and the gate.

use ioagent_core::MergeStrategy;
use ioagentd::{
    DiagnosisService, HedgePolicy, JobRequest, ResiliencePolicy, Retriever, ServiceConfig,
};
use simllm::{FaultPlan, FaultSpec, LatencyProfile, TailSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracebench::TraceBench;

const WORKERS: usize = 8;
const DEADLINE: Duration = Duration::from_secs(3);
/// Same-run p999 floor: countermeasures must cut the injected tail at
/// least this much.
const MIN_IMPROVEMENT: f64 = 2.0;

/// Streaming profile ≈ a fast hosted model (800 µs TTFT, 150k tok/s),
/// with a 3% heavy tail (lognormal σ 0.8 around 12×, 25% Pareto α 1.3,
/// capped at 250×) and 0.5% each of injected timeouts, rate limits, and
/// truncations.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .with_profile(LatencyProfile::new(Duration::from_micros(800), 150_000.0))
        .with_tail(TailSpec {
            probability: 0.03,
            lognormal_sigma: 0.8,
            median_multiplier: 12.0,
            pareto_alpha: 1.3,
            pareto_weight: 0.25,
            max_multiplier: 250.0,
        })
        .with_faults(FaultSpec {
            timeout_probability: 0.005,
            timeout: Duration::from_millis(50),
            rate_limit_probability: 0.005,
            retry_after: Duration::from_millis(10),
            truncate_probability: 0.005,
        })
}

fn countermeasures() -> ResiliencePolicy {
    ResiliencePolicy::default()
        .retries(3)
        .backoff(Duration::from_millis(2), Duration::from_millis(20))
        .hedged(HedgePolicy {
            quantile: 0.95,
            min_delay: Duration::from_millis(6),
        })
}

/// `n` jobs cycling the 40 TraceBench traces × 3 models with a light
/// config (no RAG, flat merge — few LLM calls per job, so the LLM tail
/// dominates). Each job also perturbs `header.nprocs`, which lands in
/// the prompt: every job is distinct *content*, not just a distinct
/// cache key, so every LLM draw is a fresh sample of the fault plan.
fn workload(suite: &TraceBench, n: usize) -> Vec<JobRequest> {
    let models = ["gpt-4o", "gpt-4o-mini", "llama-3.1-70b"];
    (0..n)
        .map(|i| {
            let entry = &suite.entries[i % suite.entries.len()];
            let mut trace = entry.trace.clone();
            trace.header.nprocs = trace.header.nprocs.max(1) + (i / suite.entries.len()) as u64;
            let mut job = JobRequest::new(
                format!("job-{i}-{}", entry.spec.id),
                trace,
                models[i % models.len()],
            );
            job.config.use_rag = false;
            job.config.nl_transform = false;
            job.config.merge = MergeStrategy::Flat;
            job
        })
        .collect()
}

struct ArmOutcome {
    latencies_ms: Vec<f64>,
    failed: u64,
    retries: u64,
    hedges: u64,
    hedge_wins: u64,
    shed: u64,
}

/// Submit `jobs` on the open-loop schedule `i/rate` and wait for all of
/// them. The queue bound exceeds the job count, so submission never
/// blocks: a slow service shows up as queue_wait, exactly like an open
/// queueing system.
fn open_loop(service: &DiagnosisService, jobs: &[JobRequest], rate: f64) -> ArmOutcome {
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let target = start + Duration::from_secs_f64(i as f64 / rate);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        tickets.push(service.submit(job.clone()).expect("submit"));
    }
    let mut latencies_ms = Vec::with_capacity(tickets.len());
    let mut failed = 0u64;
    for ticket in tickets {
        let result = ticket.wait();
        if result.failure.is_some() {
            failed += 1;
        }
        latencies_ms.push((result.metrics.queue_wait + result.metrics.exec).as_secs_f64() * 1e3);
    }
    let stats = service.stats();
    ArmOutcome {
        latencies_ms,
        failed,
        retries: stats.retries,
        hedges: stats.hedges,
        hedge_wins: stats.hedge_wins,
        shed: stats.shed_total,
    }
}

/// Exact quantile over a sorted copy (nearest-rank on the sorted order).
fn quantile(latencies_ms: &[f64], p: f64) -> f64 {
    let mut sorted = latencies_ms.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn repo_root_bench_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_tail.json")
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let n_jobs = if test_mode { 60 } else { 1000 };

    // Read the committed baseline *before* overwriting it.
    let baseline: Option<serde_json::Value> = std::fs::read_to_string(repo_root_bench_path())
        .ok()
        .and_then(|raw| serde_json::from_str(&raw).ok());
    let baseline_field =
        |name: &str| -> Option<f64> { baseline.as_ref()?.get(name).and_then(|x| x.as_f64()) };

    let suite = TraceBench::generate();
    let index = Arc::new(Retriever::build());
    let service_for = |plan: Option<FaultPlan>, resilient: bool| {
        let mut config = ServiceConfig::with_workers(WORKERS)
            .cache_capacity(0)
            .queue_capacity(n_jobs + WORKERS);
        if let Some(plan) = plan {
            config = config.fault_plan(plan);
        }
        if resilient {
            config = config.deadline(DEADLINE).resilience(countermeasures());
        }
        DiagnosisService::with_shared_index(config, Arc::clone(&index))
    };

    // ---- byte-identity before timing ------------------------------------
    // Faults and hedging may only move *time*: the same 24 jobs through
    // the clean service, the faulted countermeasures-off service, and the
    // faulted+hedged service (no deadline here, so nothing is ever shed)
    // must produce identical diagnoses.
    let identity_jobs = workload(&suite, 24);
    let clean = service_for(None, false);
    let reference = clean.run_batch(identity_jobs.clone()).unwrap();
    let faulted = service_for(Some(chaos_plan()), false);
    let unhedged = faulted.run_batch(identity_jobs.clone()).unwrap();
    let hedged_service = {
        let config = ServiceConfig::with_workers(WORKERS)
            .cache_capacity(0)
            .queue_capacity(n_jobs + WORKERS)
            .fault_plan(chaos_plan())
            .resilience(countermeasures());
        DiagnosisService::with_shared_index(config, Arc::clone(&index))
    };
    let hedged = hedged_service.run_batch(identity_jobs.clone()).unwrap();
    for ((r, u), h) in reference.iter().zip(&unhedged).zip(&hedged) {
        assert!(u.failure.is_none(), "{}: {:?}", u.id, u.failure);
        assert!(h.failure.is_none(), "{}: {:?}", h.id, h.failure);
        assert_eq!(
            u.diagnosis.text, r.diagnosis.text,
            "{}: faults changed the diagnosis",
            r.id
        );
        assert_eq!(
            h.diagnosis.text, r.diagnosis.text,
            "{}: hedging changed the diagnosis",
            r.id
        );
    }
    println!(
        "byte-identity: ok ({} jobs, hedges launched {}, won {})",
        identity_jobs.len(),
        hedged_service.stats().hedges,
        hedged_service.stats().hedge_wins,
    );
    faulted.shutdown();
    hedged_service.shutdown();

    // Offered load ≈ 50% of *faulted* (countermeasures-off) capacity,
    // derived from the measured mean service time so the schedule is
    // feasible on any machine and the tail — not saturation ramp-up —
    // dominates the quantiles.
    let mean_exec = unhedged
        .iter()
        .map(|r| r.metrics.exec.as_secs_f64())
        .sum::<f64>()
        / unhedged.len() as f64;
    clean.shutdown();
    let rate = (0.5 * WORKERS as f64 / mean_exec.max(1e-4)).clamp(20.0, 400.0);
    println!(
        "open loop: {n_jobs} jobs at {rate:.0}/s ({WORKERS} workers, mean faulted exec {:.2} ms)",
        mean_exec * 1e3
    );

    // ---- the three timed arms --------------------------------------------
    let jobs = workload(&suite, n_jobs);
    let run_arm = |label: &str, plan: Option<FaultPlan>, resilient: bool| {
        let service = service_for(plan, resilient);
        let outcome = open_loop(&service, &jobs, rate);
        service.shutdown();
        println!(
            "{label:10} p50 {:8.2} ms  p99 {:8.2} ms  p999 {:8.2} ms  \
             (failed {}, shed {}, retries {}, hedges {} ({} won))",
            quantile(&outcome.latencies_ms, 0.50),
            quantile(&outcome.latencies_ms, 0.99),
            quantile(&outcome.latencies_ms, 0.999),
            outcome.failed,
            outcome.shed,
            outcome.retries,
            outcome.hedges,
            outcome.hedge_wins,
        );
        outcome
    };
    let nofault = run_arm("nofault", None, false);
    let faults_off = run_arm("faults_off", Some(chaos_plan()), false);
    let faults_on = run_arm("faults_on", Some(chaos_plan()), true);

    let p = |o: &ArmOutcome, q: f64| quantile(&o.latencies_ms, q);
    let improvement_p99 = p(&faults_off, 0.99) / p(&faults_on, 0.99).max(1e-6);
    let improvement_p999 = p(&faults_off, 0.999) / p(&faults_on, 0.999).max(1e-6);
    println!(
        "countermeasures: p99 {improvement_p99:.1}x, p999 {improvement_p999:.1}x \
         lower than faults_off"
    );

    if test_mode {
        println!("bench tail: ok (test mode, JSON/gate skipped)");
        return;
    }

    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let arm_json = |o: &ArmOutcome| {
        serde_json::json!({
            "p50_ms": p(o, 0.50),
            "p99_ms": p(o, 0.99),
            "p999_ms": p(o, 0.999),
            "failed": o.failed,
            "shed": o.shed,
            "retries": o.retries,
            "hedges": o.hedges,
            "hedge_wins": o.hedge_wins,
        })
    };
    let record = serde_json::json!({
        "bench": "tail_latency_under_faults",
        "jobs": n_jobs,
        "workers": WORKERS,
        "rate_per_s": rate,
        "deadline_ms": DEADLINE.as_millis() as u64,
        "nofault": arm_json(&nofault),
        "faults_off": arm_json(&faults_off),
        "faults_on": arm_json(&faults_on),
        "improvement_p99": improvement_p99,
        "improvement_p999": improvement_p999,
        "generated_unix": generated_unix,
    });
    let path = repo_root_bench_path();
    std::fs::write(
        &path,
        format!("{}\n", serde_json::to_string(&record).unwrap()),
    )
    .expect("write BENCH_tail.json");
    println!("wrote {}", path.display());

    if std::env::var("BENCH_GATE").is_ok() {
        let mut failures: Vec<String> = Vec::new();
        // The same-run improvement ratio is machine-independent: hard gate.
        if improvement_p999 < MIN_IMPROVEMENT {
            failures.push(format!(
                "countermeasures cut p999 only {improvement_p999:.2}x \
                 (floor {MIN_IMPROVEMENT}x over faults_off)"
            ));
        }
        // Absolute p999 vs the committed baseline needs both signals — a
        // >2× regression AND a collapsed same-run improvement — so a slow
        // CI machine that inflates every arm equally cannot false-red.
        let baseline_p999 = baseline
            .as_ref()
            .and_then(|b| b.get("faults_on")?.get("p999_ms")?.as_f64());
        if let (Some(base_ms), Some(base_improvement)) =
            (baseline_p999, baseline_field("improvement_p999"))
        {
            let on_ms = p(&faults_on, 0.999);
            let absolute_regressed = on_ms > 2.0 * base_ms;
            let ratio_collapsed = improvement_p999 < base_improvement / 2.0;
            if absolute_regressed && ratio_collapsed {
                failures.push(format!(
                    "faults_on p999 {on_ms:.1} ms is more than 2x the committed baseline \
                     {base_ms:.1} ms AND the same-run improvement collapsed to \
                     {improvement_p999:.1}x (baseline {base_improvement:.1}x)"
                ));
            } else if absolute_regressed {
                println!(
                    "gate: p999 {on_ms:.1} ms exceeds 2x baseline {base_ms:.1} ms but the \
                     same-run improvement is still {improvement_p999:.1}x — slow machine, \
                     not a regression; passing"
                );
            }
        } else {
            println!("gate: no committed tail baseline found — skipping absolute comparison");
        }
        if failures.is_empty() {
            println!("gate: OK (p999 improvement {improvement_p999:.1}x)");
        } else {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}
