//! Retrieval engine benchmark and the repo's measured-performance record.
//!
//! Builds a synthetic 10k-chunk corpus (deterministic vocabulary, so every
//! run measures the same work), then measures:
//!
//! - **cold build** — chunk + embed the whole corpus into the arena;
//! - **single search** — one top-15 query over all 10k chunks, engine
//!   (arena + cached norms + unrolled dot + bounded heap) vs the seed-era
//!   scan-score-sort path preserved in `vecindex::reference`, with the two
//!   asserted byte-identical before any timing;
//! - **64-query batch** — `search_batch` under a forced 1-thread and
//!   4-thread shim pool;
//! - **embed** — the seed-era embedding (fresh `HashMap` + per-token
//!   `String`s, replicated below) vs `embed_into` into a reused buffer
//!   (the allocation-free hot path).
//!
//! Results are written to `BENCH_retrieval.json` at the repo root — the
//! perf-trajectory datapoint ISSUE 4 asks for. With `BENCH_GATE=1` the run
//! additionally compares its single-query engine time against the
//! committed baseline in that file and **fails** (exit 1) on a >2×
//! regression; CI runs the gate on every push. `--test` (as `cargo test`
//! passes to harness-less bench targets) runs every arm once as a smoke
//! test and skips the JSON write and the gate.

use ioagent_bench::synth;
use std::hint::black_box;
use std::time::{Duration, Instant};
use vecindex::reference;

const TARGET_CHUNKS: usize = 10_000;
const TOP_K: usize = 15;
const BATCH: usize = 64;

const QUERY: &str = "the value of 1.0 in the 1K to 10K bin indicates that 100% of the write \
                     operations fall within the 1 KB to 10 KB range; many frequent small \
                     write requests from 16 processes on a single stripe";

fn build_corpus() -> vecindex::VectorIndex {
    synth::build_corpus(TARGET_CHUNKS)
}

fn batch_queries() -> Vec<String> {
    synth::batch_queries(BATCH)
}

/// Median-of-samples timing (1 warm-up call), returning (median, min).
fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> (Duration, Duration) {
    black_box(f());
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    (times[times.len() / 2], times[0])
}

fn at_width<R>(width: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .unwrap()
        .install(f)
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn report(label: &str, median: Duration, min: Duration) {
    println!(
        "bench retrieval/{label}: median {:.2} ms (min {:.2} ms)",
        ms(median),
        ms(min)
    );
}

fn repo_root_bench_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_retrieval.json")
}

/// The seed-era `Embedder::embed`: a fresh `HashMap` per call keyed over
/// per-token `String`s (via `tokenize`). Kept here as the baseline the
/// allocation-free `embed_into` is measured against. (Not in `reference`:
/// its HashMap iteration order made long-text embeddings non-deterministic
/// call to call, which is exactly why it was replaced.)
fn seed_era_embed(e: &ioembed::Embedder, text: &str) -> Vec<f32> {
    let mut v = vec![0f32; e.dim];
    let tokens = ioembed::tokenize(text);
    let mut tf: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    for t in &tokens {
        *tf.entry(t.as_str()).or_insert(0) += 1;
    }
    let bump = |v: &mut [f32], bytes: &[u8], seed: u64, weight: f32| {
        // FNV-1a, as the embedder hashes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let slot = (h % e.dim as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[slot] += sign * weight;
    };
    for (tok, count) in tf {
        let w = (1.0 + count as f32).ln();
        bump(&mut v, tok.as_bytes(), 0, w);
        bump(&mut v, tok.as_bytes(), 1, w);
        let bytes = tok.as_bytes();
        if bytes.len() >= 3 {
            for tri in bytes.windows(3) {
                bump(&mut v, tri, 2, w * 0.4);
            }
        }
    }
    ioembed::l2_normalize(&mut v);
    v
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let samples = |full: usize| if test_mode { 1 } else { full };

    // Read the committed baseline *before* overwriting it.
    let baseline: Option<serde_json::Value> = std::fs::read_to_string(repo_root_bench_path())
        .ok()
        .and_then(|raw| serde_json::from_str(&raw).ok());
    let baseline_field =
        |name: &str| -> Option<f64> { baseline.as_ref()?.get(name).and_then(|x| x.as_f64()) };
    let baseline_single_us = baseline_field("single_search_engine_us");
    let baseline_speedup = baseline_field("single_search_speedup");

    println!("building synthetic corpus ({TARGET_CHUNKS}+ chunks)…");
    let ix = build_corpus();
    let n = ix.len();
    let dim = ix.embedder().dim;
    println!("corpus ready: {n} chunks × {dim} lanes");

    // Correctness first: the engine must be byte-identical to the old
    // path on this corpus before its speed means anything.
    let engine_hits: Vec<(u32, usize)> = at_width(1, || ix.search(QUERY, TOP_K))
        .iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect();
    let reference_hits: Vec<(u32, usize)> = reference::search(&ix, QUERY, TOP_K)
        .iter()
        .map(|h| (h.score.to_bits(), h.entry_idx))
        .collect();
    assert_eq!(
        engine_hits, reference_hits,
        "engine and reference top-{TOP_K} diverged — refusing to benchmark a wrong answer"
    );
    println!("engine/reference equivalence: OK (top-{TOP_K} byte-identical)");

    // ---- cold build ------------------------------------------------------
    let (build_med, build_min) = time(samples(5), || black_box(build_corpus().len()));
    report("cold_build_10k", build_med, build_min);

    // ---- single search: engine vs seed-era reference ---------------------
    // Width 1 isolates the algorithmic speedup (norm caching + heap top-k
    // + arena locality) from thread-level parallelism; the reference path
    // is sequential by construction.
    let (engine_med, engine_min) = at_width(1, || {
        time(samples(200), || black_box(ix.search(QUERY, TOP_K)))
    });
    report("single_search_engine", engine_med, engine_min);
    let (ref_med, ref_min) = time(samples(30), || {
        black_box(reference::search(&ix, QUERY, TOP_K))
    });
    report("single_search_reference", ref_med, ref_min);
    let speedup = us(ref_med) / us(engine_med).max(1e-9);
    println!("single-query speedup over pre-PR scan: {speedup:.1}x");

    // ---- 64-query batch at 1 and 4 threads -------------------------------
    let queries = batch_queries();
    let (b1_med, b1_min) = at_width(1, || {
        time(samples(10), || black_box(ix.search_batch(&queries, TOP_K)))
    });
    report("batch64_threads1", b1_med, b1_min);
    let (b4_med, b4_min) = at_width(4, || {
        time(samples(10), || black_box(ix.search_batch(&queries, TOP_K)))
    });
    report("batch64_threads4", b4_med, b4_min);

    // ---- embed: seed-era (HashMap + per-token Strings) vs hot path -------
    let embedder = ioembed::Embedder::default();
    let (embed_seed_med, _) = time(samples(50), || {
        for _ in 0..100 {
            black_box(seed_era_embed(&embedder, QUERY));
        }
    });
    let mut buf = Vec::new();
    let (embed_into_med, _) = time(samples(50), || {
        for _ in 0..100 {
            embedder.embed_into(QUERY, &mut buf);
            black_box(buf.len());
        }
    });
    println!(
        "bench retrieval/embed_seed_era: {:.2} µs   embed_into (allocation-free): {:.2} µs   \
         ({:.1}x)",
        us(embed_seed_med) / 100.0,
        us(embed_into_med) / 100.0,
        us(embed_seed_med) / us(embed_into_med).max(1e-9)
    );

    if test_mode {
        println!("bench retrieval: ok (test mode, 1 iteration per arm, JSON/gate skipped)");
        return;
    }

    // ---- BENCH_retrieval.json at the repo root ---------------------------
    let generated_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let record = serde_json::json!({
        "bench": "retrieval",
        "corpus_chunks": n,
        "dim": dim,
        "top_k": TOP_K,
        "cold_build_ms": ms(build_med),
        "single_search_engine_us": us(engine_med),
        "single_search_reference_us": us(ref_med),
        "single_search_speedup": speedup,
        "batch64_threads1_ms": ms(b1_med),
        "batch64_threads4_ms": ms(b4_med),
        "embed_seed_era_us": us(embed_seed_med) / 100.0,
        "embed_into_us": us(embed_into_med) / 100.0,
        "generated_unix": generated_unix,
    });
    let path = repo_root_bench_path();
    std::fs::write(
        &path,
        format!("{}\n", serde_json::to_string(&record).unwrap()),
    )
    .expect("write BENCH_retrieval.json");
    println!("wrote {}", path.display());

    // ---- regression gate -------------------------------------------------
    if std::env::var("BENCH_GATE").is_ok() {
        match baseline_single_us {
            Some(base) => {
                // Two signals must agree before the gate fails: the
                // absolute >2×-of-committed-baseline check (the ISSUE-4
                // contract) AND the same-run engine/reference ratio
                // falling below half the baseline's recorded ratio. The
                // ratio is machine-independent, so a slower CI runner
                // that inflates both paths equally cannot produce a
                // false red, while an engine-only 2× slowdown halves the
                // ratio and trips both signals.
                let measured = us(engine_min);
                let absolute_regressed = measured > 2.0 * base;
                let ratio_floor = baseline_speedup.map_or(3.0, |s| s / 2.0);
                let ratio_collapsed = speedup < ratio_floor;
                if absolute_regressed && ratio_collapsed {
                    eprintln!(
                        "REGRESSION: single-query engine search {measured:.1} µs is more than \
                         2× the committed baseline {base:.1} µs AND the same-run speedup over \
                         the reference scan collapsed to {speedup:.1}x (floor {ratio_floor:.1}x)"
                    );
                    std::process::exit(1);
                }
                if absolute_regressed {
                    println!(
                        "gate: {measured:.1} µs exceeds 2× baseline {base:.1} µs but the \
                         same-run speedup is still {speedup:.1}x — slow machine, not a \
                         regression; passing"
                    );
                } else {
                    println!(
                        "gate: single-query {measured:.1} µs within 2× of baseline {base:.1} µs \
                         (speedup {speedup:.1}x) — OK"
                    );
                }
            }
            None => println!("gate: no committed baseline found — skipping comparison"),
        }
    }
}
