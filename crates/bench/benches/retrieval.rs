//! RAG substrate benchmarks: knowledge-index construction, top-15 search,
//! the self-reflection filter, and the embedding primitive itself.

use criterion::{criterion_group, criterion_main, Criterion};
use ioagent_core::rag::Retriever;
use ioembed::Embedder;
use simllm::SimLlm;
use std::hint::black_box;

const QUERY: &str = "the value of 1.0 in the 1K to 10K bin indicates that 100% of the write \
                     operations fall within the 1 KB to 10 KB range; many frequent small \
                     write requests from 16 processes";

fn bench_retrieval(c: &mut Criterion) {
    let mut group = c.benchmark_group("retrieval");
    group.sample_size(20);

    group.bench_function("build_index_66_docs", |b| {
        b.iter(|| black_box(Retriever::build()))
    });

    let retriever = Retriever::build();
    let mini = SimLlm::new("gpt-4o-mini");
    group.bench_function("retrieve_top15_with_reflection", |b| {
        b.iter(|| black_box(retriever.retrieve(QUERY, &mini)))
    });

    let embedder = Embedder::default();
    group.bench_function("embed_query", |b| {
        b.iter(|| black_box(embedder.embed(QUERY)))
    });

    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
