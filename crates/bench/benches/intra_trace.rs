//! Intra-trace parallelism benchmark: wall-clock for the hot loops *inside*
//! one diagnosis job at a 1-thread vs a 4-thread rayon-shim pool.
//!
//! Two arms:
//!
//! - **fragment diagnosis**: the full `IoAgent::diagnose` pipeline over the
//!   suite's most fragment-rich trace, with the backbone model charging a
//!   simulated 10 ms remote round trip per completion (the regime a
//!   deployed agent runs in — see `SimLlm::with_latency`). Per-fragment NL
//!   transformation + grounded diagnosis overlap across shim threads, so
//!   this arm scales with the pool width on any machine, single-core CI
//!   containers included.
//! - **batch search**: `VectorIndex::search_batch` over the knowledge-size
//!   index — pure local compute, so its scaling reflects physical cores
//!   (reported for reference; on a 1-core host both widths are equivalent
//!   by construction).
//!
//! Diagnoses are asserted byte-identical across widths before timing — the
//! speedup is only meaningful if the outputs agree. A `speedup` summary is
//! printed after the samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ioagent_core::rag::Retriever;
use ioagent_core::{AgentConfig, IoAgent};
use simllm::SimLlm;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracebench::TraceBench;

/// Simulated per-completion remote-LLM round trip for the diagnosis arm.
const CALL_LATENCY: Duration = Duration::from_millis(10);
const WIDTHS: [usize; 2] = [1, 4];

fn pool(width: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build()
        .expect("build shim pool")
}

fn bench_intra_trace(c: &mut Criterion) {
    let suite = TraceBench::generate();
    let entry = suite
        .entries
        .iter()
        .max_by_key(|e| preprocessor::extract_fragments(&e.trace).len())
        .expect("non-empty suite");
    let n_fragments = preprocessor::extract_fragments(&entry.trace).len();
    let retriever = Arc::new(Retriever::build());

    let diagnose = |width: usize| {
        pool(width).install(|| {
            let model = SimLlm::new("gpt-4o").with_latency(CALL_LATENCY);
            let agent = IoAgent::with_shared_retriever(
                &model,
                AgentConfig::default(),
                Arc::clone(&retriever),
            );
            agent.diagnose(&entry.trace).text
        })
    };
    assert_eq!(
        diagnose(1),
        diagnose(4),
        "widths must produce byte-identical diagnoses"
    );

    let queries: Vec<String> = (0..64)
        .map(|i| {
            format!(
                "query {i}: small writes, stripe width 1, metadata stat storm, \
                 collective aggregation of shared-file transfers"
            )
        })
        .collect();
    let mut index = vecindex::VectorIndex::default();
    for d in 0..48 {
        index.add_document(
            &format!("doc-{d}"),
            &format!("[Synthetic Source {d}, V 2024]"),
            &format!(
                "Document {d} discusses stripe counts, object storage targets, collective \
                 MPI-IO aggregation, metadata server load, request sizes and alignment. "
            )
            .repeat(24),
        );
    }

    let mut group = c.benchmark_group("intra_trace");
    group.sample_size(5);
    let mut summary: Vec<(String, Duration)> = Vec::new();

    for width in WIDTHS {
        let label = format!("diagnose_{width}thread");
        group.bench_with_input(BenchmarkId::new("fragments", &label), &width, |b, &w| {
            b.iter(|| black_box(diagnose(w)));
        });
        let start = Instant::now();
        black_box(diagnose(width));
        summary.push((label, start.elapsed()));
    }

    for width in WIDTHS {
        let label = format!("search_{width}thread");
        group.bench_with_input(BenchmarkId::new("batch_search", &label), &width, |b, &w| {
            b.iter(|| pool(w).install(|| black_box(index.search_batch(&queries, 15))));
        });
        let start = Instant::now();
        black_box(pool(width).install(|| index.search_batch(&queries, 15)));
        summary.push((label, start.elapsed()));
    }
    group.finish();

    println!(
        "\nintra-trace scaling summary ({n_fragments} fragments, {} queries):",
        queries.len()
    );
    for (label, t) in &summary {
        println!("  {label:20} {t:>12.3?}");
    }
    let find = |l: &str| summary.iter().find(|(s, _)| s == l).map(|(_, t)| *t);
    if let (Some(one), Some(four)) = (find("diagnose_1thread"), find("diagnose_4thread")) {
        println!(
            "  fragment-diagnosis speedup: {:.2}x (4 threads vs 1, {CALL_LATENCY:?}/call)",
            one.as_secs_f64() / four.as_secs_f64()
        );
    }
    if let (Some(one), Some(four)) = (find("search_1thread"), find("search_4thread")) {
        println!(
            "  batch-search speedup: {:.2}x (4 threads vs 1, compute-bound)",
            one.as_secs_f64() / four.as_secs_f64()
        );
    }
}

criterion_group!(benches, bench_intra_trace);
criterion_main!(benches);
