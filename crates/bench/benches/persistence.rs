//! Persistence benchmarks: what the `iostore` state layer buys a daemon
//! generation.
//!
//! Two arms:
//!
//! - **index**: cold start (chunk + embed the 66-document corpus from
//!   scratch) versus loading the versioned snapshot from disk. The loaded
//!   index is bit-identical, so this is pure start-up latency.
//! - **restart**: a fresh service answering a previously-seen 16-job batch
//!   from the on-disk journal (simulating a daemon restart with a warm
//!   `--state-dir`) versus a fresh service re-diagnosing the same batch
//!   from nothing. Both run over one shared pre-built index so the arm
//!   isolates result persistence from index persistence.
//!
//! A summary with speedups is printed after the samples.

use criterion::{criterion_group, criterion_main, Criterion};
use ioagentd::{DiagnosisService, JobRequest, Retriever, ServiceConfig};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracebench::TraceBench;

const N_JOBS: usize = 16;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("bench-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn workload(suite: &TraceBench) -> Vec<JobRequest> {
    suite
        .entries
        .iter()
        .take(N_JOBS)
        .map(|e| JobRequest::new(e.spec.id, e.trace.clone(), "gpt-4o-mini"))
        .collect()
}

fn bench_persistence(c: &mut Criterion) {
    let suite = TraceBench::generate();
    let jobs = workload(&suite);
    let corpus_hash = knowledge::corpus_hash();
    let spec = Retriever::index_spec();

    // ---- Arm 1: cold index build vs snapshot load ------------------------
    let tmp = TempDir::new("index");
    let snapshot_path = tmp.0.join(iostore::INDEX_FILE);
    let built = Retriever::build();
    iostore::save_index(&snapshot_path, built.index(), corpus_hash).unwrap();

    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);
    group.bench_function("index_cold_build", |b| {
        b.iter(|| black_box(Retriever::build().len()));
    });
    group.bench_function("index_snapshot_load", |b| {
        b.iter(|| black_box(iostore::load_index(&snapshot_path, &spec).unwrap().len()));
    });

    // ---- Arm 2: cold batch vs journal-warm restart -----------------------
    // Warm a state dir once, then repeatedly "restart": a brand-new
    // service over the warm journal, answering the batch from disk.
    let state = TempDir::new("restart");
    let index = Arc::new(built);
    {
        let warmup = DiagnosisService::with_shared_index(
            ServiceConfig::with_workers(2).state_dir(&state.0),
            Arc::clone(&index),
        );
        warmup.run_batch(jobs.clone()).unwrap();
        warmup.shutdown();
    }
    group.bench_function("restart_cold_batch16", |b| {
        b.iter(|| {
            let service = DiagnosisService::with_shared_index(
                ServiceConfig::with_workers(2),
                Arc::clone(&index),
            );
            let out = black_box(service.run_batch(jobs.clone()).unwrap());
            service.shutdown();
            out.len()
        });
    });
    group.bench_function("restart_warm_batch16", |b| {
        b.iter(|| {
            let service = DiagnosisService::with_shared_index(
                ServiceConfig::with_workers(2).state_dir(&state.0),
                Arc::clone(&index),
            );
            let out = black_box(service.run_batch(jobs.clone()).unwrap());
            assert!(
                out.iter().all(|r| r.cached),
                "warm restart must hit the journal"
            );
            service.shutdown();
            out.len()
        });
    });
    group.finish();

    // ---- Summary ---------------------------------------------------------
    let timed = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        black_box(f());
        start.elapsed()
    };
    let cold_index = timed(&mut || Retriever::build().len());
    let warm_index = timed(&mut || iostore::load_index(&snapshot_path, &spec).unwrap().len());
    let cold_batch = timed(&mut || {
        let s =
            DiagnosisService::with_shared_index(ServiceConfig::with_workers(2), Arc::clone(&index));
        let n = s.run_batch(jobs.clone()).unwrap().len();
        s.shutdown();
        n
    });
    let warm_batch = timed(&mut || {
        let s = DiagnosisService::with_shared_index(
            ServiceConfig::with_workers(2).state_dir(&state.0),
            Arc::clone(&index),
        );
        let n = s.run_batch(jobs.clone()).unwrap().len();
        s.shutdown();
        n
    });
    let ratio = |cold: Duration, warm: Duration| cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!("\npersistence summary:");
    println!("  index  cold build     {cold_index:>12.3?}");
    println!(
        "  index  snapshot load  {warm_index:>12.3?}  ({:.1}x faster)",
        ratio(cold_index, warm_index)
    );
    println!("  batch16 cold          {cold_batch:>12.3?}");
    println!(
        "  batch16 warm restart  {warm_batch:>12.3?}  ({:.1}x faster)",
        ratio(cold_batch, warm_batch)
    );
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
