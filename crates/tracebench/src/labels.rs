//! The TraceBench I/O issue label set (paper Table II).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the sixteen I/O performance issue labels used to annotate
/// TraceBench traces (paper Table II; `[Read|Write]` variants expanded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IssueLabel {
    /// Significant time in metadata operations (lookups, stats, opens).
    HighMetadataLoad,
    /// Read requests not aligned with file-system stripe boundaries.
    MisalignedRead,
    /// Write requests not aligned with file-system stripe boundaries.
    MisalignedWrite,
    /// Random access pattern on reads.
    RandomRead,
    /// Random access pattern on writes.
    RandomWrite,
    /// Multiple processes/ranks accessing the same file.
    SharedFileAccess,
    /// Frequent reads with a small number of bytes.
    SmallRead,
    /// Frequent writes with a small number of bytes.
    SmallWrite,
    /// Repeated reads of the same data.
    RepetitiveRead,
    /// Disproportionate traffic to some servers / storage under-utilised.
    ServerLoadImbalance,
    /// Some MPI ranks issue disproportionate I/O traffic.
    RankLoadImbalance,
    /// Multiple processes without leveraging MPI(-IO).
    MultiProcessWithoutMpi,
    /// No collective I/O on reads despite MPI-IO usage.
    NoCollectiveRead,
    /// No collective I/O on writes despite MPI-IO usage.
    NoCollectiveWrite,
    /// Low-level library (STDIO) used for significant read volume.
    LowLevelLibraryRead,
    /// Low-level library (STDIO) used for significant write volume.
    LowLevelLibraryWrite,
}

impl IssueLabel {
    /// All labels in Table II order.
    pub const ALL: [IssueLabel; 16] = [
        IssueLabel::HighMetadataLoad,
        IssueLabel::MisalignedRead,
        IssueLabel::MisalignedWrite,
        IssueLabel::RandomWrite,
        IssueLabel::RandomRead,
        IssueLabel::SharedFileAccess,
        IssueLabel::SmallRead,
        IssueLabel::SmallWrite,
        IssueLabel::RepetitiveRead,
        IssueLabel::ServerLoadImbalance,
        IssueLabel::RankLoadImbalance,
        IssueLabel::MultiProcessWithoutMpi,
        IssueLabel::NoCollectiveRead,
        IssueLabel::NoCollectiveWrite,
        IssueLabel::LowLevelLibraryRead,
        IssueLabel::LowLevelLibraryWrite,
    ];

    /// Stable machine identifier (snake case).
    pub fn key(&self) -> &'static str {
        match self {
            IssueLabel::HighMetadataLoad => "high_metadata_load",
            IssueLabel::MisalignedRead => "misaligned_read",
            IssueLabel::MisalignedWrite => "misaligned_write",
            IssueLabel::RandomRead => "random_read",
            IssueLabel::RandomWrite => "random_write",
            IssueLabel::SharedFileAccess => "shared_file_access",
            IssueLabel::SmallRead => "small_read",
            IssueLabel::SmallWrite => "small_write",
            IssueLabel::RepetitiveRead => "repetitive_read",
            IssueLabel::ServerLoadImbalance => "server_load_imbalance",
            IssueLabel::RankLoadImbalance => "rank_load_imbalance",
            IssueLabel::MultiProcessWithoutMpi => "multi_process_without_mpi",
            IssueLabel::NoCollectiveRead => "no_collective_read",
            IssueLabel::NoCollectiveWrite => "no_collective_write",
            IssueLabel::LowLevelLibraryRead => "low_level_library_read",
            IssueLabel::LowLevelLibraryWrite => "low_level_library_write",
        }
    }

    /// Human-readable label text as printed in the paper's Table II.
    pub fn display_name(&self) -> &'static str {
        match self {
            IssueLabel::HighMetadataLoad => "High Metadata Load",
            IssueLabel::MisalignedRead => "Misaligned Read Requests",
            IssueLabel::MisalignedWrite => "Misaligned Write Requests",
            IssueLabel::RandomRead => "Random Access Patterns on Read",
            IssueLabel::RandomWrite => "Random Access Patterns on Write",
            IssueLabel::SharedFileAccess => "Shared File Access",
            IssueLabel::SmallRead => "Small Read I/O Requests",
            IssueLabel::SmallWrite => "Small Write I/O Requests",
            IssueLabel::RepetitiveRead => "Repetitive Data Access on Read",
            IssueLabel::ServerLoadImbalance => "Server Load Imbalance",
            IssueLabel::RankLoadImbalance => "Rank Load Imbalance",
            IssueLabel::MultiProcessWithoutMpi => "Multi-Process Without MPI",
            IssueLabel::NoCollectiveRead => "No Collective I/O on Read",
            IssueLabel::NoCollectiveWrite => "No Collective I/O on Write",
            IssueLabel::LowLevelLibraryRead => "Low-Level Library on Read",
            IssueLabel::LowLevelLibraryWrite => "Low-Level Library on Write",
        }
    }

    /// Description as in Table II.
    pub fn description(&self) -> &'static str {
        match self {
            IssueLabel::HighMetadataLoad => {
                "The application spends a significant amount of time performing metadata \
                 operations (e.g., directory lookups, file system operations)."
            }
            IssueLabel::MisalignedRead => {
                "The application makes read requests that are not aligned with the file \
                 system's stripe boundaries."
            }
            IssueLabel::MisalignedWrite => {
                "The application makes write requests that are not aligned with the file \
                 system's stripe boundaries."
            }
            IssueLabel::RandomRead => {
                "The application issues read requests in a random access pattern."
            }
            IssueLabel::RandomWrite => {
                "The application issues write requests in a random access pattern."
            }
            IssueLabel::SharedFileAccess => {
                "The application has multiple processes or ranks accessing the same file."
            }
            IssueLabel::SmallRead => {
                "The application is making frequent read requests with a small number of bytes."
            }
            IssueLabel::SmallWrite => {
                "The application is making frequent write requests with a small number of bytes."
            }
            IssueLabel::RepetitiveRead => {
                "The application is making read requests to the same data repeatedly."
            }
            IssueLabel::ServerLoadImbalance => {
                "The application issues a disproportionate amount of I/O traffic to some \
                 servers compared to others or does not properly utilize the available \
                 storage resources."
            }
            IssueLabel::RankLoadImbalance => {
                "The application has MPI ranks issuing a disproportionate amount of I/O \
                 traffic compared to others."
            }
            IssueLabel::MultiProcessWithoutMpi => {
                "The application has multiple processes but does not leverage MPI."
            }
            IssueLabel::NoCollectiveRead => {
                "The application does not perform collective I/O on read operations."
            }
            IssueLabel::NoCollectiveWrite => {
                "The application does not perform collective I/O on write operations."
            }
            IssueLabel::LowLevelLibraryRead => {
                "The application relies on a low-level library like STDIO for a significant \
                 amount of read operations outside of loading/reading configuration files."
            }
            IssueLabel::LowLevelLibraryWrite => {
                "The application relies on a low-level library like STDIO for a significant \
                 amount of write operations outside of writing output/configuration files."
            }
        }
    }
}

impl fmt::Display for IssueLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl FromStr for IssueLabel {
    type Err = ();
    /// Parses either the machine key or the display name.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        IssueLabel::ALL
            .into_iter()
            .find(|l| l.key() == s || l.display_name().eq_ignore_ascii_case(s))
            .ok_or(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn sixteen_distinct_labels() {
        let set: BTreeSet<_> = IssueLabel::ALL.into_iter().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn keys_round_trip() {
        for l in IssueLabel::ALL {
            assert_eq!(l.key().parse::<IssueLabel>().unwrap(), l);
            assert_eq!(l.display_name().parse::<IssueLabel>().unwrap(), l);
        }
    }

    #[test]
    fn keys_are_snake_case_and_unique() {
        let mut keys: Vec<_> = IssueLabel::ALL.iter().map(|l| l.key()).collect();
        keys.sort_unstable();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n);
        for k in keys {
            assert!(k.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn descriptions_non_empty() {
        for l in IssueLabel::ALL {
            assert!(l.description().len() > 20, "{l:?}");
        }
    }

    #[test]
    fn unknown_label_rejected() {
        assert!("definitely_not_a_label".parse::<IssueLabel>().is_err());
    }
}
