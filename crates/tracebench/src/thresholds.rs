//! Detection thresholds shared by the TraceBench reference detector and the
//! heuristic tools built on top of it.
//!
//! TraceBench generators plant each labelled issue with a comfortable margin
//! beyond these thresholds, and keep unlabelled behaviour well below them,
//! so that a sound detector recovers exactly the planted label set.

/// Minimum per-direction operation count before small/random/misaligned
/// judgements are attempted (low-volume noise is not diagnosable).
pub const MIN_DIR_OPS: i64 = 64;

/// Fraction of operations below 1 MB beyond which I/O is "small".
pub const SMALL_FRACTION: f64 = 0.10;

/// Fraction of file-system-misaligned operations beyond which I/O is
/// "misaligned".
pub const MISALIGNED_FRACTION: f64 = 0.10;

/// Sequential-operation fraction below which a direction is "random".
pub const SEQ_FRACTION_RANDOM: f64 = 0.40;

/// Metadata time as a fraction of `run_time × nprocs` beyond which the
/// job has a high metadata load.
pub const META_TIME_FRACTION: f64 = 0.25;

/// Read-reuse factor (bytes read / byte range touched) beyond which reads
/// are repetitive.
pub const READ_REUSE_FACTOR: f64 = 2.0;

/// Per-direction STDIO byte fraction beyond which a low-level library is
/// carrying significant I/O.
pub const STDIO_FRACTION: f64 = 0.30;

/// Minimum STDIO bytes (per direction) before the low-level-library rule
/// applies; filters out tiny configuration-file accesses.
pub const STDIO_MIN_BYTES: i64 = 1 << 20;

/// Coefficient of variation of per-rank byte totals beyond which ranks are
/// imbalanced.
pub const RANK_CV: f64 = 1.0;

/// Fastest/slowest rank byte ratio (shared files) beyond which ranks are
/// imbalanced.
pub const RANK_RATIO: f64 = 3.0;

/// Mean Lustre stripe width at or below which the job cannot exploit
/// server parallelism (a stripe count of 1 serialises each file on one OST).
pub const STRIPE_WIDTH_LOW: f64 = 1.5;

/// Minimum bytes moved before server-imbalance is considered meaningful.
pub const SERVER_MIN_BYTES: i64 = 1 << 20;

/// Collective fraction below which MPI-IO usage counts as "no collective
/// I/O" for that direction.
pub const COLLECTIVE_FRACTION: f64 = 0.20;

/// Minimum per-direction MPI-IO operation count for the collective rule.
pub const MIN_MPIIO_OPS: i64 = 16;

/// Lustre file alignment in bytes (default stripe size).
pub const LUSTRE_ALIGNMENT: i64 = 1 << 20;

/// Generic block alignment for non-Lustre file systems.
pub const BLOCK_ALIGNMENT: i64 = 4096;
