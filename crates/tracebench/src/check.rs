//! Reference issue detector.
//!
//! This is the "oracle" detector used to validate that the generators plant
//! exactly the labelled issues: for every TraceBench trace,
//! `reference_detect(&trace)` must equal the spec's label set. The diagnosis
//! tools under evaluation (Drishti, ION, IOAgent) each implement their *own*
//! detection logic with their own blind spots; this module is only the
//! ground-truth check and the rule base from which those tools borrow
//! individual rules.

use crate::labels::IssueLabel;
use crate::thresholds as th;
use darshan::counters::Module;
use darshan::derive::{aggregate, lustre_summary, TraceSummary};
use darshan::DarshanTrace;
use std::collections::{BTreeMap, BTreeSet};

/// Detect the full issue-label set exhibited by a trace.
pub fn reference_detect(trace: &DarshanTrace) -> BTreeSet<IssueLabel> {
    let mut out = BTreeSet::new();
    let summary = TraceSummary::of(trace);
    let nprocs = trace.header.nprocs;

    // --- High metadata load -----------------------------------------------
    if let Some(posix) = &summary.posix {
        if posix.meta_time_fraction(summary.run_time, nprocs) > th::META_TIME_FRACTION {
            out.insert(IssueLabel::HighMetadataLoad);
        }
    }

    // --- Small / misaligned / random (per direction, POSIX) ----------------
    if let Some(posix) = &summary.posix {
        let align = if posix.file_alignment > 0 {
            posix.file_alignment
        } else {
            th::BLOCK_ALIGNMENT
        };
        if posix.reads >= th::MIN_DIR_OPS {
            if posix.small_read_fraction() > th::SMALL_FRACTION {
                out.insert(IssueLabel::SmallRead);
            }
            if posix.seq_read_fraction() < th::SEQ_FRACTION_RANDOM {
                out.insert(IssueLabel::RandomRead);
            }
            if posix.misaligned_fraction() > th::MISALIGNED_FRACTION
                && posix.max_read_time_size > 0
                && posix.max_read_time_size % align != 0
            {
                out.insert(IssueLabel::MisalignedRead);
            }
        }
        if posix.writes >= th::MIN_DIR_OPS {
            if posix.small_write_fraction() > th::SMALL_FRACTION {
                out.insert(IssueLabel::SmallWrite);
            }
            if posix.seq_write_fraction() < th::SEQ_FRACTION_RANDOM {
                out.insert(IssueLabel::RandomWrite);
            }
            if posix.misaligned_fraction() > th::MISALIGNED_FRACTION
                && posix.max_write_time_size > 0
                && posix.max_write_time_size % align != 0
            {
                out.insert(IssueLabel::MisalignedWrite);
            }
        }
    }

    // --- Shared file access -------------------------------------------------
    if nprocs > 1 {
        let shared_with_data = trace
            .records
            .iter()
            .filter(|r| r.is_shared() && matches!(r.module, Module::Posix | Module::Mpiio))
            .any(|r| {
                let p = r.module.prefix();
                r.ic(&format!("{p}_BYTES_READ")) + r.ic(&format!("{p}_BYTES_WRITTEN")) > 0
            });
        if shared_with_data {
            out.insert(IssueLabel::SharedFileAccess);
        }
    }

    // --- Repetitive reads (per-record reuse) --------------------------------
    let repetitive = trace.records_for(Module::Posix).any(|r| {
        let bytes = r.ic("POSIX_BYTES_READ");
        let range = r.ic("POSIX_MAX_BYTE_READ") + 1;
        bytes > 0 && range > 0 && bytes as f64 / range as f64 > th::READ_REUSE_FACTOR
    });
    if repetitive {
        out.insert(IssueLabel::RepetitiveRead);
    }

    // --- Server load imbalance ----------------------------------------------
    if let Some(lustre) = lustre_summary(trace) {
        if summary.total_bytes() >= th::SERVER_MIN_BYTES
            && lustre.mean_stripe_width() <= th::STRIPE_WIDTH_LOW
        {
            out.insert(IssueLabel::ServerLoadImbalance);
        }
    }

    // --- Rank load imbalance -------------------------------------------------
    if nprocs > 1 {
        // Per-rank byte totals from rank-attributed POSIX records.
        let mut by_rank: BTreeMap<i64, i64> = BTreeMap::new();
        for r in trace.records_for(Module::Posix) {
            if r.rank >= 0 {
                *by_rank.entry(r.rank).or_insert(0) +=
                    r.ic("POSIX_BYTES_READ") + r.ic("POSIX_BYTES_WRITTEN");
            }
        }
        let total: i64 = by_rank.values().sum();
        if by_rank.len() >= 2 && total > 0 {
            let vals: Vec<f64> = by_rank.values().map(|&v| v as f64).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            if mean > 0.0 && var.sqrt() / mean > th::RANK_CV {
                out.insert(IssueLabel::RankLoadImbalance);
            }
        }
        // Shared-record fastest/slowest ratio.
        if let Some(posix) = &summary.posix {
            if posix.slowest_rank_bytes > 0 && posix.rank_byte_imbalance() > th::RANK_RATIO {
                out.insert(IssueLabel::RankLoadImbalance);
            }
        }
    }

    // --- Multi-process without MPI ------------------------------------------
    if summary.multi_process_without_mpi() {
        let posix_active = summary
            .posix
            .as_ref()
            .map(|p| p.total_ops() + p.opens > 0)
            .unwrap_or(false);
        if posix_active {
            out.insert(IssueLabel::MultiProcessWithoutMpi);
        }
    }

    // --- No collective I/O (per direction, MPI-IO) ---------------------------
    if let Some(mpiio) = &summary.mpiio {
        if mpiio.indep_reads + mpiio.coll_reads >= th::MIN_MPIIO_OPS
            && mpiio.collective_read_fraction() < th::COLLECTIVE_FRACTION
        {
            out.insert(IssueLabel::NoCollectiveRead);
        }
        if mpiio.indep_writes + mpiio.coll_writes >= th::MIN_MPIIO_OPS
            && mpiio.collective_write_fraction() < th::COLLECTIVE_FRACTION
        {
            out.insert(IssueLabel::NoCollectiveWrite);
        }
    }

    // --- Low-level library ----------------------------------------------------
    if let Some(stdio) = &summary.stdio {
        if stdio.bytes_read >= th::STDIO_MIN_BYTES
            && summary.stdio_read_fraction() > th::STDIO_FRACTION
        {
            out.insert(IssueLabel::LowLevelLibraryRead);
        }
        if stdio.bytes_written >= th::STDIO_MIN_BYTES
            && summary.stdio_write_fraction() > th::STDIO_FRACTION
        {
            out.insert(IssueLabel::LowLevelLibraryWrite);
        }
    }

    // Suppress direction rules when the direction lives entirely in MPI-IO
    // collective buffering... (not needed: generators keep POSIX mirrors).
    let _ = aggregate(trace, Module::Stdio);

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::synthesize;
    use crate::spec::all_specs;

    /// The linchpin of TraceBench: every generated trace must exhibit
    /// exactly its planted label set, no more, no fewer.
    #[test]
    fn every_trace_round_trips_its_labels() {
        for spec in all_specs() {
            let trace = synthesize(&spec);
            let detected = reference_detect(&trace);
            let expected: BTreeSet<IssueLabel> = spec.labels.iter().copied().collect();
            assert_eq!(
                detected, expected,
                "{}: detected {:?} expected {:?}",
                spec.id, detected, expected
            );
        }
    }

    #[test]
    fn detection_survives_text_round_trip() {
        for spec in all_specs().into_iter().take(8) {
            let trace = synthesize(&spec);
            let text = darshan::write::write_text(&trace);
            let back = darshan::parse::parse_text(&text).unwrap();
            assert_eq!(
                reference_detect(&back),
                reference_detect(&trace),
                "{}",
                spec.id
            );
        }
    }

    #[test]
    fn empty_trace_detects_nothing() {
        let t = DarshanTrace::new(darshan::JobHeader::default());
        assert!(reference_detect(&t).is_empty());
    }
}
