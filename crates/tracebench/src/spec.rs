//! Static specifications of the 40 TraceBench traces.
//!
//! Each spec pins the trace's provenance (Simple-Bench / IO500 / Real
//! Applications), the expert-confirmed issue labels, and the workload
//! parameters the generator uses to synthesise a Darshan trace exhibiting
//! exactly those issues. The per-source label totals reproduce the paper's
//! Table III (182 issues over 40 traces).

use crate::labels::IssueLabel;
use serde::{Deserialize, Serialize};
use IssueLabel::*;

/// Provenance of a TraceBench trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Source {
    /// Rudimentary C programs each targeting specific issues.
    SimpleBench,
    /// Configurations of the IO500 benchmark.
    Io500,
    /// Traces of real applications on production systems.
    RealApps,
}

impl Source {
    /// All sources in paper order.
    pub const ALL: [Source; 3] = [Source::SimpleBench, Source::Io500, Source::RealApps];

    /// Short name as used in the paper's tables.
    pub fn short(&self) -> &'static str {
        match self {
            Source::SimpleBench => "SB",
            Source::Io500 => "IO500",
            Source::RealApps => "RA",
        }
    }

    /// Full display name.
    pub fn display(&self) -> &'static str {
        match self {
            Source::SimpleBench => "Simple-Bench",
            Source::Io500 => "IO500",
            Source::RealApps => "Real-Applications",
        }
    }
}

/// How the workload's I/O interfaces are wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoApi {
    /// POSIX only, no MPI-IO records.
    PosixOnly,
    /// MPI-IO with only independent operations in both directions.
    MpiioIndependent,
    /// MPI-IO with collective operations in both directions.
    MpiioCollective,
    /// MPI-IO with independent reads but collective writes.
    MpiioIndepReadCollWrite,
    /// Bulk data through STDIO streams (POSIX only carries a trickle).
    StdioHeavy,
}

/// Static description of one TraceBench trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceSpec {
    /// Stable identifier, e.g. `sb01_small_io`.
    pub id: &'static str,
    /// Workload name for display.
    pub name: &'static str,
    /// Provenance bucket.
    pub source: Source,
    /// Ground-truth issue labels (expert-confirmed in the paper).
    pub labels: &'static [IssueLabel],
    /// MPI process count.
    pub nprocs: u64,
    /// Wall-clock runtime (seconds).
    pub run_time: f64,
    /// Number of data files (shared-file traces use 1 data file).
    pub file_count: usize,
    /// Total megabytes read across the job.
    pub read_mb: u64,
    /// Total megabytes written across the job.
    pub write_mb: u64,
    /// I/O interface wiring.
    pub api: IoApi,
    /// One-line description of the scenario.
    pub description: &'static str,
}

impl TraceSpec {
    /// Whether a label is in the ground-truth set.
    pub fn has(&self, label: IssueLabel) -> bool {
        self.labels.contains(&label)
    }
}

/// All 40 trace specifications.
pub fn all_specs() -> Vec<TraceSpec> {
    let mut v = Vec::with_capacity(40);
    v.extend(simple_bench_specs());
    v.extend(io500_specs());
    v.extend(real_app_specs());
    v
}

/// The 10 Simple-Bench specs.
pub fn simple_bench_specs() -> Vec<TraceSpec> {
    vec![
        TraceSpec {
            id: "sb01_small_io",
            name: "simple small I/O",
            source: Source::SimpleBench,
            labels: &[SmallRead, SmallWrite, NoCollectiveRead, NoCollectiveWrite],
            nprocs: 4,
            run_time: 30.0,
            file_count: 4,
            read_mb: 2,
            write_mb: 2,
            api: IoApi::MpiioIndependent,
            description: "C program issuing 8 KiB independent reads and writes per rank",
        },
        TraceSpec {
            id: "sb02_misaligned",
            name: "simple misaligned I/O",
            source: Source::SimpleBench,
            labels: &[
                MisalignedRead,
                MisalignedWrite,
                NoCollectiveRead,
                NoCollectiveWrite,
                ServerLoadImbalance,
            ],
            nprocs: 4,
            run_time: 35.0,
            file_count: 4,
            read_mb: 600,
            write_mb: 600,
            api: IoApi::MpiioIndependent,
            description: "large transfers offset off the stripe boundary on a 1-stripe file",
        },
        TraceSpec {
            id: "sb03_metadata_storm",
            name: "simple metadata storm",
            source: Source::SimpleBench,
            labels: &[HighMetadataLoad, ServerLoadImbalance],
            nprocs: 1,
            run_time: 40.0,
            file_count: 50,
            read_mb: 0,
            write_mb: 16,
            api: IoApi::PosixOnly,
            description: "open/stat/close loop over many small files",
        },
        TraceSpec {
            id: "sb04_shared_file",
            name: "simple shared file",
            source: Source::SimpleBench,
            labels: &[
                SharedFileAccess,
                NoCollectiveRead,
                NoCollectiveWrite,
                ServerLoadImbalance,
            ],
            nprocs: 4,
            run_time: 45.0,
            file_count: 1,
            read_mb: 512,
            write_mb: 512,
            api: IoApi::MpiioIndependent,
            description: "all ranks read and write one file with independent MPI-IO",
        },
        TraceSpec {
            id: "sb05_repetitive_read",
            name: "simple repetitive read",
            source: Source::SimpleBench,
            labels: &[RepetitiveRead, NoCollectiveRead, ServerLoadImbalance],
            nprocs: 4,
            run_time: 50.0,
            file_count: 4,
            read_mb: 640,
            write_mb: 0,
            api: IoApi::MpiioIndependent,
            description: "re-reads the same 128 MiB region five times",
        },
        TraceSpec {
            id: "sb06_rank_imbalance",
            name: "simple rank imbalance",
            source: Source::SimpleBench,
            labels: &[RankLoadImbalance, ServerLoadImbalance],
            nprocs: 8,
            run_time: 55.0,
            file_count: 8,
            read_mb: 256,
            write_mb: 256,
            api: IoApi::MpiioCollective,
            description: "rank 0 moves ten times the data of every other rank",
        },
        TraceSpec {
            id: "sb07_stdio_heavy",
            name: "simple STDIO streams",
            source: Source::SimpleBench,
            labels: &[LowLevelLibraryRead, LowLevelLibraryWrite],
            nprocs: 1,
            run_time: 25.0,
            file_count: 2,
            read_mb: 64,
            write_mb: 64,
            api: IoApi::StdioHeavy,
            description: "bulk data pushed through fread/fwrite streams",
        },
        TraceSpec {
            id: "sb08_misaligned_small",
            name: "simple misaligned small I/O",
            source: Source::SimpleBench,
            labels: &[
                MisalignedRead,
                MisalignedWrite,
                SmallRead,
                SmallWrite,
                NoCollectiveRead,
                NoCollectiveWrite,
                ServerLoadImbalance,
            ],
            nprocs: 4,
            run_time: 60.0,
            file_count: 4,
            read_mb: 20,
            write_mb: 20,
            api: IoApi::MpiioIndependent,
            description: "47008-byte unaligned independent transfers on 1-stripe files",
        },
        TraceSpec {
            id: "sb09_independent_io",
            name: "simple independent I/O",
            source: Source::SimpleBench,
            labels: &[NoCollectiveRead, NoCollectiveWrite],
            nprocs: 4,
            run_time: 30.0,
            file_count: 4,
            read_mb: 512,
            write_mb: 512,
            api: IoApi::MpiioIndependent,
            description: "well-formed 4 MiB I/O that simply never goes collective",
        },
        TraceSpec {
            id: "sb10_server_hotspot",
            name: "simple server hotspot",
            source: Source::SimpleBench,
            labels: &[ServerLoadImbalance],
            nprocs: 1,
            run_time: 40.0,
            file_count: 1,
            read_mb: 0,
            write_mb: 1024,
            api: IoApi::PosixOnly,
            description: "1 GiB streamed onto a single OST via stripe count 1",
        },
    ]
}

/// The 21 IO500 specs.
pub fn io500_specs() -> Vec<TraceSpec> {
    let mut v = Vec::with_capacity(21);
    // Group 1: ior-easy, POSIX api, 8 KiB transfers (×4).
    for i in 1..=4u32 {
        v.push(TraceSpec {
            id: match i {
                1 => "io500_easy_posix_small_1",
                2 => "io500_easy_posix_small_2",
                3 => "io500_easy_posix_small_3",
                _ => "io500_easy_posix_small_4",
            },
            name: "IO500 ior-easy POSIX 8k",
            source: Source::Io500,
            labels: &[
                SmallRead,
                SmallWrite,
                MisalignedRead,
                MisalignedWrite,
                MultiProcessWithoutMpi,
                ServerLoadImbalance,
            ],
            nprocs: 16,
            run_time: 300.0,
            file_count: 16,
            read_mb: 200,
            write_mb: 200,
            api: IoApi::PosixOnly,
            description: "ior-easy tuned to 8k transfers through independent POSIX ops",
        });
    }
    // Group 2: ior-hard, POSIX api, 47008-byte shared-file transfers (×6).
    for i in 1..=6u32 {
        v.push(TraceSpec {
            id: match i {
                1 => "io500_hard_posix_1",
                2 => "io500_hard_posix_2",
                3 => "io500_hard_posix_3",
                4 => "io500_hard_posix_4",
                5 => "io500_hard_posix_5",
                _ => "io500_hard_posix_6",
            },
            name: "IO500 ior-hard POSIX",
            source: Source::Io500,
            labels: &[
                SharedFileAccess,
                SmallRead,
                SmallWrite,
                MisalignedRead,
                MisalignedWrite,
                MultiProcessWithoutMpi,
                ServerLoadImbalance,
            ],
            nprocs: 16,
            run_time: 360.0,
            file_count: 1,
            read_mb: 300,
            write_mb: 300,
            api: IoApi::PosixOnly,
            description: "ior-hard 47008-byte interleaved writes to one shared file",
        });
    }
    // Group 3: ior-easy, MPI-IO api forced independent (×3; Srv on 1 & 2).
    for i in 1..=3u32 {
        v.push(TraceSpec {
            id: match i {
                1 => "io500_easy_mpiio_indep_1",
                2 => "io500_easy_mpiio_indep_2",
                _ => "io500_easy_mpiio_indep_3",
            },
            name: "IO500 ior-easy MPI-IO independent",
            source: Source::Io500,
            labels: if i <= 2 {
                &[NoCollectiveRead, NoCollectiveWrite, ServerLoadImbalance]
            } else {
                &[NoCollectiveRead, NoCollectiveWrite]
            },
            nprocs: 16,
            run_time: 420.0,
            file_count: 16,
            read_mb: 2048,
            write_mb: 2048,
            api: IoApi::MpiioIndependent,
            description: "ior-easy through MPI-IO with collective buffering disabled",
        });
    }
    // Group 4: ior-hard, MPI-IO independent, random offsets (×4; Srv on 1 & 2).
    for i in 1..=4u32 {
        v.push(TraceSpec {
            id: match i {
                1 => "io500_hard_mpiio_indep_1",
                2 => "io500_hard_mpiio_indep_2",
                3 => "io500_hard_mpiio_indep_3",
                _ => "io500_hard_mpiio_indep_4",
            },
            name: "IO500 ior-hard MPI-IO independent random",
            source: Source::Io500,
            labels: if i <= 2 {
                &[
                    SharedFileAccess,
                    NoCollectiveRead,
                    NoCollectiveWrite,
                    RandomRead,
                    RandomWrite,
                    ServerLoadImbalance,
                ]
            } else {
                &[
                    SharedFileAccess,
                    NoCollectiveRead,
                    NoCollectiveWrite,
                    RandomRead,
                    RandomWrite,
                ]
            },
            nprocs: 16,
            run_time: 480.0,
            file_count: 1,
            read_mb: 1024,
            write_mb: 1024,
            api: IoApi::MpiioIndependent,
            description: "ior-hard random offsets into one shared file, independent MPI-IO",
        });
    }
    // Group 5: mdtest-hard (×2).
    for i in 1..=2u32 {
        v.push(TraceSpec {
            id: if i == 1 {
                "io500_mdtest_hard_1"
            } else {
                "io500_mdtest_hard_2"
            },
            name: "IO500 mdtest-hard",
            source: Source::Io500,
            labels: &[HighMetadataLoad, SharedFileAccess, MultiProcessWithoutMpi],
            nprocs: 16,
            run_time: 240.0,
            file_count: 1000,
            read_mb: 200,
            write_mb: 200,
            api: IoApi::PosixOnly,
            description: "mdtest-hard create/stat/unlink storm over a shared directory tree",
        });
    }
    // Group 6a: random POSIX shared-file run.
    v.push(TraceSpec {
        id: "io500_rnd_posix_shared",
        name: "IO500 ior-rnd POSIX shared",
        source: Source::Io500,
        labels: &[
            SharedFileAccess,
            MultiProcessWithoutMpi,
            RandomRead,
            RandomWrite,
            ServerLoadImbalance,
        ],
        nprocs: 16,
        run_time: 300.0,
        file_count: 1,
        read_mb: 1024,
        write_mb: 1024,
        api: IoApi::PosixOnly,
        description: "random 4 MiB POSIX accesses into one shared 1-stripe file",
    });
    // Group 6b: shared-file independent MPI-IO run.
    v.push(TraceSpec {
        id: "io500_mpiio_indep_shared",
        name: "IO500 ior-easy MPI-IO shared",
        source: Source::Io500,
        labels: &[SharedFileAccess, NoCollectiveRead, NoCollectiveWrite],
        nprocs: 16,
        run_time: 300.0,
        file_count: 1,
        read_mb: 1024,
        write_mb: 1024,
        api: IoApi::MpiioIndependent,
        description: "sequential 4 MiB independent MPI-IO into one well-striped shared file",
    });
    v
}

/// The 9 Real-Application specs.
pub fn real_app_specs() -> Vec<TraceSpec> {
    vec![
        TraceSpec {
            id: "ra_amrex",
            name: "AMReX",
            source: Source::RealApps,
            labels: &[
                NoCollectiveRead,
                NoCollectiveWrite,
                ServerLoadImbalance,
                SmallWrite,
                MisalignedWrite,
            ],
            nprocs: 8,
            run_time: 722.0,
            file_count: 11,
            read_mb: 200,
            write_mb: 500,
            api: IoApi::MpiioIndependent,
            description: "block-structured AMR plotfile dump: small unaligned writes, \
                          stripe count 1, MPI-IO never goes collective",
        },
        TraceSpec {
            id: "ra_e2e_orig",
            name: "E2E (original)",
            source: Source::RealApps,
            labels: &[
                SmallRead,
                MisalignedRead,
                SmallWrite,
                MisalignedWrite,
                HighMetadataLoad,
            ],
            nprocs: 16,
            run_time: 400.0,
            file_count: 16,
            read_mb: 300,
            write_mb: 300,
            api: IoApi::MpiioCollective,
            description: "end-to-end coupling workflow with 47008-byte records and \
                          per-step metadata churn",
        },
        TraceSpec {
            id: "ra_e2e_fixed",
            name: "E2E (recollected)",
            source: Source::RealApps,
            labels: &[MisalignedWrite],
            nprocs: 16,
            run_time: 260.0,
            file_count: 16,
            read_mb: 500,
            write_mb: 2048,
            api: IoApi::MpiioCollective,
            description: "E2E after tuning: large collective I/O, one residual \
                          off-boundary write pattern",
        },
        TraceSpec {
            id: "ra_openpmd_orig",
            name: "OpenPMD (original)",
            source: Source::RealApps,
            labels: &[
                SharedFileAccess,
                RandomRead,
                RandomWrite,
                MisalignedWrite,
                SmallWrite,
            ],
            nprocs: 32,
            run_time: 540.0,
            file_count: 1,
            read_mb: 500,
            write_mb: 800,
            api: IoApi::MpiioCollective,
            description: "particle-mesh dumps into one shared series file with \
                          scattered small unaligned writes",
        },
        TraceSpec {
            id: "ra_openpmd_fixed",
            name: "OpenPMD (recollected)",
            source: Source::RealApps,
            labels: &[SharedFileAccess],
            nprocs: 32,
            run_time: 310.0,
            file_count: 1,
            read_mb: 1024,
            write_mb: 2048,
            api: IoApi::MpiioCollective,
            description: "OpenPMD after chunk-size tuning: clean collective shared-file I/O",
        },
        TraceSpec {
            id: "ra_hacc_io",
            name: "HACC-IO",
            source: Source::RealApps,
            labels: &[
                SharedFileAccess,
                SmallRead,
                MisalignedRead,
                SmallWrite,
                MisalignedWrite,
                NoCollectiveRead,
                NoCollectiveWrite,
            ],
            nprocs: 32,
            run_time: 480.0,
            file_count: 1,
            read_mb: 1024,
            write_mb: 1024,
            api: IoApi::MpiioIndependent,
            description: "cosmology particle checkpoint: every rank writes small \
                          unaligned records independently into one file",
        },
        TraceSpec {
            id: "ra_vpic_io",
            name: "VPIC-IO",
            source: Source::RealApps,
            labels: &[
                SharedFileAccess,
                SmallRead,
                MisalignedRead,
                SmallWrite,
                MisalignedWrite,
                NoCollectiveRead,
                RandomWrite,
            ],
            nprocs: 64,
            run_time: 600.0,
            file_count: 1,
            read_mb: 600,
            write_mb: 900,
            api: IoApi::MpiioIndepReadCollWrite,
            description: "plasma physics particle dump: independent small reads, \
                          scattered small collective writes",
        },
        TraceSpec {
            id: "ra_nyx",
            name: "Nyx",
            source: Source::RealApps,
            labels: &[
                SmallRead,
                MisalignedRead,
                RankLoadImbalance,
                NoCollectiveRead,
            ],
            nprocs: 16,
            run_time: 450.0,
            file_count: 16,
            read_mb: 300,
            write_mb: 1024,
            api: IoApi::MpiioIndepReadCollWrite,
            description: "cosmology AMR restart: rank 0 re-reads grid metadata in \
                          small unaligned chunks",
        },
        TraceSpec {
            id: "ra_montage",
            name: "Montage",
            source: Source::RealApps,
            labels: &[
                HighMetadataLoad,
                SmallRead,
                SmallWrite,
                RandomRead,
                ServerLoadImbalance,
            ],
            nprocs: 1,
            run_time: 380.0,
            file_count: 30,
            read_mb: 50,
            write_mb: 50,
            api: IoApi::PosixOnly,
            description: "astronomy mosaicking workflow: thousands of small FITS \
                          accesses across many files",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn forty_specs_with_unique_ids() {
        let specs = all_specs();
        assert_eq!(specs.len(), 40);
        let mut ids: Vec<_> = specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn source_counts_match_paper() {
        let specs = all_specs();
        let count = |s: Source| specs.iter().filter(|t| t.source == s).count();
        assert_eq!(count(Source::SimpleBench), 10);
        assert_eq!(count(Source::Io500), 21);
        assert_eq!(count(Source::RealApps), 9);
    }

    /// The per-source label totals of the paper's Table III.
    #[test]
    fn table3_label_totals() {
        let specs = all_specs();
        let mut counts: BTreeMap<(IssueLabel, Source), usize> = BTreeMap::new();
        for spec in &specs {
            for &l in spec.labels {
                *counts.entry((l, spec.source)).or_insert(0) += 1;
            }
        }
        let c = |l, s| counts.get(&(l, s)).copied().unwrap_or(0);
        use Source::*;
        let expected: [(IssueLabel, usize, usize, usize); 16] = [
            (HighMetadataLoad, 1, 2, 2),
            (MisalignedRead, 2, 10, 4),
            (MisalignedWrite, 2, 10, 6),
            (RandomWrite, 0, 5, 2),
            (RandomRead, 0, 5, 2),
            (SharedFileAccess, 1, 14, 4),
            (SmallRead, 2, 10, 5),
            (SmallWrite, 2, 10, 6),
            (RepetitiveRead, 1, 0, 0),
            (ServerLoadImbalance, 7, 15, 2),
            (RankLoadImbalance, 1, 0, 1),
            (MultiProcessWithoutMpi, 0, 13, 0),
            (NoCollectiveRead, 6, 8, 4),
            (NoCollectiveWrite, 5, 8, 2),
            (LowLevelLibraryRead, 1, 0, 0),
            (LowLevelLibraryWrite, 1, 0, 0),
        ];
        for (label, sb, io500, ra) in expected {
            assert_eq!(c(label, SimpleBench), sb, "{label:?} SB");
            assert_eq!(c(label, Io500), io500, "{label:?} IO500");
            assert_eq!(c(label, RealApps), ra, "{label:?} RA");
        }
        let total: usize = specs.iter().map(|s| s.labels.len()).sum();
        assert_eq!(total, 182);
    }

    #[test]
    fn every_trace_has_at_least_one_label() {
        for spec in all_specs() {
            assert!(!spec.labels.is_empty(), "{}", spec.id);
        }
    }

    #[test]
    fn no_duplicate_labels_within_a_trace() {
        for spec in all_specs() {
            let mut labels = spec.labels.to_vec();
            labels.sort_unstable();
            let n = labels.len();
            labels.dedup();
            assert_eq!(labels.len(), n, "{}", spec.id);
        }
    }

    /// Multi-process traces without MPI-IO must carry the
    /// MultiProcessWithoutMpi label, and vice versa.
    #[test]
    fn api_is_consistent_with_mp_label() {
        for spec in all_specs() {
            let posix_only = matches!(spec.api, IoApi::PosixOnly | IoApi::StdioHeavy);
            if spec.nprocs > 1 && posix_only {
                assert!(
                    spec.has(IssueLabel::MultiProcessWithoutMpi),
                    "{} is multi-process POSIX-only but not MP-labelled",
                    spec.id
                );
            }
            if spec.has(IssueLabel::MultiProcessWithoutMpi) {
                assert!(
                    posix_only && spec.nprocs > 1,
                    "{} MP label but has MPI-IO",
                    spec.id
                );
            }
            // No-collective labels require an MPI-IO api.
            if spec.has(IssueLabel::NoCollectiveRead) || spec.has(IssueLabel::NoCollectiveWrite) {
                assert!(!posix_only, "{} NC label without MPI-IO", spec.id);
            }
        }
    }

    /// A direction may be labelled Small without Misaligned only when the
    /// *other* direction is not labelled Misaligned (otherwise the combined
    /// misalignment fraction would mis-attribute); see generator notes.
    #[test]
    fn no_cross_direction_small_misaligned_conflicts() {
        for spec in all_specs() {
            let conflict_read =
                spec.has(MisalignedWrite) && !spec.has(MisalignedRead) && spec.has(SmallRead);
            let conflict_write =
                spec.has(MisalignedRead) && !spec.has(MisalignedWrite) && spec.has(SmallWrite);
            assert!(
                !conflict_read,
                "{}: SmallRead next to MisalignedWrite-only",
                spec.id
            );
            assert!(
                !conflict_write,
                "{}: SmallWrite next to MisalignedRead-only",
                spec.id
            );
        }
    }
}
