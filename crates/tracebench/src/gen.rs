//! Synthesis of Darshan traces from TraceBench specs.
//!
//! Each labelled issue is *planted by construction* with a comfortable
//! margin beyond the shared detection thresholds, and unlabelled behaviour
//! is kept well below them, so the reference detector in [`crate::check`]
//! recovers exactly the spec's label set. Generation is deterministic: all
//! jitter comes from a ChaCha RNG seeded from the spec id.

use crate::labels::IssueLabel;
use crate::spec::{IoApi, TraceSpec};
use crate::thresholds as th;
use darshan::counters::{size_bin_index, Module, SIZE_BINS};
use darshan::{DarshanTrace, JobHeader, Mount, Record};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic 64-bit FNV-1a hash used for seeding and record ids.
pub fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Per-direction synthesis plan derived from the label set.
#[derive(Debug, Clone, Copy)]
struct DirPlan {
    /// Total operations in this direction across the job.
    ops: i64,
    /// Transfer size in bytes.
    size: i64,
    /// Fraction of sequential operations.
    seq_frac: f64,
    /// Fraction of operations not aligned to the file system.
    mis_frac: f64,
}

impl DirPlan {
    fn new(total_mb: u64, small: bool, misaligned: bool, random: bool) -> Self {
        let size: i64 = match (small, misaligned) {
            (true, true) => 47_008,
            (true, false) => 8_192,
            (false, true) => 4 * 1024 * 1024 + 1,
            (false, false) => 4 * 1024 * 1024,
        };
        let bytes = (total_mb as i64) * 1024 * 1024;
        let ops = bytes / size;
        DirPlan {
            ops,
            size,
            seq_frac: if random { 0.15 } else { 0.96 },
            mis_frac: if misaligned { 0.92 } else { 0.02 },
        }
    }

    fn empty() -> Self {
        DirPlan {
            ops: 0,
            size: 0,
            seq_frac: 0.0,
            mis_frac: 0.0,
        }
    }
}

/// Synthesize the Darshan trace for a spec.
pub fn synthesize(spec: &TraceSpec) -> DarshanTrace {
    let mut rng = ChaCha8Rng::seed_from_u64(stable_hash(spec.id));
    let has = |l: IssueLabel| spec.has(l);

    let read = if spec.read_mb > 0 {
        DirPlan::new(
            spec.read_mb,
            has(IssueLabel::SmallRead),
            has(IssueLabel::MisalignedRead),
            has(IssueLabel::RandomRead),
        )
    } else {
        DirPlan::empty()
    };
    let write = if spec.write_mb > 0 {
        DirPlan::new(
            spec.write_mb,
            has(IssueLabel::SmallWrite),
            has(IssueLabel::MisalignedWrite),
            has(IssueLabel::RandomWrite),
        )
    } else {
        DirPlan::empty()
    };

    let mut header = JobHeader::new(format!("./{}", spec.id), spec.nprocs, spec.run_time);
    header.jobid = stable_hash(spec.id) % 1_000_000;
    header.uid = 2000 + (stable_hash(spec.id) % 500);
    header.mounts = vec![
        Mount {
            point: "/scratch".into(),
            fs: "lustre".into(),
        },
        Mount {
            point: "/home".into(),
            fs: "nfs".into(),
        },
    ];
    let mut trace = DarshanTrace::new(header);

    let stdio_heavy = matches!(spec.api, IoApi::StdioHeavy);
    let shared = has(IssueLabel::SharedFileAccess);
    let hml = has(IssueLabel::HighMetadataLoad);
    let repetitive = has(IssueLabel::RepetitiveRead);
    let rank_skew = has(IssueLabel::RankLoadImbalance);
    let srv = has(IssueLabel::ServerLoadImbalance);
    let stripe_width: i64 = if srv { 1 } else { 8 };

    // -------- data-file layout --------------------------------------------
    // Shared traces put all data in one rank −1 record; otherwise data files
    // are assigned round-robin to ranks, with a 10× weight on rank 0 when
    // rank imbalance is planted.
    struct FileSlot {
        rank: i64,
        weight: f64,
        path: String,
    }
    let mut slots: Vec<FileSlot> = Vec::new();
    // Metadata-only side files (created/stated but carrying no data); used
    // by shared-file traces whose spec still names many files (mdtest).
    let mut meta_only: Vec<(i64, String)> = Vec::new();
    if stdio_heavy {
        // Bulk data goes through STDIO records instead; no POSIX data files.
    } else if shared {
        slots.push(FileSlot {
            rank: -1,
            weight: 1.0,
            path: format!("/scratch/{}/shared.dat", spec.id),
        });
        for i in 1..spec.file_count {
            let rank = (i as u64 % spec.nprocs) as i64;
            meta_only.push((rank, format!("/scratch/{}/meta.{:05}", spec.id, i)));
        }
    } else {
        let n = spec.file_count.max(1);
        for i in 0..n {
            let rank = (i as u64 % spec.nprocs) as i64;
            let weight = if rank_skew && rank == 0 { 10.0 } else { 1.0 };
            slots.push(FileSlot {
                rank,
                weight,
                path: format!("/scratch/{}/data.{:04}", spec.id, i),
            });
        }
    }
    let total_weight: f64 = slots.iter().map(|s| s.weight).sum::<f64>().max(1.0);
    // ±3 % deterministic jitter on the totals so same-group IO500 traces
    // differ, then exact largest-remainder apportionment across files so
    // low-volume traces do not round every share to zero.
    let jitter = 1.0 + rng.gen_range(-0.03..0.03_f64);
    let r_total = (read.ops as f64 * jitter).round() as i64;
    let w_total = (write.ops as f64 * jitter).round() as i64;
    let apportion = |total: i64| -> Vec<i64> {
        let mut out = Vec::with_capacity(slots.len());
        let mut cum_w = 0.0;
        let mut allotted = 0i64;
        for s in &slots {
            cum_w += s.weight;
            let upto = (total as f64 * cum_w / total_weight).round() as i64;
            out.push((upto - allotted).max(0));
            allotted = upto;
        }
        out
    };
    let r_ops_per_slot = apportion(r_total);
    let w_ops_per_slot = apportion(w_total);

    // Metadata budget: HML jobs burn ~40 % of runtime×ranks in metadata,
    // healthy jobs ~2 %.
    let meta_total = if hml { 0.40 } else { 0.02 } * spec.run_time * spec.nprocs as f64;
    let (opens_per_file, stats_per_file) = if hml { (40i64, 120i64) } else { (1i64, 1i64) };

    let mpiio = match spec.api {
        IoApi::PosixOnly | IoApi::StdioHeavy => None,
        IoApi::MpiioIndependent => Some((false, false)), // (read coll?, write coll?)
        IoApi::MpiioCollective => Some((true, true)),
        IoApi::MpiioIndepReadCollWrite => Some((false, true)),
    };

    for (idx, slot) in slots.iter().enumerate() {
        let share = slot.weight / total_weight;
        let r_ops = r_ops_per_slot[idx];
        let w_ops = w_ops_per_slot[idx];
        let r_bytes = r_ops * read.size;
        let w_bytes = w_ops * write.size;
        let record_id = stable_hash(&slot.path);

        let mut rec = Record::new(Module::Posix, slot.rank, record_id, slot.path.clone())
            .with_mount("/scratch", "lustre");
        rec.set_ic("POSIX_OPENS", opens_per_file);
        rec.set_ic("POSIX_STATS", stats_per_file);
        rec.set_ic("POSIX_READS", r_ops);
        rec.set_ic("POSIX_WRITES", w_ops);
        rec.set_ic("POSIX_SEEKS", ((r_ops + w_ops) as f64 * 0.1) as i64);
        rec.set_ic("POSIX_BYTES_READ", r_bytes);
        rec.set_ic("POSIX_BYTES_WRITTEN", w_bytes);
        // Byte range touched: repetitive readers sweep 1/5 of the volume
        // five times; everyone else touches each byte once.
        let read_range = if repetitive {
            (r_bytes / 5).max(1)
        } else {
            r_bytes
        };
        rec.set_ic("POSIX_MAX_BYTE_READ", (read_range - 1).max(0));
        rec.set_ic("POSIX_MAX_BYTE_WRITTEN", (w_bytes - 1).max(0));
        if r_ops > 0 {
            rec.set_ic("POSIX_MAX_READ_TIME_SIZE", read.size);
            rec.set_ic("POSIX_SEQ_READS", (r_ops as f64 * read.seq_frac) as i64);
            rec.set_ic(
                "POSIX_CONSEC_READS",
                (r_ops as f64 * read.seq_frac * 0.8) as i64,
            );
            rec.set_ic(
                &format!(
                    "POSIX_SIZE_READ_{}",
                    SIZE_BINS[size_bin_index(read.size as u64)]
                ),
                r_ops,
            );
        }
        if w_ops > 0 {
            rec.set_ic("POSIX_MAX_WRITE_TIME_SIZE", write.size);
            rec.set_ic("POSIX_SEQ_WRITES", (w_ops as f64 * write.seq_frac) as i64);
            rec.set_ic(
                "POSIX_CONSEC_WRITES",
                (w_ops as f64 * write.seq_frac * 0.8) as i64,
            );
            rec.set_ic(
                &format!(
                    "POSIX_SIZE_WRITE_{}",
                    SIZE_BINS[size_bin_index(write.size as u64)]
                ),
                w_ops,
            );
        }
        rec.set_ic(
            "POSIX_FILE_NOT_ALIGNED",
            (r_ops as f64 * read.mis_frac + w_ops as f64 * write.mis_frac) as i64,
        );
        rec.set_ic("POSIX_FILE_ALIGNMENT", th::LUSTRE_ALIGNMENT);
        rec.set_ic(
            "POSIX_MEM_NOT_ALIGNED",
            ((r_ops + w_ops) as f64 * 0.05) as i64,
        );
        rec.set_ic("POSIX_MEM_ALIGNMENT", 8);
        rec.set_ic("POSIX_RW_SWITCHES", (r_ops.min(w_ops) as f64 * 0.1) as i64);
        // Dominant access size: whichever direction carries more operations.
        let (a_size, a_count) = if r_ops >= w_ops {
            (read.size, r_ops)
        } else {
            (write.size, w_ops)
        };
        if a_count > 0 {
            rec.set_ic("POSIX_ACCESS1_ACCESS", a_size);
            rec.set_ic("POSIX_ACCESS1_COUNT", a_count);
        }
        // Timing: bandwidth degraded by planted issues for realism.
        let bw = effective_bandwidth(spec);
        rec.set_fc("POSIX_F_READ_TIME", r_bytes as f64 / bw);
        rec.set_fc("POSIX_F_WRITE_TIME", w_bytes as f64 / bw);
        rec.set_fc("POSIX_F_META_TIME", meta_total * share);
        if slot.rank < 0 {
            // Shared record: per-rank balance counters.
            let avg = (r_bytes + w_bytes) as f64 / spec.nprocs as f64;
            let (fastest, slowest) = if rank_skew {
                (avg * 5.0, avg * 0.4)
            } else {
                (avg * 1.1, avg * 0.9)
            };
            rec.set_ic("POSIX_FASTEST_RANK", 0);
            rec.set_ic("POSIX_FASTEST_RANK_BYTES", fastest as i64);
            rec.set_ic("POSIX_SLOWEST_RANK", (spec.nprocs - 1) as i64);
            rec.set_ic("POSIX_SLOWEST_RANK_BYTES", slowest as i64);
            let var_frac = if rank_skew { 2.0 } else { 0.01 };
            rec.set_fc("POSIX_F_VARIANCE_RANK_BYTES", (avg * var_frac).powi(2));
            rec.set_fc(
                "POSIX_F_VARIANCE_RANK_TIME",
                if rank_skew { 25.0 } else { 0.05 },
            );
        }
        trace.push(rec);

        // MPI-IO record mirroring the interface-level activity.
        if let Some((read_coll, write_coll)) = mpiio {
            let mut m = Record::new(Module::Mpiio, slot.rank, record_id, slot.path.clone())
                .with_mount("/scratch", "lustre");
            let (ir, cr) = if read_coll { (0, r_ops) } else { (r_ops, 0) };
            let (iw, cw) = if write_coll { (0, w_ops) } else { (w_ops, 0) };
            m.set_ic("MPIIO_INDEP_READS", ir);
            m.set_ic("MPIIO_COLL_READS", cr);
            m.set_ic("MPIIO_INDEP_WRITES", iw);
            m.set_ic("MPIIO_COLL_WRITES", cw);
            if read_coll || write_coll {
                m.set_ic("MPIIO_COLL_OPENS", opens_per_file);
            } else {
                m.set_ic("MPIIO_INDEP_OPENS", opens_per_file);
            }
            m.set_ic("MPIIO_BYTES_READ", r_bytes);
            m.set_ic("MPIIO_BYTES_WRITTEN", w_bytes);
            m.set_ic("MPIIO_RW_SWITCHES", (r_ops.min(w_ops) as f64 * 0.1) as i64);
            if r_ops > 0 {
                m.set_ic("MPIIO_MAX_READ_TIME_SIZE", read.size);
                m.set_ic(
                    &format!(
                        "MPIIO_SIZE_READ_AGG_{}",
                        SIZE_BINS[size_bin_index(read.size as u64)]
                    ),
                    r_ops,
                );
            }
            if w_ops > 0 {
                m.set_ic("MPIIO_MAX_WRITE_TIME_SIZE", write.size);
                m.set_ic(
                    &format!(
                        "MPIIO_SIZE_WRITE_AGG_{}",
                        SIZE_BINS[size_bin_index(write.size as u64)]
                    ),
                    w_ops,
                );
            }
            m.set_fc(
                "MPIIO_F_READ_TIME",
                r_bytes as f64 / effective_bandwidth(spec),
            );
            m.set_fc(
                "MPIIO_F_WRITE_TIME",
                w_bytes as f64 / effective_bandwidth(spec),
            );
            m.set_fc("MPIIO_F_META_TIME", meta_total * 0.1 * share);
            trace.push(m);
        }

        // Lustre striping record for every data file.
        trace.push(lustre_record(
            slot.rank,
            record_id,
            &slot.path,
            stripe_width,
            idx,
            srv,
        ));
    }

    // Metadata-only records: opens and stats but no data traffic. They share
    // the job's metadata budget with the data files (half/half when present).
    if !meta_only.is_empty() {
        let meta_share = meta_total * 0.5 / meta_only.len() as f64;
        for (rank, path) in &meta_only {
            let record_id = stable_hash(path);
            let mut rec = Record::new(Module::Posix, *rank, record_id, path.clone())
                .with_mount("/scratch", "lustre");
            rec.set_ic("POSIX_OPENS", opens_per_file.max(2));
            rec.set_ic("POSIX_STATS", stats_per_file.max(3));
            rec.set_fc("POSIX_F_META_TIME", meta_share);
            trace.push(rec);
        }
    }

    // -------- STDIO records ------------------------------------------------
    // Every job reads a small configuration file through STDIO; STDIO-heavy
    // jobs additionally push their bulk data through streams.
    let cfg_path = format!("/home/{}/app.cfg", spec.id);
    let mut cfg =
        Record::new(Module::Stdio, 0, stable_hash(&cfg_path), cfg_path).with_mount("/home", "nfs");
    cfg.set_ic("STDIO_OPENS", 1);
    cfg.set_ic("STDIO_READS", 4);
    cfg.set_ic("STDIO_BYTES_READ", 4096);
    cfg.set_ic("STDIO_MAX_BYTE_READ", 4095);
    cfg.set_fc("STDIO_F_META_TIME", 0.001);
    cfg.set_fc("STDIO_F_READ_TIME", 0.002);
    trace.push(cfg);

    if stdio_heavy {
        const STREAM_OP: i64 = 64 * 1024;
        let n = spec.file_count.max(1);
        for i in 0..n {
            let path = format!("/scratch/{}/stream.{:02}", spec.id, i);
            let record_id = stable_hash(&path);
            let r_bytes = (spec.read_mb as i64) * 1024 * 1024 / n as i64;
            let w_bytes = (spec.write_mb as i64) * 1024 * 1024 / n as i64;
            let mut s = Record::new(Module::Stdio, 0, record_id, path.clone())
                .with_mount("/scratch", "lustre");
            s.set_ic("STDIO_OPENS", 1);
            s.set_ic("STDIO_READS", r_bytes / STREAM_OP);
            s.set_ic("STDIO_WRITES", w_bytes / STREAM_OP);
            s.set_ic("STDIO_BYTES_READ", r_bytes);
            s.set_ic("STDIO_BYTES_WRITTEN", w_bytes);
            s.set_ic("STDIO_MAX_BYTE_READ", (r_bytes - 1).max(0));
            s.set_ic("STDIO_MAX_BYTE_WRITTEN", (w_bytes - 1).max(0));
            s.set_fc(
                "STDIO_F_READ_TIME",
                r_bytes as f64 / effective_bandwidth(spec),
            );
            s.set_fc(
                "STDIO_F_WRITE_TIME",
                w_bytes as f64 / effective_bandwidth(spec),
            );
            s.set_fc("STDIO_F_META_TIME", 0.01);
            trace.push(s);
            trace.push(lustre_record(0, record_id, &path, stripe_width, i, srv));
        }
    }

    trace
}

/// Approximate delivered bandwidth (bytes/s) given the planted issues; only
/// used for plausible timing counters, never for detection.
fn effective_bandwidth(spec: &TraceSpec) -> f64 {
    let mut bw: f64 = 2.0e9; // 2 GB/s healthy baseline
    for l in spec.labels {
        bw *= match l {
            IssueLabel::SmallRead | IssueLabel::SmallWrite => 0.5,
            IssueLabel::MisalignedRead | IssueLabel::MisalignedWrite => 0.7,
            IssueLabel::RandomRead | IssueLabel::RandomWrite => 0.6,
            IssueLabel::ServerLoadImbalance => 0.4,
            IssueLabel::RankLoadImbalance => 0.7,
            IssueLabel::HighMetadataLoad => 0.8,
            _ => 1.0,
        };
    }
    bw.max(5.0e7)
}

/// Build the LUSTRE striping record for one data file.
fn lustre_record(
    rank: i64,
    record_id: u64,
    path: &str,
    stripe_width: i64,
    file_idx: usize,
    hotspot: bool,
) -> Record {
    let mut l = Record::new(Module::Lustre, rank, record_id, path).with_mount("/scratch", "lustre");
    l.set_ic("LUSTRE_OSTS", 64);
    l.set_ic("LUSTRE_MDTS", 8);
    l.set_ic("LUSTRE_STRIPE_OFFSET", 0);
    l.set_ic("LUSTRE_STRIPE_SIZE", th::LUSTRE_ALIGNMENT);
    l.set_ic("LUSTRE_STRIPE_WIDTH", stripe_width);
    for k in 0..stripe_width.max(1) as usize {
        // Hotspot jobs land every file on OST 0; healthy jobs spread stripes
        // across the 64 OSTs.
        let ost = if hotspot {
            0
        } else {
            ((file_idx * 7 + k * 3) % 64) as i64
        };
        l.set_ic(&format!("LUSTRE_OST_ID_{k}"), ost);
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::all_specs;

    fn spec(id: &str) -> TraceSpec {
        all_specs().into_iter().find(|s| s.id == id).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec("ra_amrex");
        let a = synthesize(&s);
        let b = synthesize(&s);
        assert_eq!(
            darshan::write::write_text(&a),
            darshan::write::write_text(&b)
        );
    }

    #[test]
    fn shared_trace_uses_one_shared_record() {
        let t = synthesize(&spec("sb04_shared_file"));
        let posix: Vec<_> = t.records_for(Module::Posix).collect();
        assert_eq!(posix.len(), 1);
        assert!(posix[0].is_shared());
    }

    #[test]
    fn fpp_trace_assigns_ranks() {
        let t = synthesize(&spec("sb01_small_io"));
        let ranks: Vec<i64> = t.records_for(Module::Posix).map(|r| r.rank).collect();
        assert!(ranks.iter().all(|&r| r >= 0));
        assert_eq!(ranks.len(), 4);
    }

    #[test]
    fn posix_only_specs_have_no_mpiio() {
        let t = synthesize(&spec("io500_easy_posix_small_1"));
        assert!(!t.module_present(Module::Mpiio));
        assert!(t.module_present(Module::Posix));
    }

    #[test]
    fn small_labels_put_ops_in_small_bins() {
        let t = synthesize(&spec("sb01_small_io"));
        let agg = darshan::derive::aggregate(&t, Module::Posix).unwrap();
        assert!(agg.small_read_fraction() > 0.9);
        assert!(agg.small_write_fraction() > 0.9);
    }

    #[test]
    fn unlabelled_directions_are_large_and_aligned() {
        let t = synthesize(&spec("sb09_independent_io"));
        let agg = darshan::derive::aggregate(&t, Module::Posix).unwrap();
        assert_eq!(agg.small_read_fraction(), 0.0);
        assert!(agg.misaligned_fraction() < 0.05);
        assert_eq!(agg.max_read_time_size % th::LUSTRE_ALIGNMENT, 0);
    }

    #[test]
    fn server_imbalance_pins_stripe_width_one() {
        let t = synthesize(&spec("sb10_server_hotspot"));
        let l = darshan::derive::lustre_summary(&t).unwrap();
        assert_eq!(l.mean_stripe_width(), 1.0);
        assert_eq!(l.distinct_osts_used, 1);
        let healthy = synthesize(&spec("sb09_independent_io"));
        let lh = darshan::derive::lustre_summary(&healthy).unwrap();
        assert!(lh.mean_stripe_width() > 1.5);
        assert!(lh.distinct_osts_used > 4);
    }

    #[test]
    fn stdio_heavy_routes_bytes_through_stdio() {
        let t = synthesize(&spec("sb07_stdio_heavy"));
        let s = darshan::derive::TraceSummary::of(&t);
        assert!(s.stdio_read_fraction() > 0.9);
        assert!(s.stdio_write_fraction() > 0.9);
    }

    #[test]
    fn repetitive_read_shrinks_byte_range() {
        let t = synthesize(&spec("sb05_repetitive_read"));
        let rec = t.records_for(Module::Posix).next().unwrap();
        let bytes = rec.ic("POSIX_BYTES_READ");
        let range = rec.ic("POSIX_MAX_BYTE_READ") + 1;
        assert!(bytes as f64 / range as f64 > 4.0);
    }

    #[test]
    fn rank_skew_inflates_rank_zero() {
        let t = synthesize(&spec("sb06_rank_imbalance"));
        let mut by_rank = std::collections::BTreeMap::new();
        for r in t.records_for(Module::Posix) {
            *by_rank.entry(r.rank).or_insert(0i64) +=
                r.ic("POSIX_BYTES_READ") + r.ic("POSIX_BYTES_WRITTEN");
        }
        let r0 = by_rank[&0];
        let r1 = by_rank[&1];
        assert!(r0 > 5 * r1, "rank0 {r0} vs rank1 {r1}");
    }

    #[test]
    fn collective_api_yields_collective_counters() {
        let t = synthesize(&spec("ra_openpmd_fixed"));
        let agg = darshan::derive::aggregate(&t, Module::Mpiio).unwrap();
        assert!(agg.collective_read_fraction() > 0.9);
        assert!(agg.collective_write_fraction() > 0.9);
        let indep = synthesize(&spec("ra_hacc_io"));
        let ai = darshan::derive::aggregate(&indep, Module::Mpiio).unwrap();
        assert_eq!(ai.collective_read_fraction(), 0.0);
    }

    #[test]
    fn mixed_api_splits_directions() {
        let t = synthesize(&spec("ra_vpic_io"));
        let agg = darshan::derive::aggregate(&t, Module::Mpiio).unwrap();
        assert_eq!(agg.collective_read_fraction(), 0.0);
        assert!(agg.collective_write_fraction() > 0.9);
    }

    #[test]
    fn every_trace_has_config_stdio_record() {
        for s in all_specs() {
            let t = synthesize(&s);
            assert!(t.module_present(Module::Stdio), "{}", s.id);
        }
    }

    #[test]
    fn traces_round_trip_through_text_format() {
        for s in all_specs().into_iter().take(6) {
            let t = synthesize(&s);
            let text = darshan::write::write_text(&t);
            let back = darshan::parse::parse_text(&text).unwrap();
            assert_eq!(back.records.len(), t.records.len(), "{}", s.id);
        }
    }
}
