//! DXT event-stream synthesis (the extended-tracing extension).
//!
//! For any TraceBench spec, generate a per-operation DXT trace *consistent
//! with the aggregate counters* the main generator plants: the same
//! transfer sizes, sequentiality, sharing, and rank skew, but expressed as
//! individual timed operations. Event counts are capped (DXT is a sampled,
//! high-overhead mode in practice) while preserving the pattern.

use crate::gen::stable_hash;
use crate::labels::IssueLabel;
use crate::spec::TraceSpec;
use darshan::counters::Module;
use darshan::dxt::{DxtEvent, DxtOp, DxtTrace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Cap on generated events per (file, direction) — mirrors DXT's own
/// bounded buffers.
pub const MAX_EVENTS_PER_STREAM: usize = 2_000;

/// Synthesize the DXT event stream for a spec.
pub fn synthesize_dxt(spec: &TraceSpec) -> DxtTrace {
    let mut rng = ChaCha8Rng::seed_from_u64(stable_hash(spec.id) ^ 0xd7);
    let mut trace = DxtTrace::default();
    let has = |l: IssueLabel| spec.has(l);

    let read_size = transfer_size(has(IssueLabel::SmallRead), has(IssueLabel::MisalignedRead));
    let write_size = transfer_size(
        has(IssueLabel::SmallWrite),
        has(IssueLabel::MisalignedWrite),
    );
    let shared = has(IssueLabel::SharedFileAccess);
    let n_files = if shared {
        1
    } else {
        spec.file_count.clamp(1, 8)
    };

    for file_idx in 0..n_files {
        let path = if shared {
            format!("/scratch/{}/shared.dat", spec.id)
        } else {
            format!("/scratch/{}/data.{:04}", spec.id, file_idx)
        };
        let record_id = stable_hash(&path);
        let ranks: Vec<i64> = if shared {
            (0..spec.nprocs as i64).collect()
        } else {
            vec![(file_idx as u64 % spec.nprocs) as i64]
        };
        for (dir_idx, (op, size, total_mb, random)) in [
            (
                DxtOp::Read,
                read_size,
                spec.read_mb,
                has(IssueLabel::RandomRead),
            ),
            (
                DxtOp::Write,
                write_size,
                spec.write_mb,
                has(IssueLabel::RandomWrite),
            ),
        ]
        .into_iter()
        .enumerate()
        {
            if total_mb == 0 {
                continue;
            }
            let total_ops = ((total_mb * 1024 * 1024) / size as u64) as usize;
            let per_stream =
                (total_ops / n_files / ranks.len().max(1)).clamp(1, MAX_EVENTS_PER_STREAM);
            for &rank in &ranks {
                // Each rank owns a contiguous region (shared file) or the
                // whole file (file per process).
                let region = per_stream as u64 * size as u64;
                let base = if shared { rank as u64 * region } else { 0 };
                let mut t = 0.2 * spec.run_time * (dir_idx as f64) + rank as f64 * 1e-4;
                let duration = (size as f64) / 1.0e9;
                for seg in 0..per_stream {
                    let offset = if random {
                        base + rng.gen_range(0..per_stream as u64) * size as u64
                    } else {
                        base + seg as u64 * size as u64
                    };
                    trace.push(
                        record_id,
                        &path,
                        DxtEvent {
                            module: Module::Posix,
                            rank,
                            op,
                            segment: seg as u64,
                            offset,
                            length: size as u64,
                            start: t,
                            end: t + duration,
                        },
                    );
                    t += duration * 1.5;
                }
            }
        }
    }
    trace
}

fn transfer_size(small: bool, misaligned: bool) -> i64 {
    match (small, misaligned) {
        (true, true) => 47_008,
        (true, false) => 8_192,
        (false, true) => 4 * 1024 * 1024 + 1,
        (false, false) => 4 * 1024 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::all_specs;
    use darshan::dxt::{file_stats, parse_dxt_text, write_dxt_text};

    fn spec(id: &str) -> TraceSpec {
        all_specs().into_iter().find(|s| s.id == id).unwrap()
    }

    #[test]
    fn sequential_spec_produces_streaming_pattern() {
        let dxt = synthesize_dxt(&spec("sb09_independent_io"));
        assert!(!dxt.is_empty());
        let stats = file_stats(dxt.files.values().next().unwrap());
        assert!(stats.consecutive_fraction > 0.9, "{stats:?}");
    }

    #[test]
    fn random_spec_produces_scattered_pattern() {
        let dxt = synthesize_dxt(&spec("io500_rnd_posix_shared"));
        let stats = file_stats(dxt.files.values().next().unwrap());
        assert!(stats.consecutive_fraction < 0.3, "{stats:?}");
    }

    #[test]
    fn shared_spec_interleaves_all_ranks_in_one_file() {
        let dxt = synthesize_dxt(&spec("ra_hacc_io"));
        assert_eq!(dxt.files.len(), 1);
        let file = dxt.files.values().next().unwrap();
        let ranks: std::collections::BTreeSet<i64> = file.events.iter().map(|e| e.rank).collect();
        assert_eq!(ranks.len(), 32);
        let stats = file_stats(file);
        assert!(stats.peak_concurrency > 1);
    }

    #[test]
    fn event_sizes_match_counter_plan() {
        // Small+misaligned spec: every event is the 47008-byte signature.
        let dxt = synthesize_dxt(&spec("io500_hard_posix_1"));
        for f in dxt.files.values() {
            for e in &f.events {
                assert_eq!(e.length, 47_008);
            }
        }
    }

    #[test]
    fn streams_are_capped() {
        for s in all_specs().into_iter().step_by(4) {
            let dxt = synthesize_dxt(&s);
            for f in dxt.files.values() {
                // per (rank, direction) cap holds.
                let mut per: std::collections::BTreeMap<(i64, darshan::dxt::DxtOp), usize> =
                    std::collections::BTreeMap::new();
                for e in &f.events {
                    *per.entry((e.rank, e.op)).or_insert(0) += 1;
                }
                for (&k, &c) in &per {
                    assert!(c <= MAX_EVENTS_PER_STREAM, "{} {k:?}: {c}", s.id);
                }
            }
        }
    }

    #[test]
    fn dxt_round_trips_text_format() {
        let dxt = synthesize_dxt(&spec("sb01_small_io"));
        let text = write_dxt_text(&dxt);
        let back = parse_dxt_text(&text).unwrap();
        assert_eq!(back.len(), dxt.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec("ra_vpic_io");
        assert_eq!(
            write_dxt_text(&synthesize_dxt(&s)),
            write_dxt_text(&synthesize_dxt(&s))
        );
    }
}
