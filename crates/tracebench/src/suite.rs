//! The assembled TraceBench suite and its Table III accounting.

use crate::gen::synthesize;
use crate::labels::IssueLabel;
use crate::spec::{all_specs, Source, TraceSpec};
use darshan::DarshanTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A generated trace together with its ground-truth annotation.
#[derive(Debug, Clone)]
pub struct LabeledTrace {
    /// The static spec (id, source, labels, workload parameters).
    pub spec: TraceSpec,
    /// The synthesized Darshan trace.
    pub trace: DarshanTrace,
}

impl LabeledTrace {
    /// Ground-truth labels as a sorted vector.
    pub fn labels(&self) -> Vec<IssueLabel> {
        let mut v = self.spec.labels.to_vec();
        v.sort_unstable();
        v
    }
}

/// The full TraceBench suite: 40 labelled traces.
#[derive(Debug, Clone)]
pub struct TraceBench {
    /// All traces in spec order (SB, IO500, RA).
    pub entries: Vec<LabeledTrace>,
}

impl TraceBench {
    /// Generate the full suite. Deterministic.
    pub fn generate() -> Self {
        let entries = all_specs()
            .into_iter()
            .map(|spec| {
                let trace = synthesize(&spec);
                LabeledTrace { spec, trace }
            })
            .collect();
        TraceBench { entries }
    }

    /// Traces belonging to one source.
    pub fn by_source(&self, source: Source) -> impl Iterator<Item = &LabeledTrace> {
        self.entries.iter().filter(move |e| e.spec.source == source)
    }

    /// Look a trace up by id.
    pub fn get(&self, id: &str) -> Option<&LabeledTrace> {
        self.entries.iter().find(|e| e.spec.id == id)
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suite is empty (never, after `generate`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Table III accounting: per-label counts per source plus totals.
    pub fn table3(&self) -> Table3 {
        let mut rows = Vec::new();
        for label in IssueLabel::ALL {
            let count = |src: Source| self.by_source(src).filter(|e| e.spec.has(label)).count();
            let sb = count(Source::SimpleBench);
            let io500 = count(Source::Io500);
            let ra = count(Source::RealApps);
            rows.push(Table3Row {
                label,
                sb,
                io500,
                ra,
                total: sb + io500 + ra,
            });
        }
        Table3 { rows }
    }
}

/// One row of the Table III reproduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Issue label.
    pub label: IssueLabel,
    /// Count among Simple-Bench traces.
    pub sb: usize,
    /// Count among IO500 traces.
    pub io500: usize,
    /// Count among Real-Application traces.
    pub ra: usize,
    /// Row total.
    pub total: usize,
}

/// The Table III reproduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per issue label, in Table II order.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Total number of labelled issues across the suite.
    pub fn total_issues(&self) -> usize {
        self.rows.iter().map(|r| r.total).sum()
    }

    /// Render as an aligned text table matching the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<38} {:>4} {:>6} {:>4} {:>6}\n",
            "Labeled Issue", "SB", "IO500", "RA", "Total"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<38} {:>4} {:>6} {:>4} {:>6}\n",
                row.label.display_name(),
                row.sb,
                row.io500,
                row.ra,
                row.total
            ));
        }
        out.push_str(&format!(
            "{:<38} {:>4} {:>6} {:>4} {:>6}\n",
            "TOTAL",
            self.rows.iter().map(|r| r.sb).sum::<usize>(),
            self.rows.iter().map(|r| r.io500).sum::<usize>(),
            self.rows.iter().map(|r| r.ra).sum::<usize>(),
            self.total_issues()
        ));
        out
    }
}

/// Per-source counts used in headers ("over 40 traces").
pub fn source_sizes() -> BTreeMap<Source, usize> {
    let mut m = BTreeMap::new();
    for spec in all_specs() {
        *m.entry(spec.source).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_forty_traces() {
        let tb = TraceBench::generate();
        assert_eq!(tb.len(), 40);
        assert!(!tb.is_empty());
        assert_eq!(tb.by_source(Source::SimpleBench).count(), 10);
        assert_eq!(tb.by_source(Source::Io500).count(), 21);
        assert_eq!(tb.by_source(Source::RealApps).count(), 9);
    }

    #[test]
    fn table3_totals_182() {
        let tb = TraceBench::generate();
        let t3 = tb.table3();
        assert_eq!(t3.total_issues(), 182);
    }

    #[test]
    fn table3_render_contains_key_rows() {
        let tb = TraceBench::generate();
        let text = tb.table3().render();
        assert!(text.contains("Server Load Imbalance"));
        assert!(text.contains("182"));
    }

    #[test]
    fn lookup_by_id() {
        let tb = TraceBench::generate();
        assert!(tb.get("ra_amrex").is_some());
        assert!(tb.get("nope").is_none());
    }

    #[test]
    fn labels_sorted() {
        let tb = TraceBench::generate();
        let l = tb.get("ra_amrex").unwrap().labels();
        let mut sorted = l.clone();
        sorted.sort_unstable();
        assert_eq!(l, sorted);
    }
}
