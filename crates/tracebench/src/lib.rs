//! TraceBench: the labelled Darshan-trace benchmark suite from the IOAgent
//! paper (IPDPS 2025), reproduced synthetically.
//!
//! The paper's TraceBench contains 40+ Darshan traces from three sources —
//! 10 rudimentary C programs (Simple-Bench), 21 IO500 configurations, and 9
//! real-application runs — annotated by I/O experts with 182 issue labels
//! drawn from a 16-label taxonomy (paper Tables II & III).
//!
//! We cannot ship the original production traces, so this crate *generates*
//! them: each trace spec pins the source, workload parameters, and
//! ground-truth label set, and [`gen::synthesize`] builds a Darshan trace
//! that provably exhibits exactly those issues (validated by the reference
//! detector in [`check`]). The per-source label distribution reproduces
//! Table III exactly, including the 182-issue total.
//!
//! ```
//! use tracebench::TraceBench;
//!
//! let suite = TraceBench::generate();
//! assert_eq!(suite.len(), 40);
//! assert_eq!(suite.table3().total_issues(), 182);
//! ```

pub mod check;
pub mod dxt;
pub mod gen;
pub mod labels;
pub mod spec;
pub mod suite;
pub mod thresholds;

pub use check::reference_detect;
pub use dxt::synthesize_dxt;
pub use gen::{stable_hash, synthesize};
pub use labels::IssueLabel;
pub use spec::{all_specs, IoApi, Source, TraceSpec};
pub use suite::{LabeledTrace, Table3, TraceBench};
