//! Heavy-tailed streaming latency and fault injection for [`SimLlm`].
//!
//! `with_latency` gave every call one flat duration, so the service never
//! saw what a production fleet actually fights: stragglers, timeouts,
//! rate limits, truncated streams. This module models those as a
//! [`FaultPlan`] — a streaming latency profile (time-to-first-token +
//! tokens/sec, so latency scales with response length), a heavy-tailed
//! straggler mixture (lognormal body, Pareto extreme tail) multiplied
//! over the base latency, and injected faults.
//!
//! Every draw comes from a ChaCha stream seeded by (model, prompt, salt,
//! attempt) in a domain separate from the content stream
//! ([`crate::rng::rng_for_attempt`]). Two consequences the test suite
//! pins:
//!
//! - **content is attempt-invariant**: retries and hedged duplicates of
//!   the same request produce byte-identical text, because content draws
//!   ignore the attempt lane entirely;
//! - **timing is replayable**: the same request on the same attempt lane
//!   draws the same latency and the same fault in every run, so a tail
//!   benchmark is reproducible bit-for-bit.
//!
//! [`SimLlm`]: crate::SimLlm

use crate::rng::rng_for_attempt;
use rand::Rng;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Streaming latency profile: a fixed time-to-first-token plus a
/// per-output-token streaming term. [`LatencyProfile::flat`] (what
/// `SimLlm::with_latency` builds) is the degenerate profile with no
/// streaming term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Time to first token: queueing + prefill, charged per call.
    pub ttft: Duration,
    /// Decode throughput; `<= 0` disables the streaming term (flat).
    pub tokens_per_sec: f64,
}

impl LatencyProfile {
    /// Profile with both a first-token delay and a streaming rate.
    pub fn new(ttft: Duration, tokens_per_sec: f64) -> Self {
        LatencyProfile {
            ttft,
            tokens_per_sec,
        }
    }

    /// The degenerate flat profile: every call costs exactly `latency`,
    /// regardless of response length.
    pub fn flat(latency: Duration) -> Self {
        LatencyProfile {
            ttft: latency,
            tokens_per_sec: 0.0,
        }
    }

    /// Base (pre-tail) latency of a completion with `output_tokens`.
    pub fn base(&self, output_tokens: usize) -> Duration {
        let stream_ns = if self.tokens_per_sec > 0.0 {
            output_tokens as f64 / self.tokens_per_sec * 1e9
        } else {
            0.0
        };
        self.ttft + Duration::from_nanos(stream_ns as u64)
    }
}

/// Heavy-tailed straggler mixture, multiplied over the base latency.
///
/// With probability [`TailSpec::probability`] a call is a straggler; its
/// slowdown multiplier is drawn from a lognormal body
/// (`median_multiplier · exp(σ·Z)`) or, for a [`TailSpec::pareto_weight`]
/// fraction of stragglers, a Pareto(α) extreme tail with scale
/// `median_multiplier`. The multiplier is clamped to
/// `[1, max_multiplier]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSpec {
    /// Probability a call is a straggler.
    pub probability: f64,
    /// Lognormal σ of the straggler body.
    pub lognormal_sigma: f64,
    /// Median straggler slowdown (lognormal scale and Pareto xₘ).
    pub median_multiplier: f64,
    /// Pareto shape of the extreme tail (`<= 0` disables that branch).
    pub pareto_alpha: f64,
    /// Fraction of stragglers drawn from the Pareto branch.
    pub pareto_weight: f64,
    /// Hard cap on the drawn multiplier.
    pub max_multiplier: f64,
}

impl TailSpec {
    /// Draw the slowdown multiplier for one attempt (1.0 for the
    /// non-straggler majority). Always consumes the same number of
    /// draws from `rng`, so downstream draw positions never depend on
    /// which branch was taken.
    fn multiplier(&self, rng: &mut rand_chacha::ChaCha8Rng) -> f64 {
        let u_straggle: f64 = rng.gen();
        let u_branch: f64 = rng.gen();
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u_straggle >= self.probability {
            return 1.0;
        }
        let m = if self.pareto_alpha > 0.0 && u_branch < self.pareto_weight {
            // Pareto(α) via inverse CDF, scale = median_multiplier.
            self.median_multiplier / (1.0 - u1).max(1e-12).powf(1.0 / self.pareto_alpha)
        } else {
            // Lognormal via Box–Muller.
            let z = (-2.0 * (1.0 - u1).max(1e-12).ln()).sqrt()
                * (2.0 * std::f64::consts::PI * u2).cos();
            self.median_multiplier * (self.lognormal_sigma * z).exp()
        };
        m.clamp(1.0, self.max_multiplier.max(1.0))
    }
}

/// Injected fault rates. Faults are *per attempt*: a retry of the same
/// request draws independently (different attempt lane), so a client
/// with patience eventually succeeds — with exactly the same content.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability an attempt hangs and then times out.
    pub timeout_probability: f64,
    /// How long a timed-out attempt hangs before the error surfaces.
    pub timeout: Duration,
    /// Probability an attempt is rejected with a rate-limit error.
    pub rate_limit_probability: f64,
    /// The provider's suggested wait carried by rate-limit errors.
    pub retry_after: Duration,
    /// Probability the response stream dies partway (truncated output).
    pub truncate_probability: f64,
}

/// Which fault an attempt surfaced. The snake_case names double as the
/// daemon's wire-level `error_kind` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt hung past the provider timeout.
    Timeout,
    /// The provider shed load; retry after a suggested wait.
    RateLimited,
    /// The response stream died before completion.
    Truncated,
}

impl FaultKind {
    /// Stable wire name (`error_kind` on the daemon protocol).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Timeout => "llm_timeout",
            FaultKind::RateLimited => "llm_rate_limited",
            FaultKind::Truncated => "llm_truncated",
        }
    }
}

/// Why `SimLlm::try_complete` returned no completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// The attempt drew an injected fault.
    Fault {
        /// The fault class.
        kind: FaultKind,
        /// Suggested wait before retrying (rate-limit errors only).
        retry_after: Option<Duration>,
    },
    /// The caller cancelled the attempt mid-flight (hedging).
    Cancelled,
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::Fault { kind, .. } => write!(f, "llm fault: {}", kind.as_str()),
            LlmError::Cancelled => write!(f, "attempt cancelled"),
        }
    }
}

/// The full failure model: latency profile × heavy tail × fault rates.
/// An empty plan (the default) reproduces the pre-existing behaviour:
/// zero latency, no faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    profile: Option<LatencyProfile>,
    tail: Option<TailSpec>,
    faults: Option<FaultSpec>,
}

/// Deterministic preview of one delivery attempt: how long it will take
/// and whether it will fault, before (or without) simulating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptDraw {
    /// Simulated wall time until the attempt resolves.
    pub latency: Duration,
    /// The fault it resolves into (`None` = success).
    pub fault: Option<AttemptFault>,
}

/// A drawn fault and its retry hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptFault {
    /// The fault class.
    pub kind: FaultKind,
    /// Suggested wait before retrying (rate-limit errors only).
    pub retry_after: Option<Duration>,
}

impl FaultPlan {
    /// An empty plan: no latency, no tail, no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Set the streaming latency profile.
    pub fn with_profile(mut self, profile: LatencyProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Set the heavy-tailed straggler mixture.
    pub fn with_tail(mut self, tail: TailSpec) -> Self {
        self.tail = Some(tail);
        self
    }

    /// Set the injected fault rates.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.profile.is_none() && self.tail.is_none() && self.faults.is_none()
    }

    /// The streaming latency profile, if any.
    pub fn profile(&self) -> Option<&LatencyProfile> {
        self.profile.as_ref()
    }

    /// Draw the outcome of one delivery attempt. Deterministic in
    /// (model, prompt, salt, attempt): the same attempt lane replays the
    /// same latency and fault in every run, and distinct lanes (retries,
    /// hedges) draw independently.
    pub fn draw(
        &self,
        model: &str,
        prompt: &str,
        salt: u64,
        attempt: u32,
        output_tokens: usize,
    ) -> AttemptDraw {
        if self.is_empty() {
            return AttemptDraw {
                latency: Duration::ZERO,
                fault: None,
            };
        }
        let mut rng = rng_for_attempt(model, prompt, salt, attempt);
        // Fixed draw order regardless of configuration, so enabling one
        // knob never shifts another knob's stream position.
        let u_timeout: f64 = rng.gen();
        let u_rate: f64 = rng.gen();
        let u_trunc: f64 = rng.gen();
        let base = self
            .profile
            .map(|p| p.base(output_tokens))
            .unwrap_or(Duration::ZERO);
        let multiplier = self
            .tail
            .as_ref()
            .map(|t| t.multiplier(&mut rng))
            .unwrap_or(1.0);
        let drawn = Duration::from_nanos((base.as_nanos() as f64 * multiplier) as u64);
        if let Some(f) = &self.faults {
            if u_timeout < f.timeout_probability {
                // The attempt hangs until the provider timeout fires.
                return AttemptDraw {
                    latency: f.timeout.max(drawn),
                    fault: Some(AttemptFault {
                        kind: FaultKind::Timeout,
                        retry_after: None,
                    }),
                };
            }
            if u_rate < f.rate_limit_probability {
                // Load shedding answers fast — before any decode happens.
                let ttft = self.profile.map(|p| p.ttft).unwrap_or(Duration::ZERO);
                return AttemptDraw {
                    latency: ttft,
                    fault: Some(AttemptFault {
                        kind: FaultKind::RateLimited,
                        retry_after: Some(f.retry_after),
                    }),
                };
            }
            if u_trunc < f.truncate_probability {
                // The stream dies partway through decoding.
                return AttemptDraw {
                    latency: drawn / 2,
                    fault: Some(AttemptFault {
                        kind: FaultKind::Truncated,
                        retry_after: None,
                    }),
                };
            }
        }
        AttemptDraw {
            latency: drawn,
            fault: None,
        }
    }

    /// Parse a compact `key=value,key=value` plan spec (the `--llm-faults`
    /// CLI format). Keys: `ttft`, `tps` (profile); `tail_p`, `tail_sigma`,
    /// `tail_med`, `tail_alpha`, `tail_pw`, `tail_cap` (tail);
    /// `timeout_p`, `timeout`, `ratelimit_p`, `retry_after`, `trunc_p`
    /// (faults). Durations take `ns`/`us`/`ms`/`s` suffixes.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut profile = LatencyProfile::flat(Duration::ZERO);
        let mut has_profile = false;
        let mut tail = TailSpec {
            probability: 0.0,
            lognormal_sigma: 0.5,
            median_multiplier: 10.0,
            pareto_alpha: 1.5,
            pareto_weight: 0.25,
            max_multiplier: 300.0,
        };
        let mut has_tail = false;
        let mut faults = FaultSpec::default();
        let mut has_faults = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad number {v:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{key} must be in [0, 1], got {p}"));
                }
                Ok(p)
            };
            let num = |v: &str| -> Result<f64, String> {
                v.parse().map_err(|_| format!("bad number {v:?}"))
            };
            match key.trim() {
                "ttft" => {
                    profile.ttft = parse_duration(value)?;
                    has_profile = true;
                }
                "tps" => {
                    profile.tokens_per_sec = num(value)?;
                    has_profile = true;
                }
                "tail_p" => {
                    tail.probability = prob(value)?;
                    has_tail = true;
                }
                "tail_sigma" => {
                    tail.lognormal_sigma = num(value)?;
                    has_tail = true;
                }
                "tail_med" => {
                    tail.median_multiplier = num(value)?;
                    has_tail = true;
                }
                "tail_alpha" => {
                    tail.pareto_alpha = num(value)?;
                    has_tail = true;
                }
                "tail_pw" => {
                    tail.pareto_weight = prob(value)?;
                    has_tail = true;
                }
                "tail_cap" => {
                    tail.max_multiplier = num(value)?;
                    has_tail = true;
                }
                "timeout_p" => {
                    faults.timeout_probability = prob(value)?;
                    has_faults = true;
                }
                "timeout" => {
                    faults.timeout = parse_duration(value)?;
                    has_faults = true;
                }
                "ratelimit_p" => {
                    faults.rate_limit_probability = prob(value)?;
                    has_faults = true;
                }
                "retry_after" => {
                    faults.retry_after = parse_duration(value)?;
                    has_faults = true;
                }
                "trunc_p" => {
                    faults.truncate_probability = prob(value)?;
                    has_faults = true;
                }
                other => return Err(format!("unknown fault-plan key {other:?}")),
            }
        }
        let mut plan = FaultPlan::new();
        if has_profile {
            plan = plan.with_profile(profile);
        }
        if has_tail {
            plan = plan.with_tail(tail);
        }
        if has_faults {
            plan = plan.with_faults(faults);
        }
        Ok(plan)
    }
}

/// Parse `250ms` / `3s` / `800us` / `1500ns` into a [`Duration`].
fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (value, scale_ns) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = s.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1e9)
    } else {
        return Err(format!("duration {s:?} needs a ns/us/ms/s suffix"));
    };
    let value: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {s:?}"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("duration {s:?} must be finite and non-negative"));
    }
    Ok(Duration::from_nanos((value * scale_ns) as u64))
}

#[derive(Default)]
struct CancelInner {
    cancelled: Mutex<bool>,
    condvar: Condvar,
}

/// Cooperative cancellation token: clone it onto a
/// [`crate::CompletionRequest`], and a racing caller can interrupt that
/// attempt's simulated latency sleep. Cancellation is sticky and
/// idempotent. The default token is never cancelled.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Cancel: every in-flight and future [`CancelToken::sleep`] on this
    /// token returns `false` immediately.
    pub fn cancel(&self) {
        let mut cancelled = self
            .inner
            .cancelled
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *cancelled = true;
        self.inner.condvar.notify_all();
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        *self
            .inner
            .cancelled
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Sleep for `d`, waking early on cancellation. Returns `true` when
    /// the full duration elapsed, `false` when cancelled first (a
    /// cancellation always wins, even against a zero sleep).
    pub fn sleep(&self, d: Duration) -> bool {
        let deadline = Instant::now() + d;
        let mut cancelled = self
            .inner
            .cancelled
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if *cancelled {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            let (guard, _timeout) = self
                .inner
                .condvar
                .wait_timeout(cancelled, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            cancelled = guard;
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tail() -> TailSpec {
        TailSpec {
            probability: 0.1,
            lognormal_sigma: 0.7,
            median_multiplier: 15.0,
            pareto_alpha: 1.5,
            pareto_weight: 0.3,
            max_multiplier: 200.0,
        }
    }

    #[test]
    fn flat_profile_ignores_output_length() {
        let p = LatencyProfile::flat(Duration::from_millis(3));
        assert_eq!(p.base(0), Duration::from_millis(3));
        assert_eq!(p.base(10_000), Duration::from_millis(3));
    }

    #[test]
    fn streaming_profile_scales_with_output() {
        let p = LatencyProfile::new(Duration::from_millis(1), 1000.0);
        assert_eq!(p.base(0), Duration::from_millis(1));
        assert_eq!(p.base(500), Duration::from_millis(501));
    }

    #[test]
    fn draws_replay_bit_identically_per_attempt_lane() {
        let plan = FaultPlan::new()
            .with_profile(LatencyProfile::new(Duration::from_millis(2), 5000.0))
            .with_tail(tail())
            .with_faults(FaultSpec {
                timeout_probability: 0.05,
                timeout: Duration::from_millis(100),
                rate_limit_probability: 0.05,
                retry_after: Duration::from_millis(20),
                truncate_probability: 0.05,
            });
        for attempt in [0u32, 1, 7, 0x8000_0000] {
            let a = plan.draw("gpt-4o", "prompt body", 3, attempt, 120);
            let b = plan.draw("gpt-4o", "prompt body", 3, attempt, 120);
            assert_eq!(a, b, "attempt {attempt} must replay identically");
        }
        // Distinct lanes decorrelate (at least one of several differs).
        let lanes: Vec<AttemptDraw> = (0..16)
            .map(|i| plan.draw("gpt-4o", "prompt body", 3, i, 120))
            .collect();
        assert!(
            lanes.iter().any(|d| *d != lanes[0]),
            "16 attempt lanes all drew the same outcome"
        );
    }

    #[test]
    fn tail_multiplier_is_bounded_and_sometimes_fires() {
        let plan = FaultPlan::new()
            .with_profile(LatencyProfile::flat(Duration::from_millis(1)))
            .with_tail(tail());
        let mut stragglers = 0usize;
        for i in 0..400 {
            let d = plan.draw("m", &format!("p{i}"), 0, 0, 100);
            assert!(
                d.latency <= Duration::from_millis(200),
                "cap violated: {:?}",
                d.latency
            );
            if d.latency > Duration::from_millis(2) {
                stragglers += 1;
            }
        }
        assert!(
            (10..120).contains(&stragglers),
            "p=0.1 over 400 calls produced {stragglers} stragglers"
        );
    }

    #[test]
    fn fault_probability_one_always_faults() {
        let plan = FaultPlan::new().with_faults(FaultSpec {
            timeout_probability: 1.0,
            timeout: Duration::from_millis(5),
            ..FaultSpec::default()
        });
        let d = plan.draw("m", "p", 0, 0, 10);
        assert_eq!(d.fault.map(|f| f.kind), Some(FaultKind::Timeout), "{d:?}");
        assert_eq!(d.latency, Duration::from_millis(5));
    }

    #[test]
    fn empty_plan_draws_nothing() {
        let d = FaultPlan::new().draw("m", "p", 0, 0, 10);
        assert_eq!(d.latency, Duration::ZERO);
        assert_eq!(d.fault, None);
    }

    #[test]
    fn plan_spec_round_trips() {
        let plan = FaultPlan::parse(
            "ttft=2ms, tps=500, tail_p=0.05, tail_med=20, timeout_p=0.01, \
             timeout=200ms, ratelimit_p=0.02, retry_after=10ms, trunc_p=0.01",
        )
        .unwrap();
        assert!(!plan.is_empty());
        let p = plan.profile().unwrap();
        assert_eq!(p.ttft, Duration::from_millis(2));
        assert!((p.tokens_per_sec - 500.0).abs() < 1e-9);
        assert!(FaultPlan::parse("bogus_key=1").is_err());
        assert!(FaultPlan::parse("timeout_p=1.5").is_err());
        assert!(FaultPlan::parse("ttft=10").is_err(), "suffixless duration");
    }

    #[test]
    fn cancel_token_interrupts_sleep() {
        let token = CancelToken::new();
        let t2 = token.clone();
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let completed = t2.sleep(Duration::from_secs(10));
            (completed, started.elapsed())
        });
        std::thread::sleep(Duration::from_millis(20));
        token.cancel();
        let (completed, elapsed) = handle.join().unwrap();
        assert!(!completed, "cancelled sleep must report interruption");
        assert!(elapsed < Duration::from_secs(5), "woke in {elapsed:?}");
        // Sticky: subsequent sleeps return immediately.
        assert!(!token.sleep(Duration::from_secs(10)));
        assert!(token.is_cancelled());
        // An untouched token sleeps the full duration.
        let fresh = CancelToken::new();
        assert!(fresh.sleep(Duration::from_millis(1)));
    }
}
