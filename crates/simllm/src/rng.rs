//! Deterministic seeding: every stochastic decision in the simulator draws
//! from a ChaCha stream seeded by a stable hash of (model, prompt, salt), so
//! identical requests always produce identical completions while different
//! prompts decorrelate.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Stable FNV-1a 64-bit hash.
pub fn stable_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// RNG for a (model, prompt, salt) triple.
pub fn rng_for(model: &str, prompt: &str, salt: u64) -> ChaCha8Rng {
    let seed = stable_hash(model)
        ^ stable_hash(prompt).rotate_left(17)
        ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ChaCha8Rng::seed_from_u64(seed)
}

/// RNG for the latency/fault domain of one delivery *attempt*.
///
/// Content draws come from [`rng_for`] and deliberately ignore the
/// attempt number — a retry or hedged duplicate must reproduce the exact
/// same text. Timing and faults live in this separate domain, keyed by
/// attempt, so each delivery attempt draws an independent latency and
/// fault outcome while remaining bit-identical across runs. The domain
/// tag keeps position 0 of this stream uncorrelated with position 0 of
/// the content stream even at `attempt == 0`.
pub fn rng_for_attempt(model: &str, prompt: &str, salt: u64, attempt: u32) -> ChaCha8Rng {
    let seed = stable_hash("fault-domain")
        ^ stable_hash(model)
        ^ stable_hash(prompt).rotate_left(17)
        ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (attempt as u64).wrapping_mul(0xd1b5_4a32_d192_ed03);
    ChaCha8Rng::seed_from_u64(seed)
}

/// Symmetric uniform noise in [-amplitude, +amplitude].
pub fn noise(rng: &mut ChaCha8Rng, amplitude: f64) -> f64 {
    use rand::Rng;
    rng.gen_range(-amplitude..=amplitude)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = rng_for("gpt-4o", "hello", 1);
        let mut b = rng_for("gpt-4o", "hello", 1);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_salt_different_stream() {
        let mut a = rng_for("gpt-4o", "hello", 1);
        let mut b = rng_for("gpt-4o", "hello", 2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn different_model_different_stream() {
        let mut a = rng_for("gpt-4o", "hello", 1);
        let mut b = rng_for("llama-3-70b", "hello", 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn attempt_domain_is_separate_and_attempt_keyed() {
        // Same attempt lane replays; different lanes decorrelate.
        let mut a = rng_for_attempt("gpt-4o", "hello", 1, 0);
        let mut b = rng_for_attempt("gpt-4o", "hello", 1, 0);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = rng_for_attempt("gpt-4o", "hello", 1, 1);
        assert_ne!(
            rng_for_attempt("gpt-4o", "hello", 1, 0).gen::<u64>(),
            c.gen::<u64>()
        );
        // The fault domain never collides with the content domain.
        assert_ne!(
            rng_for("gpt-4o", "hello", 1).gen::<u64>(),
            rng_for_attempt("gpt-4o", "hello", 1, 0).gen::<u64>()
        );
    }

    #[test]
    fn noise_bounded() {
        let mut rng = rng_for("m", "p", 0);
        for _ in 0..100 {
            let n = noise(&mut rng, 0.15);
            assert!(n.abs() <= 0.15);
        }
    }
}
