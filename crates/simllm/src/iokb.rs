//! The simulated model's latent HPC-I/O knowledge.
//!
//! A real LLM carries (imperfect) domain expertise from pre-training. Here
//! that expertise is an explicit rule base: one diagnosis rule per issue in
//! the TraceBench taxonomy, each with a *difficulty* — how much capability a
//! model needs to reliably apply it — plus the *misconceptions* the paper
//! observed models repeating (e.g. "a 1 MB stripe with stripe count 1 is
//! optimal on Lustre", Fig. 1). Retrieved knowledge (RAG references) lowers
//! a rule's effective difficulty and suppresses the corresponding
//! misconception — the mechanism by which IOAgent's Domain Knowledge
//! Integrator earns its accuracy.

use crate::evidence::{keys as K, Evidence};
use tracebench::thresholds as th;
use tracebench::IssueLabel;

/// One expert diagnosis rule.
pub struct DiagRule {
    /// The issue this rule detects.
    pub issue: IssueLabel,
    /// Capability needed to apply the rule reliably (0..1).
    pub difficulty: f64,
    /// Knowledge claim that grounds this rule (see the `knowledge` crate's
    /// `claims` module for the vocabulary).
    pub claim: &'static str,
    /// Evaluate the rule; `Some(data_sentence)` when it fires.
    pub check: fn(&Evidence) -> Option<String>,
    /// Explanation prose.
    pub explanation: &'static str,
    /// Actionable recommendation.
    pub recommendation: &'static str,
}

fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// The full rule base (one rule per TraceBench label).
pub fn rules() -> &'static [DiagRule] {
    RULES
}

static RULES: &[DiagRule] = &[
    DiagRule {
        issue: IssueLabel::SmallRead,
        difficulty: 0.20,
        claim: "small_io_aggregation",
        check: |ev| {
            let reads = ev.get(K::POSIX_READS)?;
            let f = ev.get(K::POSIX_SMALL_READ_FRACTION)?;
            (reads >= th::MIN_DIR_OPS as f64 && f > th::SMALL_FRACTION).then(|| {
                format!(
                    "(data: {} of the {:.0} reads are below 1 MB)",
                    pct(f),
                    reads
                )
            })
        },
        explanation: "frequent small read requests waste parallel file system bandwidth \
                      because per-request costs dominate data movement",
        recommendation: "aggregate reads into multi-megabyte requests, or use a buffered \
                         high-level library (HDF5/PnetCDF) or collective MPI-IO",
    },
    DiagRule {
        issue: IssueLabel::SmallWrite,
        difficulty: 0.20,
        claim: "small_io_aggregation",
        check: |ev| {
            let writes = ev.get(K::POSIX_WRITES)?;
            let f = ev.get(K::POSIX_SMALL_WRITE_FRACTION)?;
            (writes >= th::MIN_DIR_OPS as f64 && f > th::SMALL_FRACTION).then(|| {
                format!(
                    "(data: {} of the {:.0} writes are below 1 MB)",
                    pct(f),
                    writes
                )
            })
        },
        explanation: "frequent small write requests incur per-request overhead and lock \
                      traffic far exceeding their payload",
        recommendation: "buffer and aggregate writes before issuing them, or enable \
                         collective buffering so aggregators emit large requests",
    },
    DiagRule {
        issue: IssueLabel::MisalignedRead,
        difficulty: 0.45,
        claim: "alignment_matters",
        check: |ev| {
            let reads = ev.get(K::POSIX_READS)?;
            let f = ev.get(K::POSIX_MISALIGNED_FRACTION)?;
            let mismatch = ev.flag(K::POSIX_READ_ALIGN_MISMATCH);
            (reads >= th::MIN_DIR_OPS as f64 && f > th::MISALIGNED_FRACTION && mismatch).then(
                || {
                    format!(
                        "(data: {} of operations are not aligned with the file system boundary)",
                        pct(f)
                    )
                },
            )
        },
        explanation: "read requests cross stripe/block boundaries, touching more servers \
                      than necessary",
        recommendation: "align record sizes and offsets to the stripe size, or set the \
                         stripe size to divide the record size evenly",
    },
    DiagRule {
        issue: IssueLabel::MisalignedWrite,
        difficulty: 0.45,
        claim: "alignment_matters",
        check: |ev| {
            let writes = ev.get(K::POSIX_WRITES)?;
            let f = ev.get(K::POSIX_MISALIGNED_FRACTION)?;
            let mismatch = ev.flag(K::POSIX_WRITE_ALIGN_MISMATCH);
            (writes >= th::MIN_DIR_OPS as f64 && f > th::MISALIGNED_FRACTION && mismatch).then(
                || {
                    format!(
                        "(data: {} of operations are not aligned; unaligned writes trigger \
                         read-modify-write cycles)",
                        pct(f)
                    )
                },
            )
        },
        explanation: "write requests are not aligned with the file system's stripe \
                      boundaries, causing read-modify-write amplification and extent lock \
                      conflicts",
        recommendation: "pad records to stripe multiples and align each rank's partition \
                         to the stripe boundary",
    },
    DiagRule {
        issue: IssueLabel::RandomRead,
        difficulty: 0.35,
        claim: "random_vs_sequential",
        check: |ev| {
            let reads = ev.get(K::POSIX_READS)?;
            let f = ev.get(K::POSIX_SEQ_READ_FRACTION)?;
            (reads >= th::MIN_DIR_OPS as f64 && f < th::SEQ_FRACTION_RANDOM)
                .then(|| format!("(data: only {} of reads are sequential)", pct(f)))
        },
        explanation: "reads follow a random access pattern, defeating server-side \
                      prefetching",
        recommendation: "sort or batch read requests by offset, or stage the dataset into \
                         a node-local cache",
    },
    DiagRule {
        issue: IssueLabel::RandomWrite,
        difficulty: 0.35,
        claim: "random_vs_sequential",
        check: |ev| {
            let writes = ev.get(K::POSIX_WRITES)?;
            let f = ev.get(K::POSIX_SEQ_WRITE_FRACTION)?;
            (writes >= th::MIN_DIR_OPS as f64 && f < th::SEQ_FRACTION_RANDOM)
                .then(|| format!("(data: only {} of writes are sequential)", pct(f)))
        },
        explanation: "writes land at scattered offsets, producing incoherent server queues",
        recommendation: "buffer writes and flush them in offset order, or use collective \
                         I/O which reorders across ranks",
    },
    DiagRule {
        issue: IssueLabel::SharedFileAccess,
        difficulty: 0.30,
        claim: "shared_file_contention",
        check: |ev| {
            let nprocs = ev.get(K::NPROCS)?;
            (nprocs > 1.0 && ev.flag(K::POSIX_SHARED_DATA))
                .then(|| format!("(data: {nprocs:.0} ranks access the same file concurrently)"))
        },
        explanation: "multiple ranks access the same file; without coordination this \
                      contends on extent locks",
        recommendation: "align rank partitions to stripe boundaries and use collective \
                         MPI-IO so only aggregators touch the file",
    },
    DiagRule {
        issue: IssueLabel::HighMetadataLoad,
        difficulty: 0.40,
        claim: "metadata_scalability",
        check: |ev| {
            let f = ev.get(K::POSIX_META_FRACTION)?;
            (f > th::META_TIME_FRACTION).then(|| {
                format!(
                    "(data: {} of runtime is spent in metadata operations)",
                    pct(f)
                )
            })
        },
        explanation: "the job spends a significant share of its runtime in metadata \
                      operations (opens, stats, creates), which are served by a small \
                      number of metadata servers",
        recommendation: "batch metadata operations, reduce the file count, or cache \
                         attributes instead of stat-ing in loops",
    },
    DiagRule {
        issue: IssueLabel::RepetitiveRead,
        difficulty: 0.55,
        claim: "repetitive_read_caching",
        check: |ev| {
            let r = ev.get(K::POSIX_READ_REUSE)?;
            (r > th::READ_REUSE_FACTOR).then(|| {
                format!("(data: the job read {r:.1}x more bytes than the byte range it touched)")
            })
        },
        explanation: "the application repeatedly reads the same data from the file system",
        recommendation: "stage the hot data into node-local memory or a burst buffer once \
                         and reuse it",
    },
    DiagRule {
        issue: IssueLabel::ServerLoadImbalance,
        difficulty: 0.60,
        claim: "stripe_width_parallelism",
        check: |ev| {
            let w = ev.get(K::LUSTRE_STRIPE_WIDTH)?;
            let bytes = ev.get_or(K::TOTAL_BYTES, f64::MAX);
            (w <= th::STRIPE_WIDTH_LOW && bytes >= th::SERVER_MIN_BYTES as f64).then(|| {
                let used = ev.get_or(K::LUSTRE_OSTS_USED, 1.0);
                let avail = ev.get_or(K::LUSTRE_OST_COUNT, 0.0);
                format!(
                    "(data: stripe count {w:.0}; the job used {used:.0} of {avail:.0} \
                     available OSTs)"
                )
            })
        },
        explanation: "with a stripe count of 1 every byte of each file lands on a single \
                      object storage target, serialising server load and leaving the rest \
                      of the storage system idle",
        recommendation: "widen striping (e.g. `lfs setstripe -c 8` or higher) so traffic \
                         spreads across OSTs; match stripe size to the transfer size",
    },
    DiagRule {
        issue: IssueLabel::RankLoadImbalance,
        difficulty: 0.50,
        claim: "rank_balance",
        check: |ev| {
            let cv = ev.get_or(K::POSIX_RANK_CV, 0.0);
            let ratio = ev.get_or(K::POSIX_RANK_RATIO, 1.0);
            if cv > th::RANK_CV {
                Some(format!(
                    "(data: per-rank byte volume varies with coefficient of variation {cv:.2})"
                ))
            } else if ratio > th::RANK_RATIO {
                Some(format!(
                    "(data: the fastest rank moved {ratio:.1}x the bytes of the slowest)"
                ))
            } else {
                None
            }
        },
        explanation: "some MPI ranks issue disproportionate I/O traffic; collective phases \
                      wait on the stragglers",
        recommendation: "rebalance the domain decomposition's I/O responsibility, or \
                         replace rank-0-funnelled I/O with parallel writes",
    },
    DiagRule {
        issue: IssueLabel::MultiProcessWithoutMpi,
        difficulty: 0.55,
        claim: "mpi_vs_posix",
        check: |ev| {
            let nprocs = ev.get(K::NPROCS)?;
            let posix = ev.get(K::POSIX_PRESENT)?;
            let mpiio = ev.get(K::MPIIO_PRESENT)?;
            (nprocs > 1.0 && posix > 0.5 && mpiio < 0.5).then(|| {
                format!(
                    "(data: {nprocs:.0} processes perform POSIX I/O with no MPI-IO activity \
                     in the trace)"
                )
            })
        },
        explanation: "the job runs multiple processes but performs all I/O through \
                      uncoordinated POSIX calls, forgoing collective aggregation entirely",
        recommendation: "route the bulk I/O path through MPI-IO (or a library built on it) \
                         to unlock collective optimisations",
    },
    DiagRule {
        issue: IssueLabel::NoCollectiveRead,
        difficulty: 0.50,
        claim: "collective_io_benefit",
        check: |ev| {
            let indep = ev.get(K::MPIIO_INDEP_READS)?;
            let coll = ev.get_or(K::MPIIO_COLL_READS, 0.0);
            let total = indep + coll;
            (total >= th::MIN_MPIIO_OPS as f64 && coll / total < th::COLLECTIVE_FRACTION).then(
                || format!("(data: {indep:.0} independent MPI-IO reads vs {coll:.0} collective)"),
            )
        },
        explanation: "MPI-IO reads are issued independently; collective reads would \
                      aggregate them into large, aligned transfers",
        recommendation: "switch to MPI_File_read_all / enable romio_cb_read",
    },
    DiagRule {
        issue: IssueLabel::NoCollectiveWrite,
        difficulty: 0.50,
        claim: "collective_io_benefit",
        check: |ev| {
            let indep = ev.get(K::MPIIO_INDEP_WRITES)?;
            let coll = ev.get_or(K::MPIIO_COLL_WRITES, 0.0);
            let total = indep + coll;
            (total >= th::MIN_MPIIO_OPS as f64 && coll / total < th::COLLECTIVE_FRACTION).then(
                || format!("(data: {indep:.0} independent MPI-IO writes vs {coll:.0} collective)"),
            )
        },
        explanation: "MPI-IO writes never go collective, so no aggregation or reordering \
                      happens on the busiest path",
        recommendation: "switch to MPI_File_write_all / enable romio_cb_write",
    },
    DiagRule {
        issue: IssueLabel::LowLevelLibraryRead,
        difficulty: 0.45,
        claim: "stdio_buffering",
        check: |ev| {
            let bytes = ev.get(K::STDIO_BYTES_READ)?;
            let f = ev.get(K::STDIO_READ_FRACTION)?;
            (bytes >= th::STDIO_MIN_BYTES as f64 && f > th::STDIO_FRACTION).then(|| {
                format!(
                    "(data: {} of read bytes flow through STDIO streams)",
                    pct(f)
                )
            })
        },
        explanation: "a significant share of read volume goes through buffered STDIO \
                      streams, which use small libc buffers and ignore parallelism",
        recommendation: "port bulk read paths to POSIX/MPI-IO, or at least enlarge stream \
                         buffers with setvbuf",
    },
    DiagRule {
        issue: IssueLabel::LowLevelLibraryWrite,
        difficulty: 0.45,
        claim: "stdio_buffering",
        check: |ev| {
            let bytes = ev.get(K::STDIO_BYTES_WRITTEN)?;
            let f = ev.get(K::STDIO_WRITE_FRACTION)?;
            (bytes >= th::STDIO_MIN_BYTES as f64 && f > th::STDIO_FRACTION).then(|| {
                format!(
                    "(data: {} of written bytes flow through STDIO streams)",
                    pct(f)
                )
            })
        },
        explanation: "bulk data is written through STDIO streams, serialising into small \
                      buffered writes",
        recommendation: "move bulk output to MPI-IO or a high-level I/O library",
    },
];

/// A popular-but-wrong claim the model may assert when ungrounded.
pub struct Misconception {
    /// Stable key.
    pub key: &'static str,
    /// The (correct) finding this misconception suppresses when it wins.
    pub suppresses: IssueLabel,
    /// The knowledge claim whose retrieval corrects it.
    pub corrected_by: &'static str,
    /// Whether the trigger situation is present.
    pub trigger: fn(&Evidence) -> bool,
    /// The wrong assertion, phrased as models phrase it.
    pub text: &'static str,
}

/// The misconception table.
pub fn misconceptions() -> &'static [Misconception] {
    MISCONCEPTIONS
}

static MISCONCEPTIONS: &[Misconception] = &[
    Misconception {
        key: "stripe_1_optimal",
        suppresses: IssueLabel::ServerLoadImbalance,
        corrected_by: "stripe_width_parallelism",
        trigger: |ev| ev.get_or(K::LUSTRE_STRIPE_WIDTH, 99.0) <= th::STRIPE_WIDTH_LOW,
        text: "The file alignment was set at 1MB (1048576 bytes), which matches the common \
               Lustre stripe size. This is optimal for minimizing the number of I/O \
               requests on Lustre, so the striping configuration looks well tuned.",
    },
    Misconception {
        key: "posix_faster_at_scale",
        suppresses: IssueLabel::MultiProcessWithoutMpi,
        corrected_by: "mpi_vs_posix",
        trigger: |ev| {
            ev.get_or(K::NPROCS, 1.0) > 1.0
                && ev.get_or(K::POSIX_PRESENT, 0.0) > 0.5
                && ev.get_or(K::MPIIO_PRESENT, 1.0) < 0.5
        },
        text: "Using the POSIX interface directly avoids MPI-IO layering overhead and is \
               generally the faster choice at this process count.",
    },
    Misconception {
        key: "independent_mpiio_fine",
        suppresses: IssueLabel::NoCollectiveWrite,
        corrected_by: "collective_io_benefit",
        trigger: |ev| {
            ev.get_or(K::MPIIO_INDEP_WRITES, 0.0) >= th::MIN_MPIIO_OPS as f64
                && ev.get_or(K::MPIIO_COLL_WRITES, 0.0) < 1.0
        },
        text: "Independent MPI-IO writes avoid the synchronisation cost of collective \
               calls; since each rank writes its own region, collective buffering would \
               not help here.",
    },
    Misconception {
        key: "sub_mb_writes_efficient",
        suppresses: IssueLabel::SmallWrite,
        corrected_by: "small_io_aggregation",
        trigger: |ev| ev.get_or(K::POSIX_SMALL_WRITE_FRACTION, 0.0) > th::SMALL_FRACTION,
        text: "A significant number of writes occurred in the 100K-1M range, which is an \
               efficient I/O size; the client-side cache will coalesce them before they \
               reach the servers.",
    },
    Misconception {
        key: "random_fine_on_flash",
        suppresses: IssueLabel::RandomRead,
        corrected_by: "random_vs_sequential",
        trigger: |ev| ev.get_or(K::POSIX_SEQ_READ_FRACTION, 1.0) < th::SEQ_FRACTION_RANDOM,
        text: "Modern storage tiers are flash-based, so the random read order should not \
               meaningfully affect performance.",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pairs: &[(&str, f64)]) -> Evidence {
        let mut e = Evidence::default();
        for (k, v) in pairs {
            e.values.insert(k.to_string(), *v);
        }
        e
    }

    #[test]
    fn one_rule_per_label_except_none_missing() {
        // Every TraceBench label is covered by exactly one rule.
        let mut labels: Vec<IssueLabel> = rules().iter().map(|r| r.issue).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), IssueLabel::ALL.len());
    }

    #[test]
    fn small_write_rule_fires_on_planted_evidence() {
        let e = ev(&[
            (K::POSIX_WRITES, 25600.0),
            (K::POSIX_SMALL_WRITE_FRACTION, 0.95),
        ]);
        let rule = rules()
            .iter()
            .find(|r| r.issue == IssueLabel::SmallWrite)
            .unwrap();
        assert!((rule.check)(&e).is_some());
        let quiet = ev(&[
            (K::POSIX_WRITES, 25600.0),
            (K::POSIX_SMALL_WRITE_FRACTION, 0.02),
        ]);
        assert!((rule.check)(&quiet).is_none());
    }

    #[test]
    fn rules_skip_on_missing_evidence() {
        let empty = Evidence::default();
        for r in rules() {
            assert!(
                (r.check)(&empty).is_none(),
                "{:?} fired on no evidence",
                r.issue
            );
        }
    }

    #[test]
    fn mp_without_mpi_needs_module_absence() {
        let rule = rules()
            .iter()
            .find(|r| r.issue == IssueLabel::MultiProcessWithoutMpi)
            .unwrap();
        let fires = ev(&[
            (K::NPROCS, 16.0),
            (K::POSIX_PRESENT, 1.0),
            (K::MPIIO_PRESENT, 0.0),
        ]);
        assert!((rule.check)(&fires).is_some());
        let quiet = ev(&[
            (K::NPROCS, 16.0),
            (K::POSIX_PRESENT, 1.0),
            (K::MPIIO_PRESENT, 1.0),
        ]);
        assert!((rule.check)(&quiet).is_none());
    }

    #[test]
    fn stripe_misconception_triggers_on_narrow_stripes() {
        let m = misconceptions()
            .iter()
            .find(|m| m.key == "stripe_1_optimal")
            .unwrap();
        assert!((m.trigger)(&ev(&[(K::LUSTRE_STRIPE_WIDTH, 1.0)])));
        assert!(!(m.trigger)(&ev(&[(K::LUSTRE_STRIPE_WIDTH, 8.0)])));
        assert_eq!(m.suppresses, IssueLabel::ServerLoadImbalance);
    }

    #[test]
    fn difficulties_in_range() {
        for r in rules() {
            assert!((0.0..=1.0).contains(&r.difficulty), "{:?}", r.issue);
        }
    }

    #[test]
    fn misconception_texts_do_not_contain_issue_display_names() {
        // Misconceptions must not be parsed back as issue mentions.
        for m in misconceptions() {
            for l in IssueLabel::ALL {
                assert!(
                    !m.text
                        .to_lowercase()
                        .contains(&l.display_name().to_lowercase()),
                    "{} leaks {}",
                    m.key,
                    l.display_name()
                );
            }
        }
    }
}
