#![warn(missing_docs)]
//! `simllm` — a deterministic behavioural simulator of large language
//! models, calibrated to the failure modes the IOAgent paper engineers
//! around.
//!
//! The paper's contribution is not an LLM: it is an orchestration layer
//! (pre-processing, retrieval grounding, pairwise merging, bias-cancelled
//! judging) that turns an *unreliable* language model into a trustworthy
//! diagnostician. Reproducing that contribution offline therefore requires
//! a model substrate whose unreliability is realistic and controllable:
//!
//! - **finite attention** with *lost-in-the-middle* truncation
//!   ([`context`]), so stuffing a whole Darshan trace into a prompt
//!   mechanically destroys mid-file information (the ION failure mode);
//! - **capability-gated expertise** ([`iokb`]): harder inferences (server
//!   imbalance, missing collectives) need stronger models, unless retrieval
//!   grounding lowers the bar (the RAG benefit);
//! - **misconceptions** that surface exactly when ungrounded (the paper's
//!   "1 MB stripe is optimal" example, Fig. 1);
//! - **hallucination** of plausible but unsupported findings;
//! - **merge-fidelity collapse** as more documents are merged at once
//!   (the reason tree-based pairwise merging exists, Fig. 6);
//! - **positional and name bias** in ranking (the reason the judge
//!   anonymises and rotates, Fig. 4).
//!
//! Everything is deterministic per (model, prompt, salt), so the entire
//! evaluation pipeline is reproducible bit-for-bit.

pub mod context;
pub mod evidence;
pub mod faults;
pub mod iokb;
pub mod profile;
pub mod quality;
pub mod report;
pub mod rng;
pub mod tasks;

pub use faults::{
    AttemptDraw, AttemptFault, CancelToken, FaultKind, FaultPlan, FaultSpec, LatencyProfile,
    LlmError, TailSpec,
};
pub use profile::{profile, profile_or_panic, ModelProfile, PROFILES};
pub use report::{extract_issues, Diagnosis};

use parking_lot::Mutex;

/// A completion request.
#[derive(Debug, Clone, Default)]
pub struct CompletionRequest {
    /// System prompt (instructions; attended first).
    pub system: String,
    /// User prompt (task + sections).
    pub user: String,
    /// Decorrelation salt (e.g. retry number, permutation index).
    pub salt: u64,
    /// Delivery attempt lane. Content draws ignore it (retries and
    /// hedges reproduce byte-identical text); latency and fault draws
    /// are keyed by it, so each attempt resolves independently.
    pub attempt: u32,
    /// Cooperative cancellation for this attempt's simulated latency
    /// (hedging: the losing duplicate is cancelled mid-sleep). The
    /// default token is never cancelled.
    pub cancel: CancelToken,
}

impl CompletionRequest {
    /// Convenience constructor.
    pub fn new(system: impl Into<String>, user: impl Into<String>) -> Self {
        CompletionRequest {
            system: system.into(),
            user: user.into(),
            salt: 0,
            attempt: 0,
            cancel: CancelToken::default(),
        }
    }

    /// With a specific salt.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// On a specific delivery-attempt lane.
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }

    /// With a caller-held cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

/// A completion result with usage accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The model's output text.
    pub text: String,
    /// Input tokens (before attention).
    pub input_tokens: usize,
    /// Output tokens.
    pub output_tokens: usize,
    /// Whether input was truncated / degraded by attention.
    pub truncated: bool,
    /// Fraction of input lines the model attended to.
    pub retention: f64,
    /// Accumulated cost of this call in USD.
    pub cost_usd: f64,
}

/// Anything that can complete prompts (the simulator, or a stub in tests).
pub trait LanguageModel: Send + Sync {
    /// Model name.
    fn name(&self) -> &str;
    /// Behavioural profile.
    fn profile(&self) -> &ModelProfile;
    /// Complete a request, retrying internally until it succeeds.
    fn complete(&self, request: &CompletionRequest) -> Completion;
    /// One delivery attempt, surfacing injected faults and cancellation
    /// to the caller. Models without a failure model never fail.
    fn try_complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        Ok(self.complete(request))
    }
}

/// Cumulative usage across a model instance's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Usage {
    /// Number of completions served.
    pub calls: usize,
    /// Total input tokens.
    pub input_tokens: usize,
    /// Total output tokens.
    pub output_tokens: usize,
    /// Total cost in USD.
    pub cost_usd: f64,
}

/// The simulated LLM.
pub struct SimLlm {
    profile: &'static ModelProfile,
    usage: Mutex<Usage>,
    plan: FaultPlan,
}

impl SimLlm {
    /// Instantiate by profile name (panics on unknown names).
    pub fn new(model: &str) -> Self {
        SimLlm {
            profile: profile_or_panic(model),
            usage: Mutex::new(Usage::default()),
            plan: FaultPlan::default(),
        }
    }

    /// Charge a simulated remote round-trip per completion. A deployed
    /// agent fronts network-hosted models whose latency — not local
    /// compute — dominates, so benchmarks use this to reproduce the
    /// latency-bound regime on any machine (the per-call analogue of
    /// `ioagentd`'s per-job `simulated_rpc_latency`). Output text and
    /// usage accounting are unaffected. This is the degenerate
    /// [`FaultPlan`]: a flat [`LatencyProfile`], no tail, no faults.
    pub fn with_latency(mut self, latency: std::time::Duration) -> Self {
        self.plan = self.plan.with_profile(LatencyProfile::flat(latency));
        self
    }

    /// Install a full failure model: streaming latency profile,
    /// heavy-tailed stragglers, and injected faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// The installed failure model.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Deterministically preview one delivery attempt — its simulated
    /// latency and fault outcome — without sleeping, faulting, or
    /// charging usage. Possible because the simulator's draws are pure
    /// functions of (model, prompt, salt, attempt); a hedging caller
    /// uses this to compute the loser's exact projected finish time.
    pub fn preview_attempt(&self, request: &CompletionRequest) -> AttemptDraw {
        let full = format!("{}\n{}", request.system, request.user);
        let (completion, _) = self.generate(request, &full);
        self.plan.draw(
            self.profile.name,
            &full,
            request.salt,
            request.attempt,
            completion.output_tokens,
        )
    }

    /// The pure content path: attention, task dispatch, text, per-call
    /// cost. No latency, no faults, no usage commit — callers decide
    /// whether the attempt actually delivered.
    fn generate(&self, request: &CompletionRequest, full: &str) -> (Completion, String) {
        let mut rng = rng::rng_for(self.profile.name, full, request.salt);
        let attended = context::attend(self.profile, full, &mut rng);

        let task = tasks::parse_task(&attended.lines).unwrap_or_else(|| "diagnose".to_string());
        let load =
            (attended.input_tokens as f64 / self.profile.context_tokens as f64).clamp(0.0, 1.0);
        let text = match task.as_str() {
            "diagnose" => tasks::diagnose(self.profile, &attended.lines, load, &mut rng),
            "transform" => tasks::transform(self.profile, &attended.lines),
            "merge" => tasks::merge(self.profile, &attended.lines, &mut rng),
            "filter" => tasks::filter(self.profile, &attended.lines, &mut rng),
            "rank" => tasks::rank(self.profile, &attended.lines, &mut rng),
            "chat" => tasks::chat(self.profile, &attended.lines, &mut rng),
            _ => format!("I could not identify the task '{task}' in the prompt."),
        };

        let output_tokens = context::count_tokens(&text);
        let cost_usd =
            (attended.input_tokens + output_tokens) as f64 / 1.0e6 * self.profile.cost_per_mtok;
        (
            Completion {
                text,
                input_tokens: attended.input_tokens,
                output_tokens,
                truncated: attended.truncated,
                retention: attended.retention,
                cost_usd,
            },
            task,
        )
    }

    /// Snapshot of cumulative usage. Cost is derived here from the integer
    /// token totals (cost is linear in tokens, so the sum of per-call costs
    /// equals the cost of the summed tokens) rather than accumulated per
    /// call: f64 addition is order-sensitive, and with parallel completions
    /// an accumulated total would vary in its low bits from run to run —
    /// this way usage snapshots are bit-identical at any thread count.
    pub fn usage(&self) -> Usage {
        let mut usage = *self.usage.lock();
        usage.cost_usd =
            (usage.input_tokens + usage.output_tokens) as f64 / 1.0e6 * self.profile.cost_per_mtok;
        usage
    }
}

impl LanguageModel for SimLlm {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn profile(&self) -> &ModelProfile {
        self.profile
    }

    /// Infinite-patience delivery: retry injected faults forever
    /// (honouring rate-limit hints), return the first success. This is
    /// the countermeasures-off baseline a resilient caller competes
    /// against — it always succeeds eventually, with an enormous tail.
    fn complete(&self, request: &CompletionRequest) -> Completion {
        let mut attempts = 1u64;
        let mut retry: Option<CompletionRequest> = None; // cloned lazily, only on retry
        loop {
            let req = retry.as_ref().unwrap_or(request);
            match self.try_complete(req) {
                Ok(completion) => {
                    ioobserve::metrics()
                        .histogram("llm.attempts")
                        .record(attempts);
                    return completion;
                }
                Err(LlmError::Cancelled) => {
                    // A cancelled infinite-patience call has no network
                    // result to return; surface the deterministic content
                    // without charging usage (racing callers discard it).
                    let full = format!("{}\n{}", req.system, req.user);
                    return self.generate(req, &full).0;
                }
                Err(LlmError::Fault { retry_after, .. }) => {
                    if let Some(wait) = retry_after {
                        std::thread::sleep(wait);
                    }
                    let mut next = retry.take().unwrap_or_else(|| request.clone());
                    next.attempt = next.attempt.wrapping_add(1);
                    retry = Some(next);
                    attempts += 1;
                }
            }
        }
    }

    /// One delivery attempt on the request's attempt lane: draw latency
    /// and fault from the plan, sleep cancellably, and commit usage and
    /// metrics only when the attempt actually delivers. Failed and
    /// cancelled attempts charge nothing — exactly one commit happens
    /// per delivered completion, so usage accounting stays deterministic
    /// whether or not faults forced retries or hedges along the way.
    fn try_complete(&self, request: &CompletionRequest) -> Result<Completion, LlmError> {
        let call_start = std::time::Instant::now();
        let mut span = ioobserve::tracer().span_fine("llm.call");
        span.set_attr("model", self.profile.name);
        if request.attempt != 0 {
            span.set_attr("attempt", request.attempt);
        }
        let full = format!("{}\n{}", request.system, request.user);
        let (completion, task) = self.generate(request, &full);
        let draw = self.plan.draw(
            self.profile.name,
            &full,
            request.salt,
            request.attempt,
            completion.output_tokens,
        );
        if (!draw.latency.is_zero() || request.cancel.is_cancelled())
            && !request.cancel.sleep(draw.latency)
        {
            span.set_attr("cancelled", true);
            ioobserve::metrics().counter("llm.cancelled").inc();
            return Err(LlmError::Cancelled);
        }
        if let Some(fault) = draw.fault {
            span.set_attr("fault", fault.kind.as_str());
            let counter = match fault.kind {
                FaultKind::Timeout => "llm.fault.timeout",
                FaultKind::RateLimited => "llm.fault.rate_limited",
                FaultKind::Truncated => "llm.fault.truncated",
            };
            ioobserve::metrics().counter(counter).inc();
            return Err(LlmError::Fault {
                kind: fault.kind,
                retry_after: fault.retry_after,
            });
        }
        {
            // Integer sums only; the snapshot in [`SimLlm::usage`] derives
            // the (order-invariant) cost from these totals.
            let mut u = self.usage.lock();
            u.calls += 1;
            u.input_tokens += completion.input_tokens;
            u.output_tokens += completion.output_tokens;
        }
        span.set_attr("task", &task);
        span.set_attr("input_tokens", completion.input_tokens);
        span.set_attr("output_tokens", completion.output_tokens);
        drop(span);
        let m = ioobserve::metrics();
        m.counter("llm.calls").inc();
        m.counter("llm.input_tokens")
            .add(completion.input_tokens as u64);
        m.counter("llm.output_tokens")
            .add(completion.output_tokens as u64);
        m.float_counter("llm.cost_usd").add(completion.cost_usd);
        m.histogram("llm.call_ns")
            .record_duration(call_start.elapsed());
        Ok(completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_is_deterministic() {
        let m = SimLlm::new("gpt-4o");
        let req = CompletionRequest::new(
            "You are an HPC I/O expert.",
            "### TASK: diagnose\nEVIDENCE nprocs=8\nEVIDENCE posix.writes=1000\nEVIDENCE posix.small_write_fraction=0.9",
        );
        let a = m.complete(&req);
        let b = m.complete(&req);
        assert_eq!(a.text, b.text);
        assert_eq!(a.input_tokens, b.input_tokens);
    }

    #[test]
    fn salt_changes_stochastic_outcomes() {
        let m = SimLlm::new("llama-3-70b");
        let user = "### TASK: diagnose\nEVIDENCE nprocs=8\nEVIDENCE posix.writes=1000\nEVIDENCE posix.small_write_fraction=0.9\nEVIDENCE lustre.stripe_width_mean=1\nEVIDENCE total_bytes=2000000000\nEVIDENCE lustre.present=1";
        let texts: std::collections::BTreeSet<String> = (0..12)
            .map(|s| {
                m.complete(&CompletionRequest::new("sys", user).with_salt(s))
                    .text
            })
            .collect();
        assert!(texts.len() > 1, "salts produced identical outputs");
    }

    #[test]
    fn usage_accumulates() {
        let m = SimLlm::new("gpt-4o-mini");
        let req = CompletionRequest::new(
            "s",
            "### TASK: filter\n## FRAGMENT\na b c\n## SOURCE\na b c",
        );
        m.complete(&req);
        m.complete(&req);
        let u = m.usage();
        assert_eq!(u.calls, 2);
        assert!(u.input_tokens > 0);
        assert!(u.cost_usd > 0.0);
    }

    #[test]
    fn latency_knob_changes_neither_output_nor_accounting() {
        let req = CompletionRequest::new(
            "s",
            "### TASK: filter\n## FRAGMENT\na b c\n## SOURCE\na b c",
        );
        let plain = SimLlm::new("gpt-4o-mini");
        let slow = SimLlm::new("gpt-4o-mini").with_latency(std::time::Duration::from_millis(1));
        let a = plain.complete(&req);
        let b = slow.complete(&req);
        assert_eq!(a.text, b.text);
        assert_eq!(a.input_tokens, b.input_tokens);
        assert_eq!(plain.usage(), slow.usage());
    }

    #[test]
    fn unknown_task_degrades_gracefully() {
        let m = SimLlm::new("gpt-4");
        let c = m.complete(&CompletionRequest::new("", "### TASK: haiku\nwrite one"));
        assert!(c.text.contains("could not identify"));
    }

    #[test]
    fn huge_prompt_reports_truncation() {
        let m = SimLlm::new("gpt-4");
        let mut user = String::from("### TASK: diagnose\n");
        for i in 0..20_000 {
            user.push_str(&format!("POSIX\t0\t{i}\tPOSIX_READS\t1\t/f\t/\text4\n"));
        }
        let c = m.complete(&CompletionRequest::new("", &user));
        assert!(c.truncated);
        assert!(c.retention < 0.5);
    }

    #[test]
    #[should_panic(expected = "unknown model profile")]
    fn unknown_model_panics() {
        SimLlm::new("gpt-17");
    }

    /// A plan whose faults are frequent enough that infinite-patience
    /// delivery is all but guaranteed to retry, with waits in the
    /// microseconds so tests stay fast.
    fn flaky_plan() -> FaultPlan {
        FaultPlan::new()
            .with_profile(LatencyProfile::new(
                std::time::Duration::from_micros(20),
                2e8,
            ))
            .with_faults(FaultSpec {
                timeout_probability: 0.4,
                timeout: std::time::Duration::from_micros(50),
                rate_limit_probability: 0.2,
                retry_after: std::time::Duration::from_micros(10),
                truncate_probability: 0.1,
            })
    }

    #[test]
    fn faults_force_retries_but_content_and_usage_are_unchanged() {
        let req = CompletionRequest::new(
            "s",
            "### TASK: filter\n## FRAGMENT\na b c\n## SOURCE\na b c",
        );
        let plain = SimLlm::new("gpt-4o-mini");
        let flaky = SimLlm::new("gpt-4o-mini").with_fault_plan(flaky_plan());
        // Drive enough distinct prompts that some certainly fault.
        let mut faulted = 0usize;
        for i in 0..24 {
            let r = req.clone().with_salt(i);
            if flaky.try_complete(&r.clone().with_attempt(0)).is_err() {
                faulted += 1;
            }
            let a = plain.complete(&r);
            let b = flaky.complete(&r);
            assert_eq!(a.text, b.text, "salt {i}: retries changed content");
            assert_eq!(a.input_tokens, b.input_tokens);
        }
        assert!(
            faulted > 0,
            "plan with 70% fault rate never faulted in 24 draws"
        );
        // try_complete above committed usage only for its successes; the
        // paired complete() calls committed exactly once each. Totals are
        // therefore exact multiples of the per-call cost — faults and
        // retries never double- or under-count.
        assert_eq!(flaky.usage().calls, 24 + (24 - faulted));
        assert_eq!(plain.usage().calls, 24);
    }

    #[test]
    fn attempt_lane_changes_timing_but_not_content() {
        let m = SimLlm::new("gpt-4o").with_fault_plan(
            FaultPlan::new()
                .with_profile(LatencyProfile::new(
                    std::time::Duration::from_micros(10),
                    1e9,
                ))
                .with_tail(TailSpec {
                    probability: 0.5,
                    lognormal_sigma: 1.0,
                    median_multiplier: 8.0,
                    pareto_alpha: 1.5,
                    pareto_weight: 0.3,
                    max_multiplier: 50.0,
                }),
        );
        let req = CompletionRequest::new(
            "You are an HPC I/O expert.",
            "### TASK: diagnose\nEVIDENCE nprocs=8\nEVIDENCE posix.writes=1000",
        );
        let draws: Vec<AttemptDraw> = (0..8)
            .map(|a| m.preview_attempt(&req.clone().with_attempt(a)))
            .collect();
        assert!(
            draws.iter().any(|d| *d != draws[0]),
            "8 attempt lanes drew identical timing"
        );
        let texts: std::collections::BTreeSet<String> = (0..8)
            .map(|a| m.complete(&req.clone().with_attempt(a)).text)
            .collect();
        assert_eq!(texts.len(), 1, "attempt lane leaked into content");
    }

    #[test]
    fn cancelled_attempt_charges_no_usage() {
        let m = SimLlm::new("gpt-4o-mini").with_latency(std::time::Duration::from_millis(50));
        let token = CancelToken::new();
        let req = CompletionRequest::new(
            "s",
            "### TASK: filter\n## FRAGMENT\na b c\n## SOURCE\na b c",
        )
        .with_cancel(token.clone());
        token.cancel();
        assert_eq!(m.try_complete(&req), Err(LlmError::Cancelled));
        assert_eq!(
            m.usage().calls,
            0,
            "cancelled attempt must not commit usage"
        );
    }

    #[test]
    fn preview_matches_try_complete_outcome() {
        let m = SimLlm::new("gpt-4o").with_fault_plan(flaky_plan());
        for salt in 0..16 {
            let req = CompletionRequest::new(
                "s",
                "### TASK: diagnose\nEVIDENCE nprocs=8\nEVIDENCE posix.writes=1000",
            )
            .with_salt(salt);
            let preview = m.preview_attempt(&req);
            let outcome = m.try_complete(&req);
            match preview.fault {
                Some(f) => {
                    assert_eq!(
                        outcome,
                        Err(LlmError::Fault {
                            kind: f.kind,
                            retry_after: f.retry_after
                        }),
                        "salt {salt}"
                    );
                }
                None => assert!(outcome.is_ok(), "salt {salt}"),
            }
        }
    }
}
