//! `simllm` — a deterministic behavioural simulator of large language
//! models, calibrated to the failure modes the IOAgent paper engineers
//! around.
//!
//! The paper's contribution is not an LLM: it is an orchestration layer
//! (pre-processing, retrieval grounding, pairwise merging, bias-cancelled
//! judging) that turns an *unreliable* language model into a trustworthy
//! diagnostician. Reproducing that contribution offline therefore requires
//! a model substrate whose unreliability is realistic and controllable:
//!
//! - **finite attention** with *lost-in-the-middle* truncation
//!   ([`context`]), so stuffing a whole Darshan trace into a prompt
//!   mechanically destroys mid-file information (the ION failure mode);
//! - **capability-gated expertise** ([`iokb`]): harder inferences (server
//!   imbalance, missing collectives) need stronger models, unless retrieval
//!   grounding lowers the bar (the RAG benefit);
//! - **misconceptions** that surface exactly when ungrounded (the paper's
//!   "1 MB stripe is optimal" example, Fig. 1);
//! - **hallucination** of plausible but unsupported findings;
//! - **merge-fidelity collapse** as more documents are merged at once
//!   (the reason tree-based pairwise merging exists, Fig. 6);
//! - **positional and name bias** in ranking (the reason the judge
//!   anonymises and rotates, Fig. 4).
//!
//! Everything is deterministic per (model, prompt, salt), so the entire
//! evaluation pipeline is reproducible bit-for-bit.

pub mod context;
pub mod evidence;
pub mod iokb;
pub mod profile;
pub mod quality;
pub mod report;
pub mod rng;
pub mod tasks;

pub use profile::{profile, profile_or_panic, ModelProfile, PROFILES};
pub use report::{extract_issues, Diagnosis};

use parking_lot::Mutex;

/// A completion request.
#[derive(Debug, Clone, Default)]
pub struct CompletionRequest {
    /// System prompt (instructions; attended first).
    pub system: String,
    /// User prompt (task + sections).
    pub user: String,
    /// Decorrelation salt (e.g. retry number, permutation index).
    pub salt: u64,
}

impl CompletionRequest {
    /// Convenience constructor.
    pub fn new(system: impl Into<String>, user: impl Into<String>) -> Self {
        CompletionRequest {
            system: system.into(),
            user: user.into(),
            salt: 0,
        }
    }

    /// With a specific salt.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }
}

/// A completion result with usage accounting.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The model's output text.
    pub text: String,
    /// Input tokens (before attention).
    pub input_tokens: usize,
    /// Output tokens.
    pub output_tokens: usize,
    /// Whether input was truncated / degraded by attention.
    pub truncated: bool,
    /// Fraction of input lines the model attended to.
    pub retention: f64,
    /// Accumulated cost of this call in USD.
    pub cost_usd: f64,
}

/// Anything that can complete prompts (the simulator, or a stub in tests).
pub trait LanguageModel: Send + Sync {
    /// Model name.
    fn name(&self) -> &str;
    /// Behavioural profile.
    fn profile(&self) -> &ModelProfile;
    /// Complete a request.
    fn complete(&self, request: &CompletionRequest) -> Completion;
}

/// Cumulative usage across a model instance's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Usage {
    /// Number of completions served.
    pub calls: usize,
    /// Total input tokens.
    pub input_tokens: usize,
    /// Total output tokens.
    pub output_tokens: usize,
    /// Total cost in USD.
    pub cost_usd: f64,
}

/// The simulated LLM.
pub struct SimLlm {
    profile: &'static ModelProfile,
    usage: Mutex<Usage>,
    latency: std::time::Duration,
}

impl SimLlm {
    /// Instantiate by profile name (panics on unknown names).
    pub fn new(model: &str) -> Self {
        SimLlm {
            profile: profile_or_panic(model),
            usage: Mutex::new(Usage::default()),
            latency: std::time::Duration::ZERO,
        }
    }

    /// Charge a simulated remote round-trip per completion. A deployed
    /// agent fronts network-hosted models whose latency — not local
    /// compute — dominates, so benchmarks use this to reproduce the
    /// latency-bound regime on any machine (the per-call analogue of
    /// `ioagentd`'s per-job `simulated_rpc_latency`). Output text and
    /// usage accounting are unaffected.
    pub fn with_latency(mut self, latency: std::time::Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Snapshot of cumulative usage. Cost is derived here from the integer
    /// token totals (cost is linear in tokens, so the sum of per-call costs
    /// equals the cost of the summed tokens) rather than accumulated per
    /// call: f64 addition is order-sensitive, and with parallel completions
    /// an accumulated total would vary in its low bits from run to run —
    /// this way usage snapshots are bit-identical at any thread count.
    pub fn usage(&self) -> Usage {
        let mut usage = *self.usage.lock();
        usage.cost_usd =
            (usage.input_tokens + usage.output_tokens) as f64 / 1.0e6 * self.profile.cost_per_mtok;
        usage
    }
}

impl LanguageModel for SimLlm {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn profile(&self) -> &ModelProfile {
        self.profile
    }

    fn complete(&self, request: &CompletionRequest) -> Completion {
        let call_start = std::time::Instant::now();
        let mut span = ioobserve::tracer().span_fine("llm.call");
        span.set_attr("model", self.profile.name);
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        let full = format!("{}\n{}", request.system, request.user);
        let mut rng = rng::rng_for(self.profile.name, &full, request.salt);
        let attended = context::attend(self.profile, &full, &mut rng);

        let task = tasks::parse_task(&attended.lines).unwrap_or_else(|| "diagnose".to_string());
        let load =
            (attended.input_tokens as f64 / self.profile.context_tokens as f64).clamp(0.0, 1.0);
        let text = match task.as_str() {
            "diagnose" => tasks::diagnose(self.profile, &attended.lines, load, &mut rng),
            "transform" => tasks::transform(self.profile, &attended.lines),
            "merge" => tasks::merge(self.profile, &attended.lines, &mut rng),
            "filter" => tasks::filter(self.profile, &attended.lines, &mut rng),
            "rank" => tasks::rank(self.profile, &attended.lines, &mut rng),
            "chat" => tasks::chat(self.profile, &attended.lines, &mut rng),
            _ => format!("I could not identify the task '{task}' in the prompt."),
        };

        let output_tokens = context::count_tokens(&text);
        let cost_usd =
            (attended.input_tokens + output_tokens) as f64 / 1.0e6 * self.profile.cost_per_mtok;
        {
            // Integer sums only; the snapshot in [`SimLlm::usage`] derives
            // the (order-invariant) cost from these totals.
            let mut u = self.usage.lock();
            u.calls += 1;
            u.input_tokens += attended.input_tokens;
            u.output_tokens += output_tokens;
        }
        span.set_attr("task", &task);
        span.set_attr("input_tokens", attended.input_tokens);
        span.set_attr("output_tokens", output_tokens);
        drop(span);
        let m = ioobserve::metrics();
        m.counter("llm.calls").inc();
        m.counter("llm.input_tokens")
            .add(attended.input_tokens as u64);
        m.counter("llm.output_tokens").add(output_tokens as u64);
        m.float_counter("llm.cost_usd").add(cost_usd);
        m.histogram("llm.call_ns")
            .record_duration(call_start.elapsed());
        Completion {
            text,
            input_tokens: attended.input_tokens,
            output_tokens,
            truncated: attended.truncated,
            retention: attended.retention,
            cost_usd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_is_deterministic() {
        let m = SimLlm::new("gpt-4o");
        let req = CompletionRequest::new(
            "You are an HPC I/O expert.",
            "### TASK: diagnose\nEVIDENCE nprocs=8\nEVIDENCE posix.writes=1000\nEVIDENCE posix.small_write_fraction=0.9",
        );
        let a = m.complete(&req);
        let b = m.complete(&req);
        assert_eq!(a.text, b.text);
        assert_eq!(a.input_tokens, b.input_tokens);
    }

    #[test]
    fn salt_changes_stochastic_outcomes() {
        let m = SimLlm::new("llama-3-70b");
        let user = "### TASK: diagnose\nEVIDENCE nprocs=8\nEVIDENCE posix.writes=1000\nEVIDENCE posix.small_write_fraction=0.9\nEVIDENCE lustre.stripe_width_mean=1\nEVIDENCE total_bytes=2000000000\nEVIDENCE lustre.present=1";
        let texts: std::collections::BTreeSet<String> = (0..12)
            .map(|s| {
                m.complete(&CompletionRequest::new("sys", user).with_salt(s))
                    .text
            })
            .collect();
        assert!(texts.len() > 1, "salts produced identical outputs");
    }

    #[test]
    fn usage_accumulates() {
        let m = SimLlm::new("gpt-4o-mini");
        let req = CompletionRequest::new(
            "s",
            "### TASK: filter\n## FRAGMENT\na b c\n## SOURCE\na b c",
        );
        m.complete(&req);
        m.complete(&req);
        let u = m.usage();
        assert_eq!(u.calls, 2);
        assert!(u.input_tokens > 0);
        assert!(u.cost_usd > 0.0);
    }

    #[test]
    fn latency_knob_changes_neither_output_nor_accounting() {
        let req = CompletionRequest::new(
            "s",
            "### TASK: filter\n## FRAGMENT\na b c\n## SOURCE\na b c",
        );
        let plain = SimLlm::new("gpt-4o-mini");
        let slow = SimLlm::new("gpt-4o-mini").with_latency(std::time::Duration::from_millis(1));
        let a = plain.complete(&req);
        let b = slow.complete(&req);
        assert_eq!(a.text, b.text);
        assert_eq!(a.input_tokens, b.input_tokens);
        assert_eq!(plain.usage(), slow.usage());
    }

    #[test]
    fn unknown_task_degrades_gracefully() {
        let m = SimLlm::new("gpt-4");
        let c = m.complete(&CompletionRequest::new("", "### TASK: haiku\nwrite one"));
        assert!(c.text.contains("could not identify"));
    }

    #[test]
    fn huge_prompt_reports_truncation() {
        let m = SimLlm::new("gpt-4");
        let mut user = String::from("### TASK: diagnose\n");
        for i in 0..20_000 {
            user.push_str(&format!("POSIX\t0\t{i}\tPOSIX_READS\t1\t/f\t/\text4\n"));
        }
        let c = m.complete(&CompletionRequest::new("", &user));
        assert!(c.truncated);
        assert!(c.retention < 0.5);
    }

    #[test]
    #[should_panic(expected = "unknown model profile")]
    fn unknown_model_panics() {
        SimLlm::new("gpt-17");
    }
}
