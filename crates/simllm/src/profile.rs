//! Model capability profiles.
//!
//! Each profile calibrates the simulator's failure modes to the published
//! behaviour of one backbone model: effective context budget (the window
//! within which the model reliably *uses* information — well below the
//! advertised context length), task capability, multi-document merge
//! fidelity, hallucination and misconception propensities, ranking position
//! bias, and verbosity. The paper's observations (Fig. 1, Fig. 6, Table IV)
//! anchor the relative ordering of these numbers.

use serde::{Deserialize, Serialize};

/// Calibrated behavioural parameters of one simulated model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model identifier (as used in the paper, e.g. `gpt-4o`).
    pub name: &'static str,
    /// Vendor string, for display.
    pub vendor: &'static str,
    /// Whether the model is open-source.
    pub open_source: bool,
    /// Effective attention budget in tokens: beyond this, middle content is
    /// progressively lost ("lost in the middle").
    pub context_tokens: usize,
    /// General task capability in [0, 1]; gates which expert rules the
    /// model manages to apply.
    pub capability: f64,
    /// Probability of retaining a given key point when merging *two*
    /// documents; degrades with the number of documents merged at once.
    pub merge_fidelity: f64,
    /// Per-response probability of fabricating an unsupported finding.
    pub hallucination_rate: f64,
    /// Probability of repeating a popular-but-wrong claim when the relevant
    /// trigger is present and no grounding reference contradicts it.
    pub misconception_rate: f64,
    /// Strength of positional bias when ranking candidates (0 = unbiased).
    pub position_bias: f64,
    /// Verbosity multiplier: how much prose the model wraps around each
    /// point (1.0 = terse; 2.0 = very chatty).
    pub verbosity: f64,
    /// Cost per million tokens (USD, blended in/out) for cost accounting.
    pub cost_per_mtok: f64,
}

/// The built-in profiles.
pub const PROFILES: &[ModelProfile] = &[
    ModelProfile {
        name: "gpt-4",
        vendor: "OpenAI",
        open_source: false,
        context_tokens: 6_000,
        capability: 0.55,
        merge_fidelity: 0.97,
        hallucination_rate: 0.25,
        misconception_rate: 0.50,
        position_bias: 0.35,
        verbosity: 1.2,
        cost_per_mtok: 45.0,
    },
    ModelProfile {
        name: "gpt-4o",
        vendor: "OpenAI",
        open_source: false,
        context_tokens: 16_000,
        capability: 0.85,
        merge_fidelity: 0.99,
        hallucination_rate: 0.12,
        misconception_rate: 0.40,
        position_bias: 0.25,
        verbosity: 1.8,
        cost_per_mtok: 12.5,
    },
    ModelProfile {
        name: "gpt-4o-mini",
        vendor: "OpenAI",
        open_source: false,
        context_tokens: 12_000,
        capability: 0.65,
        merge_fidelity: 0.96,
        hallucination_rate: 0.18,
        misconception_rate: 0.45,
        position_bias: 0.30,
        verbosity: 1.1,
        cost_per_mtok: 0.4,
    },
    ModelProfile {
        name: "o1-preview",
        vendor: "OpenAI",
        open_source: false,
        context_tokens: 4_000,
        capability: 0.88,
        merge_fidelity: 0.98,
        hallucination_rate: 0.08,
        misconception_rate: 0.30,
        position_bias: 0.20,
        verbosity: 1.5,
        cost_per_mtok: 60.0,
    },
    ModelProfile {
        name: "llama-3-70b",
        vendor: "Meta",
        open_source: true,
        context_tokens: 6_000,
        capability: 0.50,
        merge_fidelity: 0.93,
        hallucination_rate: 0.30,
        misconception_rate: 0.55,
        position_bias: 0.45,
        verbosity: 1.0,
        cost_per_mtok: 0.9,
    },
    ModelProfile {
        name: "llama-3.1-70b",
        vendor: "Meta",
        open_source: true,
        context_tokens: 10_000,
        capability: 0.70,
        merge_fidelity: 0.94,
        hallucination_rate: 0.20,
        misconception_rate: 0.45,
        position_bias: 0.35,
        verbosity: 0.9,
        cost_per_mtok: 0.9,
    },
];

/// Look a profile up by name.
pub fn profile(name: &str) -> Option<&'static ModelProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// Look a profile up by name, panicking on unknown models.
pub fn profile_or_panic(name: &str) -> &'static ModelProfile {
    profile(name).unwrap_or_else(|| panic!("unknown model profile: {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_profiles_with_unique_names() {
        assert_eq!(PROFILES.len(), 6);
        let mut names: Vec<_> = PROFILES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn probabilities_in_range() {
        for p in PROFILES {
            for v in [
                p.capability,
                p.merge_fidelity,
                p.hallucination_rate,
                p.misconception_rate,
                p.position_bias,
            ] {
                assert!((0.0..=1.0).contains(&v), "{}", p.name);
            }
            assert!(p.context_tokens >= 1_000);
        }
    }

    #[test]
    fn frontier_beats_open_source_on_capability() {
        let gpt4o = profile("gpt-4o").unwrap();
        let llama31 = profile("llama-3.1-70b").unwrap();
        let llama3 = profile("llama-3-70b").unwrap();
        assert!(gpt4o.capability > llama31.capability);
        assert!(llama31.capability > llama3.capability);
        assert!(gpt4o.merge_fidelity > llama3.merge_fidelity);
    }

    #[test]
    fn o1_has_smallest_context() {
        let o1 = profile("o1-preview").unwrap();
        for p in PROFILES {
            assert!(o1.context_tokens <= p.context_tokens);
        }
    }

    #[test]
    fn unknown_profile_is_none() {
        assert!(profile("gpt-5").is_none());
    }
}
