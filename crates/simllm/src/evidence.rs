//! Evidence extraction from attended context.
//!
//! The simulated model can only reason over what survived the attention
//! model. Two input shapes are understood:
//!
//! - **Structured evidence** (`EVIDENCE key=value` lines) as produced by
//!   IOAgent's pre-processor prompts — compact and immune to truncation.
//! - **Raw `darshan-parser` rows** as stuffed into ION's direct prompts —
//!   the extractor rebuilds what aggregates it can from the surviving rows,
//!   so truncation mechanically destroys information (e.g. if every MPIIO
//!   row fell in the lost middle, the model cannot know MPI-IO was used).
//!
//! `REFERENCE claim=<key> cite=<citation>` lines record retrieved domain
//! knowledge; their claims ground rules and suppress misconceptions.

use std::collections::{BTreeMap, BTreeSet};

/// Canonical evidence keys shared by prompt builders and the rule base.
pub mod keys {
    /// Number of MPI processes.
    pub const NPROCS: &str = "nprocs";
    /// Job runtime in seconds.
    pub const RUNTIME: &str = "runtime";
    /// 1.0 if the POSIX module is present.
    pub const POSIX_PRESENT: &str = "posix.present";
    /// POSIX read operations.
    pub const POSIX_READS: &str = "posix.reads";
    /// POSIX write operations.
    pub const POSIX_WRITES: &str = "posix.writes";
    /// POSIX open operations.
    pub const POSIX_OPENS: &str = "posix.opens";
    /// POSIX stat operations.
    pub const POSIX_STATS: &str = "posix.stats";
    /// Fraction of reads below 1 MB.
    pub const POSIX_SMALL_READ_FRACTION: &str = "posix.small_read_fraction";
    /// Fraction of writes below 1 MB.
    pub const POSIX_SMALL_WRITE_FRACTION: &str = "posix.small_write_fraction";
    /// Fraction of sequential reads.
    pub const POSIX_SEQ_READ_FRACTION: &str = "posix.seq_read_fraction";
    /// Fraction of sequential writes.
    pub const POSIX_SEQ_WRITE_FRACTION: &str = "posix.seq_write_fraction";
    /// Fraction of file-system-misaligned operations.
    pub const POSIX_MISALIGNED_FRACTION: &str = "posix.misaligned_fraction";
    /// 1.0 if the typical read size is not a multiple of the alignment.
    pub const POSIX_READ_ALIGN_MISMATCH: &str = "posix.read_align_mismatch";
    /// 1.0 if the typical write size is not a multiple of the alignment.
    pub const POSIX_WRITE_ALIGN_MISMATCH: &str = "posix.write_align_mismatch";
    /// Metadata time fraction of runtime × ranks.
    pub const POSIX_META_FRACTION: &str = "posix.meta_fraction";
    /// 1.0 if shared (rank −1) data records exist.
    pub const POSIX_SHARED_DATA: &str = "posix.shared_data";
    /// Max per-file bytes-read over byte-range factor.
    pub const POSIX_READ_REUSE: &str = "posix.read_reuse_factor";
    /// Coefficient of variation of per-rank bytes.
    pub const POSIX_RANK_CV: &str = "posix.rank_cv";
    /// Fastest/slowest rank byte ratio on shared files.
    pub const POSIX_RANK_RATIO: &str = "posix.rank_ratio";
    /// POSIX bytes read.
    pub const POSIX_BYTES_READ: &str = "posix.bytes_read";
    /// POSIX bytes written.
    pub const POSIX_BYTES_WRITTEN: &str = "posix.bytes_written";
    /// 1.0 if the MPI-IO module is present.
    pub const MPIIO_PRESENT: &str = "mpiio.present";
    /// Independent MPI-IO reads.
    pub const MPIIO_INDEP_READS: &str = "mpiio.indep_reads";
    /// Collective MPI-IO reads.
    pub const MPIIO_COLL_READS: &str = "mpiio.coll_reads";
    /// Independent MPI-IO writes.
    pub const MPIIO_INDEP_WRITES: &str = "mpiio.indep_writes";
    /// Collective MPI-IO writes.
    pub const MPIIO_COLL_WRITES: &str = "mpiio.coll_writes";
    /// 1.0 if the STDIO module is present.
    pub const STDIO_PRESENT: &str = "stdio.present";
    /// STDIO bytes read.
    pub const STDIO_BYTES_READ: &str = "stdio.bytes_read";
    /// STDIO bytes written.
    pub const STDIO_BYTES_WRITTEN: &str = "stdio.bytes_written";
    /// STDIO share of read bytes.
    pub const STDIO_READ_FRACTION: &str = "stdio.read_fraction";
    /// STDIO share of write bytes.
    pub const STDIO_WRITE_FRACTION: &str = "stdio.write_fraction";
    /// 1.0 if Lustre records are present.
    pub const LUSTRE_PRESENT: &str = "lustre.present";
    /// Mean stripe count across files.
    pub const LUSTRE_STRIPE_WIDTH: &str = "lustre.stripe_width_mean";
    /// Stripe size in bytes.
    pub const LUSTRE_STRIPE_SIZE: &str = "lustre.stripe_size";
    /// OSTs available in the file system.
    pub const LUSTRE_OST_COUNT: &str = "lustre.ost_count";
    /// Distinct OSTs used by the job.
    pub const LUSTRE_OSTS_USED: &str = "lustre.osts_used";
    /// Total POSIX+STDIO bytes.
    pub const TOTAL_BYTES: &str = "total_bytes";
}

/// Evidence assembled from attended context.
#[derive(Debug, Clone, Default)]
pub struct Evidence {
    /// Numeric facts keyed by canonical evidence key.
    pub values: BTreeMap<String, f64>,
    /// Claims grounded by retrieved references.
    pub grounded: BTreeSet<String>,
    /// Retrieved references: (claim, citation).
    pub references: Vec<(String, String)>,
    /// Keys the model had to derive itself from raw counter rows (as
    /// opposed to being handed pre-computed `EVIDENCE` lines). Arithmetic
    /// over hundreds of raw rows is unreliable for LLMs; the diagnosis task
    /// degrades these keys under load.
    pub raw_keys: BTreeSet<String>,
}

impl Evidence {
    /// Look up a fact.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Look up a fact with a default.
    pub fn get_or(&self, key: &str, default: f64) -> f64 {
        self.get(key).unwrap_or(default)
    }

    /// Whether a boolean-ish fact is present and set.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key).map(|v| v > 0.5).unwrap_or(false)
    }

    /// Whether a claim is grounded by retrieved knowledge.
    pub fn is_grounded(&self, claim: &str) -> bool {
        self.grounded.contains(claim)
    }

    /// Citations grounding a claim.
    pub fn citations_for(&self, claim: &str) -> Vec<&str> {
        self.references
            .iter()
            .filter(|(c, _)| c == claim)
            .map(|(_, cite)| cite.as_str())
            .collect()
    }

    /// Build evidence from attended lines (both input shapes).
    pub fn from_lines(lines: &[String]) -> Self {
        let mut ev = Evidence::default();
        let mut raw = RawAccumulator::default();
        for line in lines {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("EVIDENCE ") {
                if let Some((k, v)) = rest.split_once('=') {
                    if let Ok(x) = v.trim().parse::<f64>() {
                        ev.values.insert(k.trim().to_string(), x);
                    }
                }
            } else if let Some(rest) = t.strip_prefix("CONTEXT ") {
                for pair in rest.split_whitespace() {
                    if let Some((k, v)) = pair.split_once('=') {
                        if let Ok(x) = v.parse::<f64>() {
                            ev.values.insert(k.to_string(), x);
                        }
                    }
                }
            } else if let Some(rest) = t.strip_prefix("REFERENCE ") {
                let mut claim = String::new();
                let mut cite = String::new();
                if let Some(cpos) = rest.find("claim=") {
                    let after = &rest[cpos + 6..];
                    claim = after.split_whitespace().next().unwrap_or("").to_string();
                }
                if let Some(cpos) = rest.find("cite=") {
                    cite = rest[cpos + 5..].trim().to_string();
                }
                if !claim.is_empty() {
                    ev.grounded.insert(claim.clone());
                    ev.references.push((claim, cite));
                }
            } else {
                raw.feed(t);
            }
        }
        raw.finish(&mut ev);
        ev
    }
}

/// Accumulates raw `darshan-parser` rows and derives evidence from whatever
/// survived attention.
#[derive(Debug, Default)]
struct RawAccumulator {
    nprocs: Option<f64>,
    runtime: Option<f64>,
    /// (module, counter) → summed value.
    sums: BTreeMap<(String, String), f64>,
    /// per (module, record, direction bookkeeping for reuse).
    per_record_read_bytes: BTreeMap<u64, f64>,
    per_record_read_range: BTreeMap<u64, f64>,
    per_rank_bytes: BTreeMap<i64, f64>,
    ost_ids: BTreeSet<i64>,
    stripe_widths: Vec<f64>,
    stripe_sizes: Vec<f64>,
    shared_data_rows: usize,
    max_read_size: f64,
    max_write_size: f64,
    alignment: f64,
    saw_any: bool,
}

impl RawAccumulator {
    fn feed(&mut self, line: &str) {
        if let Some(rest) = line.strip_prefix("# nprocs:") {
            self.nprocs = rest.trim().parse().ok();
            return;
        }
        if let Some(rest) = line.strip_prefix("# run time:") {
            self.runtime = rest.trim().parse().ok();
            return;
        }
        if line.starts_with('#') || line.is_empty() {
            return;
        }
        let cols: Vec<&str> = if line.contains('\t') {
            line.split('\t').collect()
        } else {
            line.split_whitespace().collect()
        };
        if cols.len() < 5 {
            return;
        }
        let module = cols[0];
        if !matches!(module, "POSIX" | "MPIIO" | "STDIO" | "LUSTRE") {
            return;
        }
        let Ok(rank) = cols[1].parse::<i64>() else {
            return;
        };
        let Ok(record_id) = cols[2].parse::<u64>() else {
            return;
        };
        let counter = cols[3];
        let Ok(value) = cols[4].parse::<f64>() else {
            return;
        };
        self.saw_any = true;
        *self
            .sums
            .entry((module.to_string(), counter.to_string()))
            .or_insert(0.0) += value;

        match counter {
            "POSIX_BYTES_READ" => {
                *self.per_record_read_bytes.entry(record_id).or_insert(0.0) += value;
                if rank >= 0 {
                    *self.per_rank_bytes.entry(rank).or_insert(0.0) += value;
                } else if value > 0.0 {
                    self.shared_data_rows += 1;
                }
            }
            "POSIX_BYTES_WRITTEN" => {
                if rank >= 0 {
                    *self.per_rank_bytes.entry(rank).or_insert(0.0) += value;
                } else if value > 0.0 {
                    self.shared_data_rows += 1;
                }
            }
            "POSIX_MAX_BYTE_READ" => {
                let e = self.per_record_read_range.entry(record_id).or_insert(0.0);
                *e = e.max(value + 1.0);
            }
            "POSIX_MAX_READ_TIME_SIZE" => self.max_read_size = self.max_read_size.max(value),
            "POSIX_MAX_WRITE_TIME_SIZE" => self.max_write_size = self.max_write_size.max(value),
            "POSIX_FILE_ALIGNMENT" => self.alignment = self.alignment.max(value),
            "LUSTRE_STRIPE_WIDTH" => self.stripe_widths.push(value),
            "LUSTRE_STRIPE_SIZE" => self.stripe_sizes.push(value),
            _ => {
                if counter.starts_with("LUSTRE_OST_ID_") {
                    self.ost_ids.insert(value as i64);
                }
            }
        }
    }

    fn finish(self, ev: &mut Evidence) {
        use keys::*;
        if !self.saw_any {
            return;
        }
        let mut raw_keys: BTreeSet<String> = BTreeSet::new();
        let mut set = |k: &str, v: f64| {
            if !ev.values.contains_key(k) {
                ev.values.insert(k.to_string(), v);
                raw_keys.insert(k.to_string());
            }
        };
        if let Some(n) = self.nprocs {
            set(NPROCS, n);
        }
        if let Some(r) = self.runtime {
            set(RUNTIME, r);
        }
        let s = |m: &str, c: &str| self.sums.get(&(m.to_string(), c.to_string())).copied();
        let posix_present = self.sums.keys().any(|(m, _)| m == "POSIX");
        set(POSIX_PRESENT, posix_present as u8 as f64);
        let mpiio_present = self.sums.keys().any(|(m, _)| m == "MPIIO");
        set(MPIIO_PRESENT, mpiio_present as u8 as f64);
        let stdio_present = self.sums.keys().any(|(m, _)| m == "STDIO");
        set(STDIO_PRESENT, stdio_present as u8 as f64);
        let lustre_present = self.sums.keys().any(|(m, _)| m == "LUSTRE");
        set(LUSTRE_PRESENT, lustre_present as u8 as f64);

        if posix_present {
            let reads = s("POSIX", "POSIX_READS").unwrap_or(0.0);
            let writes = s("POSIX", "POSIX_WRITES").unwrap_or(0.0);
            set(POSIX_READS, reads);
            set(POSIX_WRITES, writes);
            set(POSIX_OPENS, s("POSIX", "POSIX_OPENS").unwrap_or(0.0));
            set(POSIX_STATS, s("POSIX", "POSIX_STATS").unwrap_or(0.0));
            let bytes_read = s("POSIX", "POSIX_BYTES_READ").unwrap_or(0.0);
            let bytes_written = s("POSIX", "POSIX_BYTES_WRITTEN").unwrap_or(0.0);
            set(POSIX_BYTES_READ, bytes_read);
            set(POSIX_BYTES_WRITTEN, bytes_written);
            const SMALL_BINS: [&str; 5] = ["0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M"];
            let small_reads: f64 = SMALL_BINS
                .iter()
                .filter_map(|b| s("POSIX", &format!("POSIX_SIZE_READ_{b}")))
                .sum();
            let small_writes: f64 = SMALL_BINS
                .iter()
                .filter_map(|b| s("POSIX", &format!("POSIX_SIZE_WRITE_{b}")))
                .sum();
            if reads > 0.0 {
                set(POSIX_SMALL_READ_FRACTION, (small_reads / reads).min(1.0));
                set(
                    POSIX_SEQ_READ_FRACTION,
                    (s("POSIX", "POSIX_SEQ_READS").unwrap_or(0.0) / reads).min(1.0),
                );
            }
            if writes > 0.0 {
                set(POSIX_SMALL_WRITE_FRACTION, (small_writes / writes).min(1.0));
                set(
                    POSIX_SEQ_WRITE_FRACTION,
                    (s("POSIX", "POSIX_SEQ_WRITES").unwrap_or(0.0) / writes).min(1.0),
                );
            }
            if reads + writes > 0.0 {
                set(
                    POSIX_MISALIGNED_FRACTION,
                    (s("POSIX", "POSIX_FILE_NOT_ALIGNED").unwrap_or(0.0) / (reads + writes))
                        .min(1.0),
                );
            }
            let align = if self.alignment > 0.0 {
                self.alignment
            } else {
                1048576.0
            };
            if self.max_read_size > 0.0 {
                set(
                    POSIX_READ_ALIGN_MISMATCH,
                    ((self.max_read_size as i64 % align as i64) != 0) as u8 as f64,
                );
            }
            if self.max_write_size > 0.0 {
                set(
                    POSIX_WRITE_ALIGN_MISMATCH,
                    ((self.max_write_size as i64 % align as i64) != 0) as u8 as f64,
                );
            }
            if let (Some(n), Some(r)) = (self.nprocs, self.runtime) {
                if n > 0.0 && r > 0.0 {
                    let meta = s("POSIX", "POSIX_F_META_TIME").unwrap_or(0.0);
                    set(POSIX_META_FRACTION, (meta / (n * r)).min(1.0));
                }
            }
            set(POSIX_SHARED_DATA, (self.shared_data_rows > 0) as u8 as f64);
            let mut reuse: f64 = 0.0;
            for (rec, bytes) in &self.per_record_read_bytes {
                if let Some(range) = self.per_record_read_range.get(rec) {
                    if *range > 0.0 {
                        reuse = reuse.max(bytes / range);
                    }
                }
            }
            if reuse > 0.0 {
                set(POSIX_READ_REUSE, reuse);
            }
            if self.per_rank_bytes.len() >= 2 {
                let vals: Vec<f64> = self.per_rank_bytes.values().copied().collect();
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                if mean > 0.0 {
                    let var =
                        vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
                    set(POSIX_RANK_CV, var.sqrt() / mean);
                }
            }
            let fr = s("POSIX", "POSIX_FASTEST_RANK_BYTES").unwrap_or(0.0);
            let sr = s("POSIX", "POSIX_SLOWEST_RANK_BYTES").unwrap_or(0.0);
            if fr > 0.0 && sr > 0.0 {
                set(POSIX_RANK_RATIO, fr / sr);
            }
            let stdio_read = s("STDIO", "STDIO_BYTES_READ").unwrap_or(0.0);
            let stdio_written = s("STDIO", "STDIO_BYTES_WRITTEN").unwrap_or(0.0);
            set(
                TOTAL_BYTES,
                bytes_read + bytes_written + stdio_read + stdio_written,
            );
        }
        if mpiio_present {
            set(
                MPIIO_INDEP_READS,
                s("MPIIO", "MPIIO_INDEP_READS").unwrap_or(0.0),
            );
            set(
                MPIIO_COLL_READS,
                s("MPIIO", "MPIIO_COLL_READS").unwrap_or(0.0),
            );
            set(
                MPIIO_INDEP_WRITES,
                s("MPIIO", "MPIIO_INDEP_WRITES").unwrap_or(0.0),
            );
            set(
                MPIIO_COLL_WRITES,
                s("MPIIO", "MPIIO_COLL_WRITES").unwrap_or(0.0),
            );
        }
        if stdio_present {
            let sr = s("STDIO", "STDIO_BYTES_READ").unwrap_or(0.0);
            let sw = s("STDIO", "STDIO_BYTES_WRITTEN").unwrap_or(0.0);
            set(STDIO_BYTES_READ, sr);
            set(STDIO_BYTES_WRITTEN, sw);
            let pr = s("POSIX", "POSIX_BYTES_READ").unwrap_or(0.0);
            let pw = s("POSIX", "POSIX_BYTES_WRITTEN").unwrap_or(0.0);
            if sr + pr > 0.0 {
                set(STDIO_READ_FRACTION, sr / (sr + pr));
            }
            if sw + pw > 0.0 {
                set(STDIO_WRITE_FRACTION, sw / (sw + pw));
            }
        }
        if lustre_present {
            if !self.stripe_widths.is_empty() {
                set(
                    LUSTRE_STRIPE_WIDTH,
                    self.stripe_widths.iter().sum::<f64>() / self.stripe_widths.len() as f64,
                );
            }
            if !self.stripe_sizes.is_empty() {
                set(
                    LUSTRE_STRIPE_SIZE,
                    self.stripe_sizes.iter().sum::<f64>() / self.stripe_sizes.len() as f64,
                );
            }
            if let Some(c) = s("LUSTRE", "LUSTRE_OSTS") {
                // Summed over records; divide back by file count for the max.
                let files = self.stripe_widths.len().max(1) as f64;
                set(LUSTRE_OST_COUNT, c / files);
            }
            set(LUSTRE_OSTS_USED, self.ost_ids.len() as f64);
        }
        ev.raw_keys.extend(raw_keys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn structured_evidence_parsed() {
        let ev = Evidence::from_lines(&lines(&[
            "EVIDENCE posix.small_write_fraction=0.95",
            "CONTEXT nprocs=16 runtime=300",
            "REFERENCE claim=small_io_aggregation cite=[The Cost of Small Requests, SC 2020]",
        ]));
        assert_eq!(ev.get("posix.small_write_fraction"), Some(0.95));
        assert_eq!(ev.get(keys::NPROCS), Some(16.0));
        assert!(ev.is_grounded("small_io_aggregation"));
        assert_eq!(ev.citations_for("small_io_aggregation").len(), 1);
    }

    #[test]
    fn raw_rows_derive_fractions() {
        let ev = Evidence::from_lines(&lines(&[
            "# nprocs: 8",
            "# run time: 100.00",
            "POSIX\t-1\t1\tPOSIX_READS\t100\t/f\t/scratch\tlustre",
            "POSIX\t-1\t1\tPOSIX_WRITES\t200\t/f\t/scratch\tlustre",
            "POSIX\t-1\t1\tPOSIX_SIZE_READ_0_100\t80\t/f\t/scratch\tlustre",
            "POSIX\t-1\t1\tPOSIX_SIZE_READ_1M_4M\t20\t/f\t/scratch\tlustre",
            "POSIX\t-1\t1\tPOSIX_SEQ_WRITES\t190\t/f\t/scratch\tlustre",
            "POSIX\t-1\t1\tPOSIX_F_META_TIME\t80.0\t/f\t/scratch\tlustre",
            "POSIX\t-1\t1\tPOSIX_BYTES_READ\t1000\t/f\t/scratch\tlustre",
            "LUSTRE\t-1\t1\tLUSTRE_STRIPE_WIDTH\t1\t/f\t/scratch\tlustre",
            "LUSTRE\t-1\t1\tLUSTRE_OSTS\t64\t/f\t/scratch\tlustre",
            "LUSTRE\t-1\t1\tLUSTRE_OST_ID_0\t0\t/f\t/scratch\tlustre",
        ]));
        assert!((ev.get(keys::POSIX_SMALL_READ_FRACTION).unwrap() - 0.8).abs() < 1e-9);
        assert!((ev.get(keys::POSIX_SEQ_WRITE_FRACTION).unwrap() - 0.95).abs() < 1e-9);
        assert!((ev.get(keys::POSIX_META_FRACTION).unwrap() - 0.1).abs() < 1e-9);
        assert_eq!(ev.get(keys::LUSTRE_STRIPE_WIDTH), Some(1.0));
        assert_eq!(ev.get(keys::LUSTRE_OST_COUNT), Some(64.0));
        assert_eq!(ev.get(keys::MPIIO_PRESENT), Some(0.0));
        assert!(ev.flag(keys::POSIX_SHARED_DATA));
    }

    #[test]
    fn truncated_mpiio_rows_mean_module_invisible() {
        // Same trace, but all MPIIO rows were lost to attention: the model
        // cannot know MPI-IO was used.
        let ev = Evidence::from_lines(&lines(&[
            "# nprocs: 8",
            "POSIX\t-1\t1\tPOSIX_READS\t100\t/f\t/scratch\tlustre",
        ]));
        assert_eq!(ev.get(keys::MPIIO_PRESENT), Some(0.0));
        let ev2 = Evidence::from_lines(&lines(&[
            "# nprocs: 8",
            "POSIX\t-1\t1\tPOSIX_READS\t100\t/f\t/scratch\tlustre",
            "MPIIO\t-1\t1\tMPIIO_INDEP_READS\t100\t/f\t/scratch\tlustre",
        ]));
        assert_eq!(ev2.get(keys::MPIIO_PRESENT), Some(1.0));
        assert_eq!(ev2.get(keys::MPIIO_INDEP_READS), Some(100.0));
    }

    #[test]
    fn reuse_needs_both_rows() {
        let with_range = Evidence::from_lines(&lines(&[
            "# nprocs: 1",
            "POSIX\t0\t1\tPOSIX_BYTES_READ\t1000\t/f\t/\text4",
            "POSIX\t0\t1\tPOSIX_MAX_BYTE_READ\t199\t/f\t/\text4",
        ]));
        assert!((with_range.get(keys::POSIX_READ_REUSE).unwrap() - 5.0).abs() < 1e-9);
        let without = Evidence::from_lines(&lines(&[
            "# nprocs: 1",
            "POSIX\t0\t1\tPOSIX_BYTES_READ\t1000\t/f\t/\text4",
        ]));
        assert!(without.get(keys::POSIX_READ_REUSE).is_none());
    }

    #[test]
    fn structured_evidence_wins_over_raw() {
        let ev = Evidence::from_lines(&lines(&[
            "EVIDENCE posix.reads=42",
            "POSIX\t0\t1\tPOSIX_READS\t100\t/f\t/\text4",
            "# nprocs: 4",
        ]));
        assert_eq!(ev.get(keys::POSIX_READS), Some(42.0));
    }

    #[test]
    fn garbage_lines_ignored() {
        let ev = Evidence::from_lines(&lines(&[
            "hello world",
            "EVIDENCE broken",
            "POSIX\tbad\trow",
            "REFERENCE cite=[no claim]",
        ]));
        assert!(ev.values.is_empty());
        assert!(ev.references.is_empty());
    }
}
