//! Textual quality features of a diagnosis report.
//!
//! Used by the rank task (LLM-as-judge) to score Utility and
//! Interpretability, mirroring how a capable model skims for structure,
//! specificity, recommendations, and citations.

use tracebench::IssueLabel;

/// Extracted surface features of a report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualityFeatures {
    /// Word count.
    pub words: usize,
    /// Number of distinct TraceBench issues mentioned by display name.
    pub issues_mentioned: usize,
    /// Lines offering recommendations / fixes.
    pub recommendations: usize,
    /// Bracketed citations.
    pub citations: usize,
    /// Numeric tokens (sizes, counts, percentages) — specificity.
    pub numbers: usize,
    /// Structural elements (headers, bullets).
    pub structure_marks: usize,
    /// Code snippets / commands.
    pub code_snippets: usize,
    /// Inline evidence sentences (`(data: ...)`) tying claims to the trace.
    pub data_sentences: usize,
}

/// Extract features from a report text.
pub fn features(text: &str) -> QualityFeatures {
    let lower = text.to_lowercase();
    let mut f = QualityFeatures {
        words: text.split_whitespace().count(),
        ..Default::default()
    };
    for label in IssueLabel::ALL {
        if lower.contains(&label.display_name().to_lowercase()) {
            f.issues_mentioned += 1;
        }
    }
    for line in text.lines() {
        let t = line.trim_start();
        if t.starts_with('-') || t.starts_with('*') || t.starts_with('#') || t.starts_with("Issue:")
        {
            f.structure_marks += 1;
        }
        let tl = t.to_lowercase();
        if tl.contains("recommendation") || tl.contains("suggest") || tl.contains("consider ") {
            f.recommendations += 1;
        }
        if t.contains("lfs setstripe") || t.contains("MPI_File_") || t.contains("romio_") {
            f.code_snippets += 1;
        }
    }
    f.citations = text.matches("* [").count()
        + text.matches("Reference: [").count()
        + text.matches("REF [").count();
    f.numbers = text
        .split_whitespace()
        .filter(|w| {
            w.chars()
                .next()
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false)
        })
        .count();
    f.data_sentences = text.matches("(data:").count();
    f
}

/// Words spent per named finding; padding simple findings with prose makes
/// reports harder to act on ("too many details in basic cases").
fn conciseness(f: &QualityFeatures) -> f64 {
    let wpi = f.words as f64 / f.issues_mentioned.max(1) as f64;
    if wpi <= 70.0 {
        1.0
    } else {
        (1.0 - (wpi - 70.0) / 150.0).max(0.2)
    }
}

/// Utility score in [0, 1]: how actionable and informative the report is.
pub fn utility_score(f: &QualityFeatures) -> f64 {
    let recs = (f.recommendations as f64 / 6.0).min(1.0);
    let cites = (f.citations as f64 / 6.0).min(1.0);
    let nums = (f.numbers as f64 / 25.0).min(1.0);
    let issues = (f.issues_mentioned as f64 / 6.0).min(1.0);
    let code = (f.code_snippets as f64 / 2.0).min(1.0);
    0.28 * recs + 0.12 * cites + 0.18 * nums + 0.22 * issues + 0.10 * code + 0.10 * conciseness(f)
}

/// Interpretability score in [0, 1].
///
/// Components mirror what a judge LLM rewards when reading for a domain
/// scientist: visual structure, a length sweet spot (~40–700 words; walls
/// of text overwhelm), *inline evidence* tying each claim to the
/// application's own numbers (`(data: ...)` sentences — the
/// personalisation the paper contrasts with Drishti's fixed messages), and
/// breadth of clearly named findings.
pub fn interpretability_score(f: &QualityFeatures) -> f64 {
    let structure = ((f.structure_marks as f64) / 8.0).min(1.0);
    let w = f.words as f64;
    let length = if w < 40.0 {
        w / 40.0 * 0.5
    } else if w <= 700.0 {
        1.0
    } else {
        (1.0 - (w - 700.0) / 1400.0).max(0.2)
    };
    let evidence = if f.issues_mentioned == 0 {
        0.0
    } else {
        (f.data_sentences as f64 / f.issues_mentioned as f64).min(1.0)
    };
    let breadth = (f.issues_mentioned as f64 / 6.0).min(1.0);
    let specificity = (f.numbers as f64 / 20.0).min(1.0);
    // Cited sources increase trust and help readers follow up (the
    // transparency argument of the paper's RAG design).
    let refs = (f.citations as f64 / 4.0).min(1.0);
    0.18 * structure
        + 0.22 * length
        + 0.15 * evidence
        + 0.15 * breadth
        + 0.08 * specificity
        + 0.12 * conciseness(f)
        + 0.10 * refs
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Diagnosis
Issue: Small Write I/O Requests
  95% of the 25600 writes are below 1 MB.
  Recommendation: aggregate writes into 4 MB buffers.
  Reference: [The Cost of Small Requests, SC 2020]
Issue: Server Load Imbalance
  stripe count 1; consider `lfs setstripe -c 8`.
";

    #[test]
    fn features_counted() {
        let f = features(SAMPLE);
        assert_eq!(f.issues_mentioned, 2);
        assert!(f.recommendations >= 2);
        assert_eq!(f.citations, 1);
        assert!(f.numbers >= 4);
        assert!(f.structure_marks >= 3);
        assert_eq!(f.code_snippets, 1);
    }

    #[test]
    fn utility_increases_with_recommendations() {
        let low = features("Nothing to see.");
        let high = features(SAMPLE);
        assert!(utility_score(&high) > utility_score(&low));
    }

    #[test]
    fn interpretability_penalises_walls_of_text() {
        let terse = features(SAMPLE);
        let bloated_text = format!(
            "# D\n{}",
            "filler word soup sentence goes on and on ".repeat(80)
        );
        let bloated = features(&bloated_text);
        assert!(interpretability_score(&terse) > interpretability_score(&bloated));
    }

    #[test]
    fn scores_bounded() {
        for text in ["", SAMPLE, "word"] {
            let f = features(text);
            assert!((0.0..=1.0).contains(&utility_score(&f)));
            assert!((0.0..=1.0).contains(&interpretability_score(&f)));
        }
    }
}
