//! Task executors: the simulated model's "reasoning".
//!
//! Prompts are structured: a `### TASK: <name>` line selects the executor
//! and `## SECTION` headers delimit inputs. Executors operate strictly on
//! *attended* lines — anything the attention model dropped is invisible —
//! and draw every stochastic decision from the per-request RNG, so behaviour
//! is deterministic per (model, prompt, salt).

use crate::evidence::{keys as K, Evidence};
use crate::iokb;
use crate::profile::ModelProfile;
use crate::quality;
use crate::rng::noise;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use tracebench::IssueLabel;

/// A parsed prompt section: header line remainder plus body lines.
#[derive(Debug, Clone)]
pub struct Section {
    /// Header text after `## ` (e.g. `SUMMARY 1 I/O Size`).
    pub header: String,
    /// Body lines until the next section.
    pub body: Vec<String>,
}

/// Parse the task name (`### TASK: x`) from attended lines.
pub fn parse_task(lines: &[String]) -> Option<String> {
    lines.iter().find_map(|l| {
        l.trim()
            .strip_prefix("### TASK:")
            .map(|t| t.trim().to_lowercase())
    })
}

/// Split attended lines into sections.
pub fn parse_sections(lines: &[String]) -> Vec<Section> {
    let mut out: Vec<Section> = Vec::new();
    for line in lines {
        let t = line.trim_end();
        if let Some(h) = t.trim_start().strip_prefix("## ") {
            out.push(Section {
                header: h.trim().to_string(),
                body: Vec::new(),
            });
        } else if let Some(cur) = out.last_mut() {
            cur.body.push(t.to_string());
        }
    }
    out
}

fn section<'a>(sections: &'a [Section], name: &str) -> Option<&'a Section> {
    sections
        .iter()
        .find(|s| s.header.to_uppercase().starts_with(&name.to_uppercase()))
}

// ---------------------------------------------------------------------------
// diagnose
// ---------------------------------------------------------------------------

/// Run the diagnosis task over attended lines.
///
/// `load` is the input-tokens / context-budget ratio (clamped to [0, 1]):
/// heavier prompts make the model both more error-prone at deriving
/// aggregates from raw counter rows and more hallucination-prone.
pub fn diagnose(
    profile: &ModelProfile,
    lines: &[String],
    load: f64,
    rng: &mut ChaCha8Rng,
) -> String {
    let mut ev = Evidence::from_lines(lines);
    // Aggregates the model had to compute itself from raw rows are lost with
    // a probability that grows with prompt load and shrinks with capability
    // (the paper's motivation for pre-computed summary extraction functions:
    // LLMs are unreliable at metadata retrieval over long raw traces).
    if !ev.raw_keys.is_empty() {
        let p_drop = (0.03 + (1.0 - profile.capability) * 0.22 + 0.24 * load.clamp(0.0, 1.0))
            .clamp(0.0, 0.85);
        let raw: Vec<String> = ev.raw_keys.iter().cloned().collect();
        for key in raw {
            if rng.gen_bool(p_drop) {
                ev.values.remove(&key);
            }
        }
    }
    let mut out = String::new();
    out.push_str("I/O Performance Diagnosis\n\n");

    // Misconceptions first: when triggered and ungrounded, they claim the
    // situation is fine and suppress the corresponding (correct) finding.
    let mut suppressed: Vec<IssueLabel> = Vec::new();
    let mut observations: Vec<&'static str> = Vec::new();
    for m in iokb::misconceptions() {
        if (m.trigger)(&ev)
            && !ev.is_grounded(m.corrected_by)
            && rng.gen_bool(profile.misconception_rate)
        {
            suppressed.push(m.suppresses);
            observations.push(m.text);
        }
    }

    let mut found: Vec<IssueLabel> = Vec::new();
    for rule in iokb::rules() {
        if suppressed.contains(&rule.issue) {
            continue;
        }
        let Some(data) = (rule.check)(&ev) else {
            continue;
        };
        let grounded = ev.is_grounded(rule.claim);
        let effective = rule.difficulty - if grounded { 0.18 } else { 0.0 };
        let roll = profile.capability + noise(rng, 0.12);
        if roll < effective {
            continue; // the model fails to connect the dots
        }
        found.push(rule.issue);
        out.push_str(&format!("Issue: {}\n", rule.issue.display_name()));
        out.push_str(&format!("  {} {}\n", rule.explanation, data));
        if profile.verbosity > 1.4 {
            out.push_str(
                "  In the context of this application's overall access pattern this \
                 behaviour compounds with the other characteristics noted below and is \
                 worth addressing early in the optimisation journey.\n",
            );
        }
        out.push_str(&format!("  Recommendation: {}\n", rule.recommendation));
        if grounded {
            for cite in ev.citations_for(rule.claim).into_iter().take(2) {
                out.push_str(&format!("  Reference: {cite}\n"));
            }
        }
        out.push('\n');
    }

    // Hallucination: fabricate one plausible but unsupported issue. Heavier
    // prompts hallucinate more; grounded prompts (with references) much less.
    let grounding_damp = if ev.references.is_empty() { 1.0 } else { 0.3 };
    let p_halluc =
        (profile.hallucination_rate * (0.25 + 0.75 * load.clamp(0.0, 1.0)) * grounding_damp)
            .clamp(0.0, 1.0);
    if rng.gen_bool(p_halluc) {
        let unsupported: Vec<IssueLabel> = IssueLabel::ALL
            .into_iter()
            .filter(|l| !found.contains(l) && !suppressed.contains(l))
            .collect();
        if let Some(l) = unsupported.choose(rng) {
            out.push_str(&format!("Issue: {}\n", l.display_name()));
            out.push_str(
                "  The overall timing profile suggests this behaviour is likely present \
                 and contributing to the slowdown.\n",
            );
            out.push_str("  Recommendation: investigate and restructure the affected path.\n\n");
        }
    }

    if found.is_empty() && out.lines().count() <= 2 {
        out.push_str("No significant I/O performance issues identified from the available data.\n");
    }
    if !observations.is_empty() {
        out.push_str("Observations:\n");
        for o in observations {
            out.push_str(&format!("  {o}\n"));
        }
    }
    // Ungrounded models pad with the high-level, generic advice the paper
    // shows plain LLMs producing (Fig. 1): plausible, broadly applicable,
    // not tied to this application's data.
    if ev.references.is_empty() && !found.is_empty() {
        out.push_str("General suggestions:\n");
        out.push_str(
            "  Recommendation: profile the application further to confirm the dominant cost.\n",
        );
        out.push_str("  Recommendation: consult your facility's I/O tuning documentation for system-specific settings.\n");
        out.push_str("  Recommendation: consider graphically plotting the time series of operations to uncover phases.\n");
    }
    out
}

// ---------------------------------------------------------------------------
// transform (JSON summary fragment → natural language)
// ---------------------------------------------------------------------------

/// Human-readable rendering of a size-bin key (`100K_1M` → `100 KB to 1 MB`).
fn bin_range(bin: &str) -> String {
    let pretty = |s: &str| -> String {
        match s {
            "0" => "0 B".to_string(),
            "100" => "100 B".to_string(),
            "1K" => "1 KB".to_string(),
            "10K" => "10 KB".to_string(),
            "100K" => "100 KB".to_string(),
            "1M" => "1 MB".to_string(),
            "4M" => "4 MB".to_string(),
            "10M" => "10 MB".to_string(),
            "100M" => "100 MB".to_string(),
            "1G" => "1 GB".to_string(),
            other => other.to_string(),
        }
    };
    if bin.ends_with("_PLUS") {
        return format!("above {}", pretty(bin.trim_end_matches("_PLUS")));
    }
    match bin.split_once('_') {
        Some((lo, hi)) => format!("{} to {}", pretty(lo), pretty(hi)),
        None => bin.to_string(),
    }
}

/// Run the JSON→NL transformation task.
pub fn transform(profile: &ModelProfile, lines: &[String]) -> String {
    let sections = parse_sections(lines);
    let json_text = section(&sections, "JSON")
        .map(|s| s.body.join("\n"))
        .unwrap_or_default();
    let context = section(&sections, "CONTEXT")
        .map(|s| s.body.join(" "))
        .unwrap_or_default();

    let mut out = String::new();
    if profile.verbosity > 1.2 && !context.trim().is_empty() {
        out.push_str(&format!(
            "Considering the application context ({}), the summary can be interpreted as \
             follows. ",
            context.trim()
        ));
    }
    let Ok(value) = serde_json::from_str::<serde_json::Value>(&json_text) else {
        out.push_str("The summary fragment could not be interpreted.");
        return out;
    };
    render_value(&mut out, "", &value);
    out
}

fn render_value(out: &mut String, key_path: &str, v: &serde_json::Value) {
    match v {
        serde_json::Value::Object(map) => {
            let is_histogram = !map.is_empty()
                && map.keys().all(|k| {
                    k.contains('_')
                        && k.chars()
                            .next()
                            .map(|c| c.is_ascii_digit())
                            .unwrap_or(false)
                });
            if is_histogram {
                for (bin, frac) in map {
                    let f = frac.as_f64().unwrap_or(0.0);
                    let what = if key_path.contains("read") {
                        "read operations"
                    } else if key_path.contains("write") {
                        "write operations"
                    } else {
                        "operations"
                    };
                    out.push_str(&format!(
                        "The value of {:.2} in the {} bin indicates that {:.0}% of the {} \
                         fall within the {} range. ",
                        f,
                        bin,
                        f * 100.0,
                        what,
                        bin_range(bin)
                    ));
                }
            } else {
                for (k, val) in map {
                    let path = if key_path.is_empty() {
                        k.clone()
                    } else {
                        format!("{key_path}.{k}")
                    };
                    render_value(out, &path, val);
                }
            }
        }
        serde_json::Value::Number(n) => {
            let name = key_path.replace(['_', '.'], " ");
            out.push_str(&format!("The {} is {}. ", name.trim(), n));
        }
        serde_json::Value::String(s) => {
            let name = key_path.replace(['_', '.'], " ");
            out.push_str(&format!("The {} is {}. ", name.trim(), s));
        }
        serde_json::Value::Bool(b) => {
            let name = key_path.replace(['_', '.'], " ");
            out.push_str(&format!(
                "{} {}. ",
                name.trim(),
                if *b { "is present" } else { "is absent" }
            ));
        }
        serde_json::Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                render_value(out, &format!("{key_path}[{i}]"), item);
            }
        }
        serde_json::Value::Null => {}
    }
}

// ---------------------------------------------------------------------------
// merge
// ---------------------------------------------------------------------------

/// One key point parsed from a summary block.
#[derive(Debug, Clone)]
struct Point {
    key: String,
    line: String,
}

/// Run the merge task: combine `## SUMMARY i <title>` blocks into one.
///
/// Retention is where models differ: merging two documents is reliable
/// (`merge_fidelity`), but every additional simultaneous document costs
/// retention, and middle documents suffer extra positional loss — the
/// effect the paper's tree-based merge is designed around (Fig. 6).
pub fn merge(profile: &ModelProfile, lines: &[String], rng: &mut ChaCha8Rng) -> String {
    let sections = parse_sections(lines);
    let summaries: Vec<&Section> = sections
        .iter()
        .filter(|s| s.header.to_uppercase().starts_with("SUMMARY"))
        .collect();
    let n = summaries.len();
    let mut out = String::from("## MERGED SUMMARY\n");
    if n == 0 {
        return out;
    }

    let base = (profile.merge_fidelity - 0.13 * (n.saturating_sub(2)) as f64).clamp(0.08, 1.0);
    let mut seen_keys: Vec<String> = Vec::new();
    for (i, s) in summaries.iter().enumerate() {
        let middle = n > 2 && i != 0 && i != n - 1;
        let p_keep = if middle { base * 0.75 } else { base };
        for line in &s.body {
            let t = line.trim();
            if !t.starts_with("- POINT[") {
                continue;
            }
            let key = t
                .strip_prefix("- POINT[")
                .and_then(|r| r.split(']').next())
                .unwrap_or("")
                .to_string();
            let point = Point {
                key,
                line: t.to_string(),
            };
            if seen_keys.contains(&point.key) {
                continue; // redundancy removed (that part models do reliably)
            }
            if !rng.gen_bool(p_keep.clamp(0.0, 1.0)) {
                continue; // lost in the merge
            }
            // References ride along with their point but can be dropped
            // individually under load.
            let rendered = if n > 2 && rng.gen_bool(0.35) {
                strip_refs(&point.line)
            } else {
                point.line.clone()
            };
            seen_keys.push(point.key.clone());
            out.push_str(&rendered);
            out.push('\n');
        }
    }
    out
}

fn strip_refs(line: &str) -> String {
    match line.split_once(";; REFS:") {
        Some((head, _)) => head.trim_end().to_string(),
        None => line.to_string(),
    }
}

// ---------------------------------------------------------------------------
// filter (self-reflection relevance judgement)
// ---------------------------------------------------------------------------

/// Token-set cosine similarity between two texts.
fn overlap(a: &str, b: &str) -> f64 {
    use std::collections::BTreeSet;
    let ta: BTreeSet<String> = a
        .to_lowercase()
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| t.len() > 2)
        .map(String::from)
        .collect();
    let tb: BTreeSet<String> = b
        .to_lowercase()
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| t.len() > 2)
        .map(String::from)
        .collect();
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    inter / ((ta.len() as f64).sqrt() * (tb.len() as f64).sqrt())
}

/// Run the relevance-filter task: is SOURCE useful for FRAGMENT?
pub fn filter(profile: &ModelProfile, lines: &[String], rng: &mut ChaCha8Rng) -> String {
    let sections = parse_sections(lines);
    let fragment = section(&sections, "FRAGMENT")
        .map(|s| s.body.join(" "))
        .unwrap_or_default();
    let source = section(&sections, "SOURCE")
        .map(|s| s.body.join(" "))
        .unwrap_or_default();
    let sim = overlap(&fragment, &source);
    // Weaker models judge relevance more noisily.
    let amp = 0.02 + (1.0 - profile.capability) * 0.08;
    let score = sim + noise(rng, amp);
    if score > 0.12 {
        format!("RELEVANT (similarity signal {score:.2}): the source discusses concepts present in the fragment.")
    } else {
        format!("IRRELEVANT (similarity signal {score:.2}): the source does not bear on the fragment's behaviour.")
    }
}

// ---------------------------------------------------------------------------
// rank (LLM-as-judge)
// ---------------------------------------------------------------------------

/// Run the ranking task over `## CANDIDATE <tag>` blocks.
pub fn rank(profile: &ModelProfile, lines: &[String], rng: &mut ChaCha8Rng) -> String {
    let sections = parse_sections(lines);
    let criterion = section(&sections, "CRITERION")
        .and_then(|s| s.body.first().cloned())
        .unwrap_or_default()
        .split_whitespace()
        .next()
        .unwrap_or("utility")
        .to_lowercase();
    let ground_truth: Vec<IssueLabel> = section(&sections, "GROUND TRUTH")
        .map(|s| {
            let text = s.body.join(" ");
            text.split(';')
                .filter_map(|part| part.trim().parse::<IssueLabel>().ok())
                .collect()
        })
        .unwrap_or_default();
    let format_order: Vec<String> = section(&sections, "FORMAT")
        .and_then(|s| s.body.first().cloned())
        .and_then(|l| l.split_once(':').map(|(_, v)| v.to_string()))
        .map(|v| v.split(',').map(|t| t.trim().to_string()).collect())
        .unwrap_or_default();

    let candidates: Vec<(&Section, String)> = sections
        .iter()
        .filter(|s| s.header.to_uppercase().starts_with("CANDIDATE"))
        .map(|s| {
            let tag = s
                .header
                .split_whitespace()
                .nth(1)
                .unwrap_or("?")
                .to_string();
            (s, tag)
        })
        .collect();
    let n = candidates.len().max(1);

    let mut scored: Vec<(String, f64)> = Vec::new();
    for (pos, (s, tag)) in candidates.iter().enumerate() {
        let text = s.body.join("\n");
        let f = quality::features(&text);
        let base = match criterion.as_str() {
            "accuracy" => {
                let found = crate::report::extract_issues(&text);
                let gt: std::collections::BTreeSet<IssueLabel> =
                    ground_truth.iter().copied().collect();
                if gt.is_empty() {
                    0.5
                } else {
                    let hit = found.intersection(&gt).count() as f64;
                    let recall = hit / gt.len() as f64;
                    let fp = found.difference(&gt).count() as f64;
                    (recall - 0.15 * fp).max(0.0)
                }
            }
            "interpretability" => quality::interpretability_score(&f),
            _ => quality::utility_score(&f),
        };
        // Positional bias: primacy preference over prompt order.
        let primacy = if n > 1 {
            1.0 - 2.0 * pos as f64 / (n - 1) as f64
        } else {
            0.0
        };
        let mut score = base + profile.position_bias * 0.12 * primacy;
        // Rank-assignment-order bias: the first slot in the response format.
        if format_order.first().map(|t| t == tag).unwrap_or(false) {
            score += profile.position_bias * 0.06;
        }
        // Name bias (defeated by anonymisation).
        let tl = tag.to_lowercase();
        if tl.contains("drishti") {
            score += 0.06;
        } else if tl.contains("ion") {
            score -= 0.04;
        } else if tl.contains("ioagent") {
            score += 0.03;
        }
        // Subjective criteria are judged more noisily than accuracy, where
        // the ground truth anchors the comparison.
        let noise_amp = match criterion.as_str() {
            "accuracy" => 0.10,
            "interpretability" => 0.20,
            _ => 0.15,
        };
        score += noise(rng, noise_amp);
        scored.push((tag.clone(), score));
    }
    // NaN-safe ordering: a scoring bug must degrade the ranking, not panic
    // a judge permutation mid-evaluation (same class as the vecindex sort).
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let ranking: Vec<&str> = scored.iter().map(|(t, _)| t.as_str()).collect();
    format!(
        "RANKING: {}\nExplanation: candidates were compared on {criterion}; the top-ranked \
         response best satisfied the criterion with the clearest supporting evidence.\n",
        ranking.join(" > ")
    )
}

// ---------------------------------------------------------------------------
// chat (post-diagnosis interaction)
// ---------------------------------------------------------------------------

/// Run the chat task: answer a follow-up question using the diagnosis
/// context and its references.
pub fn chat(profile: &ModelProfile, lines: &[String], _rng: &mut ChaCha8Rng) -> String {
    let sections = parse_sections(lines);
    let ev = Evidence::from_lines(lines);
    let question = section(&sections, "QUESTION")
        .map(|s| s.body.join(" "))
        .unwrap_or_default();
    let context = section(&sections, "CONTEXT")
        .map(|s| s.body.join("\n"))
        .unwrap_or_default();
    let q = question.to_lowercase();

    let mut out = String::new();
    let cite = |out: &mut String, needle: &str| {
        for line in context.lines() {
            if line.contains('[') && line.to_lowercase().contains(needle) {
                if let Some(start) = line.find('[') {
                    if let Some(end) = line[start..].find(']') {
                        out.push_str(&format!("Reference: {}\n", &line[start..start + end + 1]));
                        return;
                    }
                }
            }
        }
    };

    if q.contains("stripe") || q.contains("striping") || q.contains("lustre") {
        let transfer = ev.get_or("dominant_transfer", 4.0 * 1024.0 * 1024.0);
        let mb = (transfer / (1024.0 * 1024.0)).round().max(1.0);
        let nprocs = ev.get_or(K::NPROCS, 8.0);
        let count = nprocs.clamp(4.0, 16.0) as i64;
        out.push_str(&format!(
            "To fix the suboptimal stripe settings, set the stripe size to match your \
             dominant {mb:.0} MB transfer size and widen the stripe count so multiple \
             OSTs share the load. On the output directory (new files inherit the layout):\n\n\
             \tlfs setstripe -S {mb:.0}M -c {count} /path/to/output\n\n\
             Re-create the files after changing the layout — striping is fixed at file \
             creation. With {nprocs:.0} ranks, a stripe count of {count} lets writes \
             proceed in parallel across servers instead of serialising on one OST.\n"
        ));
        cite(&mut out, "strip");
    } else if q.contains("collective") || q.contains("mpi") {
        out.push_str(
            "Switch the shared-file path to collective operations: replace \
             MPI_File_write/read with MPI_File_write_all/read_all, and enable collective \
             buffering via hints (romio_cb_write=enable, cb_buffer_size a multiple of the \
             stripe size). Aggregator ranks will coalesce the small independent requests \
             into large aligned transfers.\n",
        );
        cite(&mut out, "collective");
    } else if q.contains("small") || q.contains("aggregat") || q.contains("buffer") {
        out.push_str(
            "Aggregate before you write: buffer records into multi-megabyte segments \
             (≥ 4 MB) and flush them with one call. If restructuring is costly, delegate \
             aggregation to collective MPI-IO or to HDF5 with an appropriately sized chunk \
             cache.\n",
        );
        cite(&mut out, "small");
    } else if q.contains("align") {
        out.push_str(
            "Pad each record to a multiple of the stripe size and start each rank's \
             region on a stripe boundary; this removes read-modify-write cycles and \
             extent-lock conflicts.\n",
        );
        cite(&mut out, "align");
    } else if q.contains("metadata") || q.contains("open") || q.contains("stat") {
        out.push_str(
            "Reduce metadata pressure: open files once and reuse handles, batch stat \
             calls, and consolidate many small files into fewer container files (HDF5 \
             groups or tar-style archives).\n",
        );
        cite(&mut out, "metadata");
    } else if q.contains("random") {
        out.push_str(
            "Sort or batch requests by offset before issuing them, or stage the dataset \
             into node-local storage where random access is cheap.\n",
        );
        cite(&mut out, "sequent");
    } else {
        out.push_str(
            "Based on the diagnosis above, prioritise the highest-impact issue first and \
             re-collect a Darshan trace after each change to confirm the effect. Could \
             you point me at the specific issue you would like help fixing?\n",
        );
    }
    if profile.verbosity > 1.5 {
        out.push_str(
            "If you share the updated trace after applying this change, I can verify the \
             issue is resolved and look for the next bottleneck.\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_or_panic;
    use crate::rng::rng_for;

    fn lines(s: &str) -> Vec<String> {
        s.lines().map(String::from).collect()
    }

    #[test]
    fn task_and_sections_parse() {
        let l = lines(
            "### TASK: merge\n## SUMMARY 1 Size\n- POINT[a] x\n## SUMMARY 2 Meta\n- POINT[b] y",
        );
        assert_eq!(parse_task(&l).as_deref(), Some("merge"));
        let s = parse_sections(&l);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].header, "SUMMARY 1 Size");
        assert_eq!(s[1].body, vec!["- POINT[b] y"]);
    }

    #[test]
    fn diagnose_finds_planted_issue_with_capable_model() {
        let p = profile_or_panic("gpt-4o");
        let l = lines(
            "### TASK: diagnose\n\
             EVIDENCE nprocs=16\n\
             EVIDENCE posix.writes=25600\n\
             EVIDENCE posix.small_write_fraction=0.95\n\
             REFERENCE claim=small_io_aggregation cite=[The Cost of Small Requests, SC 2020]",
        );
        let mut rng = rng_for("gpt-4o", "t", 0);
        let outp = diagnose(p, &l, 0.05, &mut rng);
        assert!(outp.contains("Small Write I/O Requests"), "{outp}");
        assert!(outp.contains("Reference: [The Cost of Small Requests, SC 2020]"));
    }

    #[test]
    fn misconception_suppressed_by_grounding() {
        let base = "### TASK: diagnose\n\
                    EVIDENCE nprocs=8\n\
                    EVIDENCE total_bytes=1000000000\n\
                    EVIDENCE lustre.present=1\n\
                    EVIDENCE lustre.stripe_width_mean=1\n\
                    EVIDENCE lustre.osts_used=1\n\
                    EVIDENCE lustre.ost_count=64";
        let grounded = format!(
            "{base}\nREFERENCE claim=stripe_width_parallelism cite=[Striping Decisions, SC 2021]"
        );
        let p = profile_or_panic("gpt-4o");
        // Across many salts, the ungrounded run must sometimes repeat the
        // stripe misconception; the grounded run never does.
        let mut ungrounded_misses = 0;
        for salt in 0..40 {
            let ug = diagnose(p, &lines(base), 0.05, &mut rng_for("gpt-4o", base, salt));
            if ug.contains("optimal for minimizing") {
                ungrounded_misses += 1;
            }
            let g = diagnose(
                p,
                &lines(&grounded),
                0.05,
                &mut rng_for("gpt-4o", &grounded, salt),
            );
            assert!(
                !g.contains("optimal for minimizing"),
                "grounded run repeated misconception"
            );
        }
        assert!(
            ungrounded_misses > 4,
            "misconception never triggered ({ungrounded_misses})"
        );
    }

    #[test]
    fn transform_renders_histogram() {
        let p = profile_or_panic("gpt-4o-mini");
        let l = lines(
            "### TASK: transform\n## CODE\nfn io_size()\n## JSON\n\
             {\"read_histogram\": {\"0_100\": 1.0}}\n## CONTEXT\nnprocs=8 runtime=722",
        );
        let outp = transform(p, &l);
        assert!(outp.contains("100% of the read operations"), "{outp}");
        assert!(outp.contains("0 B to 100 B"));
    }

    #[test]
    fn merge_of_two_preserves_most_points() {
        let p = profile_or_panic("gpt-4o");
        let prompt = "### TASK: merge\n## SUMMARY 1 Size\n- POINT[small_write] writes are small ;; REFS: [A]\n\
                      ## SUMMARY 2 Meta\n- POINT[metadata] meta heavy ;; REFS: [B]";
        let mut kept = 0;
        for salt in 0..30 {
            let outp = merge(p, &lines(prompt), &mut rng_for("gpt-4o", prompt, salt));
            kept += outp.matches("- POINT[").count();
        }
        // 60 possible points; gpt-4o fidelity 0.92 → expect ≥ 48 kept.
        assert!(kept >= 48, "kept {kept}");
    }

    #[test]
    fn flat_merge_of_many_loses_points() {
        let p = profile_or_panic("llama-3-70b");
        let mut prompt = String::from("### TASK: merge\n");
        for i in 0..13 {
            prompt.push_str(&format!(
                "## SUMMARY {i} S{i}\n- POINT[k{i}] point {i} ;; REFS: [R{i}]\n"
            ));
        }
        let mut kept = 0;
        for salt in 0..20 {
            let outp = merge(
                p,
                &lines(&prompt),
                &mut rng_for("llama-3-70b", &prompt, salt),
            );
            kept += outp.matches("- POINT[").count();
        }
        // 260 possible; with fidelity collapsed to ~0.1 expect far below half.
        assert!(kept < 100, "kept {kept}");
    }

    #[test]
    fn merge_dedups_by_key() {
        let p = profile_or_panic("o1-preview");
        let prompt = "### TASK: merge\n## SUMMARY 1 A\n- POINT[x] first\n## SUMMARY 2 B\n- POINT[x] duplicate";
        let outp = merge(p, &lines(prompt), &mut rng_for("o1-preview", prompt, 3));
        assert!(outp.matches("- POINT[x]").count() <= 1);
    }

    #[test]
    fn filter_separates_related_from_unrelated() {
        let p = profile_or_panic("gpt-4o-mini");
        let related = "### TASK: filter\n## FRAGMENT\nmost write operations are small below 1 MB wasting bandwidth\n\
                       ## SOURCE\nsmall write requests below 1 MB waste parallel file system bandwidth aggregate them";
        let unrelated = "### TASK: filter\n## FRAGMENT\nmost write operations are small below 1 MB wasting bandwidth\n\
                         ## SOURCE\nquantum chromodynamics lattice gauge theory convergence tensor contraction";
        let r = filter(p, &lines(related), &mut rng_for("m", related, 0));
        let u = filter(p, &lines(unrelated), &mut rng_for("m", unrelated, 0));
        assert!(r.starts_with("RELEVANT"), "{r}");
        assert!(u.starts_with("IRRELEVANT"), "{u}");
    }

    #[test]
    fn rank_prefers_accurate_candidate_on_accuracy() {
        let p = profile_or_panic("gpt-4o");
        let prompt = "### TASK: rank\n## CRITERION\naccuracy — match to ground truth\n\
                      ## GROUND TRUTH\nSmall Write I/O Requests; Server Load Imbalance\n\
                      ## CANDIDATE Tool-1\nWe found Small Write I/O Requests and Server Load Imbalance here.\n\
                      ## CANDIDATE Tool-2\nEverything looks fine.\n";
        let mut wins = 0;
        for salt in 0..20 {
            let outp = rank(p, &lines(prompt), &mut rng_for("gpt-4o", prompt, salt));
            if outp.contains("RANKING: Tool-1 > Tool-2") {
                wins += 1;
            }
        }
        assert!(wins >= 18, "Tool-1 won only {wins}/20");
    }

    #[test]
    fn rank_shows_positional_bias_on_ties() {
        let p = profile_or_panic("llama-3-70b"); // strongest bias
                                                 // Identical candidates: position decides.
        let prompt = "### TASK: rank\n## CRITERION\nutility\n\
                      ## CANDIDATE Tool-1\nIssue: Small Write I/O Requests\n  Recommendation: aggregate.\n\
                      ## CANDIDATE Tool-2\nIssue: Small Write I/O Requests\n  Recommendation: aggregate.\n";
        let mut first_wins = 0;
        for salt in 0..30 {
            let outp = rank(p, &lines(prompt), &mut rng_for("llama-3-70b", prompt, salt));
            if outp.contains("RANKING: Tool-1 > Tool-2") {
                first_wins += 1;
            }
        }
        assert!(first_wins >= 24, "primacy bias too weak: {first_wins}/30");
    }

    #[test]
    fn chat_answers_stripe_question_with_command() {
        let p = profile_or_panic("gpt-4o");
        let l = lines(
            "### TASK: chat\n## CONTEXT\nIssue: Server Load Imbalance\n  Reference: [Striping Decisions, SC 2021]\n\
             EVIDENCE nprocs=16\nEVIDENCE dominant_transfer=4194304\n## QUESTION\nHow do I fix the stripe settings?",
        );
        let outp = chat(p, &l, &mut rng_for("gpt-4o", "q", 0));
        assert!(outp.contains("lfs setstripe -S 4M"), "{outp}");
        assert!(outp.contains("Reference: [Striping Decisions, SC 2021]"));
    }
}
