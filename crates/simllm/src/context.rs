//! The attention model: finite context with *lost-in-the-middle* loss.
//!
//! Two mechanisms from the long-context literature are reproduced:
//!
//! 1. **Truncation**: input beyond the model's effective budget is cut; the
//!    model keeps the head and tail of the document (the primacy/recency
//!    shape of attention) and only a thin sample of the middle.
//! 2. **Middle degradation**: even inputs that *fit* degrade once they fill
//!    more than half the budget — middle lines are dropped from the model's
//!    working set with a probability that grows with load and with distance
//!    from the edges.
//!
//! The unit of attention is the *line*: structured prompts and Darshan
//! parser output are both line-oriented.

use crate::profile::ModelProfile;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Outcome of pushing a prompt through the attention model.
#[derive(Debug, Clone)]
pub struct Attended {
    /// Lines the model actually "sees", in original order.
    pub lines: Vec<String>,
    /// Total input tokens before attention.
    pub input_tokens: usize,
    /// Whether any content was lost.
    pub truncated: bool,
    /// Fraction of input lines retained.
    pub retention: f64,
}

/// Approximate token count: whitespace-separated words.
pub fn count_tokens(text: &str) -> usize {
    text.split_whitespace().count()
}

/// Apply the attention model of `profile` to `text`.
pub fn attend(profile: &ModelProfile, text: &str, rng: &mut ChaCha8Rng) -> Attended {
    let lines: Vec<&str> = text.lines().collect();
    let token_counts: Vec<usize> = lines.iter().map(|l| count_tokens(l).max(1)).collect();
    let input_tokens: usize = token_counts.iter().sum();
    let budget = profile.context_tokens;

    if input_tokens <= budget / 2 {
        // Comfortable load: everything attended.
        return Attended {
            lines: lines.iter().map(|s| s.to_string()).collect(),
            input_tokens,
            truncated: false,
            retention: 1.0,
        };
    }

    let n = lines.len();
    let mut keep = vec![true; n];

    if input_tokens > budget {
        // Hard truncation: keep ~40% of budget from the head, ~40% from the
        // tail, and sample the middle with the remaining ~20%.
        let head_budget = budget * 2 / 5;
        let tail_budget = budget * 2 / 5;
        let mid_budget = budget - head_budget - tail_budget;

        let mut acc = 0usize;
        let mut head_end = 0usize;
        while head_end < n && acc + token_counts[head_end] <= head_budget {
            acc += token_counts[head_end];
            head_end += 1;
        }
        let mut acc = 0usize;
        let mut tail_start = n;
        while tail_start > head_end && acc + token_counts[tail_start - 1] <= tail_budget {
            acc += token_counts[tail_start - 1];
            tail_start -= 1;
        }
        let middle_tokens: usize = token_counts[head_end..tail_start].iter().sum();
        let sample_p = if middle_tokens == 0 {
            1.0
        } else {
            (mid_budget as f64 / middle_tokens as f64).min(1.0)
        };
        for (i, k) in keep.iter_mut().enumerate() {
            if i >= head_end && i < tail_start {
                *k = rng.gen_bool(sample_p);
            }
        }
    } else {
        // Fits, but heavy: lose middle lines with probability growing with
        // load and centrality.
        let load = input_tokens as f64 / budget as f64; // in (0.5, 1.0]
        let base_drop = (load - 0.5) * 0.9; // up to 0.45 at full budget
        for (i, k) in keep.iter_mut().enumerate() {
            let pos = i as f64 / (n.max(2) - 1) as f64; // 0..1
            let centrality = 1.0 - (2.0 * pos - 1.0).abs(); // 1 at middle
            let p_drop = base_drop * centrality;
            if rng.gen_bool(p_drop.clamp(0.0, 0.95)) {
                *k = false;
            }
        }
    }

    let attended: Vec<String> = lines
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(l, _)| l.to_string())
        .collect();
    let retention = attended.len() as f64 / n.max(1) as f64;
    Attended {
        lines: attended,
        input_tokens,
        truncated: retention < 1.0,
        retention,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_or_panic;
    use crate::rng::rng_for;

    #[test]
    fn short_input_fully_attended() {
        let p = profile_or_panic("gpt-4o");
        let mut rng = rng_for("gpt-4o", "x", 0);
        let a = attend(p, "one two three\nfour five", &mut rng);
        assert_eq!(a.lines.len(), 2);
        assert!(!a.truncated);
        assert_eq!(a.retention, 1.0);
    }

    #[test]
    fn oversized_input_keeps_head_and_tail() {
        let p = profile_or_panic("gpt-4");
        let mut rng = rng_for("gpt-4", "y", 0);
        let body: String = (0..4000)
            .map(|i| format!("line {i} with a few tokens here\n"))
            .collect();
        let a = attend(p, &body, &mut rng);
        assert!(a.truncated);
        assert!(a.retention < 0.7);
        // Head survives.
        assert!(a.lines.iter().any(|l| l.contains("line 0 ")));
        // Tail survives.
        assert!(a.lines.iter().any(|l| l.contains("line 3999")));
        // Middle is mostly gone.
        let mid_kept = a.lines.iter().filter(|l| l.contains("line 2")).count();
        assert!(mid_kept < 600);
    }

    #[test]
    fn heavy_but_fitting_load_drops_middle_probabilistically() {
        let p = profile_or_panic("gpt-4o");
        // ~0.9 of budget.
        let nlines = p.context_tokens * 9 / 10 / 6;
        let body: String = (0..nlines).map(|i| format!("l {i} a b c d\n")).collect();
        let mut rng = rng_for("gpt-4o", "z", 0);
        let a = attend(p, &body, &mut rng);
        assert!(a.truncated);
        assert!(
            a.retention > 0.5 && a.retention < 1.0,
            "retention {}",
            a.retention
        );
        // Edges preferentially survive.
        assert!(a.lines.first().unwrap().contains("l 0 "));
    }

    #[test]
    fn attention_is_deterministic() {
        let p = profile_or_panic("llama-3-70b");
        let body: String = (0..3000).map(|i| format!("row {i} x y z\n")).collect();
        let a1 = attend(p, &body, &mut rng_for("llama-3-70b", &body, 7));
        let a2 = attend(p, &body, &mut rng_for("llama-3-70b", &body, 7));
        assert_eq!(a1.lines, a2.lines);
    }
}
