//! Diagnosis report type shared by every tool in the evaluation.

use serde::Serialize;
use std::collections::BTreeSet;
use tracebench::IssueLabel;

/// A complete diagnosis produced by one tool for one trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnosis {
    /// Producing tool (`drishti`, `ion`, `ioagent-gpt-4o`, ...).
    pub tool: String,
    /// The full human-readable report.
    pub text: String,
    /// Issues the tool explicitly identified.
    pub issues: Vec<IssueLabel>,
    /// Citations backing the report (empty for tools without references).
    pub references: Vec<String>,
}

impl Diagnosis {
    /// Construct, deriving `issues` from the text when not supplied.
    pub fn from_text(tool: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let issues = extract_issues(&text).into_iter().collect();
        Diagnosis {
            tool: tool.into(),
            text,
            issues,
            references: Vec::new(),
        }
    }

    /// Issue set as a `BTreeSet` for comparisons.
    pub fn issue_set(&self) -> BTreeSet<IssueLabel> {
        self.issues.iter().copied().collect()
    }
}

/// Scan a report for issue mentions by Table II display name
/// (case-insensitive). This is the shared convention all tools' reports
/// follow, so accuracy judging is uniform.
pub fn extract_issues(text: &str) -> BTreeSet<IssueLabel> {
    let lower = text.to_lowercase();
    IssueLabel::ALL
        .into_iter()
        .filter(|l| lower.contains(&l.display_name().to_lowercase()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_finds_display_names() {
        let text = "We found Small Write I/O Requests and also misaligned write requests.";
        let issues = extract_issues(text);
        assert!(issues.contains(&IssueLabel::SmallWrite));
        assert!(issues.contains(&IssueLabel::MisalignedWrite));
        assert_eq!(issues.len(), 2);
    }

    #[test]
    fn extraction_distinguishes_directions() {
        let issues = extract_issues("Random Access Patterns on Read only");
        assert!(issues.contains(&IssueLabel::RandomRead));
        assert!(!issues.contains(&IssueLabel::RandomWrite));
    }

    #[test]
    fn from_text_derives_issues() {
        let d = Diagnosis::from_text("test", "Issue: High Metadata Load detected");
        assert_eq!(d.issues, vec![IssueLabel::HighMetadataLoad]);
        assert_eq!(d.issue_set().len(), 1);
    }

    #[test]
    fn empty_text_no_issues() {
        assert!(extract_issues("all clear").is_empty());
    }
}
