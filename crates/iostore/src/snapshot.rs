//! Versioned on-disk snapshots of the knowledge [`VectorIndex`].
//!
//! A snapshot is a header line, one line per index entry, and — depending
//! on what the index carries — up to three trailing records: the (v2) IVF
//! clustering record, then the (v3) cluster-major permutation record, then
//! the (v3) SQ8 codebook record:
//!
//! ```json
//! {"magic": "ioagent-index", "format_version": 3, "embedder_dim": 256,
//!  "chunk_size": 512, "overlap": 20, "corpus_hash": "0x9f2c…",
//!  "entries": 78}
//! {"doc_id": "k01", "citation": "[…]", "chunk_no": 0, "text": "…",
//!  "vector": "3f547ae1…"}
//! …
//! {"ivf_clusters": 16, "ivf_nprobe": 4, "ivf_centroids": "3e21…",
//!  "ivf_assignments": "00000003…"}
//! {"perm": "0000000400000000…"}
//! {"sq8_min": "bf21…", "sq8_scale": "3a08…", "sq8_rerank_pool": 128}
//! ```
//!
//! Byte-level field encodings, version-range rules, and the journal record
//! grammar are specified in `docs/snapshot-format.md` at the repo root.
//!
//! Version 1 snapshots (pre-IVF) still load: they simply carry no
//! clustering record, and a caller that wants IVF clusters the loaded
//! index lazily (`Retriever::build_or_load_with` re-saves the result as
//! v2 so the next start skips the clustering too). Likewise, v2 snapshots
//! carry no SQ8 codebook; a caller that wants the SQ8 tier trains one
//! lazily and re-saves as v3. Centroids are stored as the same bit-exact
//! f32 hex as entry vectors, and assignments as 8 hex digits per row, so
//! a loaded quantizer probes byte-identically to the one that was saved.
//!
//! The v3 permutation record is *redundant by construction* — the
//! cluster-major row order is derived deterministically from the
//! assignment table — and is stored anyway as a cross-check: a loader
//! re-derives the permutation and rejects the snapshot as
//! [`SnapshotError::Corrupt`] on any mismatch, so layout drift between
//! the writer and reader binaries is detected instead of silently
//! mis-mapping external row ids. SQ8 codes are *not* stored: they are
//! recomputed from the (bit-exact) vectors and the stored codebook, which
//! reproduces them byte-identically at a fraction of the snapshot size.
//!
//! The header makes staleness *detectable instead of silent*: loading
//! verifies the format version, the embedder configuration, the chunking
//! hyper-parameters, and a content hash of the corpus the index was built
//! from. Any mismatch returns a typed [`SnapshotError`] so the caller
//! rebuilds (and re-saves) rather than serving retrievals from an index
//! that no longer matches the code or the corpus.
//!
//! Embedding vectors are stored as bit-exact hex (`f32::to_bits`, 8 hex
//! digits per lane), never decimal text, so loaded cosine scores — and
//! therefore retrieval order, grounding, and final diagnoses — are
//! byte-identical to a fresh build.

use ioembed::Embedder;
use serde_json::{json, Value};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;
use vecindex::{IndexEntry, VectorArena, VectorIndex};

/// Newest snapshot format version; bump on any layout change. v2 added
/// the optional trailing IVF clustering record; v3 added the cluster-major
/// permutation record and the SQ8 codebook record. [`save_index`] stamps a
/// snapshot with the **oldest version that can represent it** — a flat
/// index is byte-identical to the v1 format, so it is written as v1 and
/// stays loadable after a rollback to a pre-IVF binary, and a clustered
/// index without an SQ8 tier is written as v2 for the same reason.
pub const SNAPSHOT_FORMAT_VERSION: i64 = 3;

/// Oldest format version [`load_index`] still reads (v1 lacks the IVF
/// record, v2 lacks the permutation and SQ8 records; everything else is
/// unchanged).
pub const SNAPSHOT_MIN_FORMAT_VERSION: i64 = 1;

/// Oldest version whose snapshots may carry the v2 IVF clustering record.
const IVF_RECORD_MIN_VERSION: i64 = 2;

/// Oldest version whose snapshots may carry the v3 permutation and SQ8
/// codebook records.
const SQ8_RECORD_MIN_VERSION: i64 = 3;

const MAGIC: &str = "ioagent-index";

/// What a snapshot must match to be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpec {
    /// Embedding dimensionality ([`Embedder::dim`]).
    pub embedder_dim: usize,
    /// Chunk size in tokens.
    pub chunk_size: usize,
    /// Chunk overlap in tokens.
    pub overlap: usize,
    /// Content hash of the corpus the index is built over.
    pub corpus_hash: u64,
}

impl IndexSpec {
    /// The spec a given live index satisfies.
    pub fn of_index(index: &VectorIndex, corpus_hash: u64) -> Self {
        IndexSpec {
            embedder_dim: index.embedder().dim,
            chunk_size: index.chunk_size(),
            overlap: index.overlap(),
            corpus_hash,
        }
    }
}

/// Why a snapshot could not be served.
#[derive(Debug)]
pub enum SnapshotError {
    /// No snapshot file exists yet.
    Missing,
    /// Reading or writing the snapshot failed.
    Io(io::Error),
    /// The file exists but is not an intact snapshot (bad header, torn
    /// entry lines, wrong entry count, malformed vectors, …).
    Corrupt(String),
    /// The snapshot was written by a different format version.
    FormatVersion {
        /// Version found in the header.
        found: i64,
    },
    /// The snapshot was built with different embedder / chunking settings.
    ConfigMismatch(String),
    /// The corpus changed since the snapshot was built.
    CorpusMismatch {
        /// Corpus hash in the header.
        found: u64,
        /// Corpus hash of the live corpus.
        expected: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Missing => write!(f, "no index snapshot on disk"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            SnapshotError::FormatVersion { found } => write!(
                f,
                "snapshot format version {found} (this build reads \
                 {SNAPSHOT_MIN_FORMAT_VERSION}..={SNAPSHOT_FORMAT_VERSION})"
            ),
            SnapshotError::ConfigMismatch(why) => {
                write!(f, "snapshot embedder/chunking mismatch: {why}")
            }
            SnapshotError::CorpusMismatch { found, expected } => write!(
                f,
                "snapshot corpus hash 0x{found:016x} != live corpus 0x{expected:016x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::NotFound {
            SnapshotError::Missing
        } else {
            SnapshotError::Io(e)
        }
    }
}

/// Write a snapshot of `index` (built over a corpus hashing to
/// `corpus_hash`) to `path`, via a temp file + rename so a crash never
/// leaves a half-written snapshot in place.
pub fn save_index(path: &Path, index: &VectorIndex, corpus_hash: u64) -> io::Result<()> {
    let tmp = path.with_extension("snap.tmp");
    {
        let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
        // Oldest version that can represent this index: only an SQ8 tier
        // needs the v3 records and only a clustered index needs the v2
        // IVF record; a flat one stays v1-readable so a rolled-back
        // pre-IVF binary can still serve it.
        let format_version = if index.sq8().is_some() {
            SNAPSHOT_FORMAT_VERSION
        } else if index.ivf().is_some() {
            IVF_RECORD_MIN_VERSION
        } else {
            SNAPSHOT_MIN_FORMAT_VERSION
        };
        let header = json!({
            "magic": MAGIC,
            "format_version": format_version,
            "embedder_dim": index.embedder().dim,
            "chunk_size": index.chunk_size(),
            "overlap": index.overlap(),
            "corpus_hash": format!("0x{corpus_hash:016x}"),
            "entries": index.entries().len(),
        });
        writeln!(w, "{}", serde_json::to_string(&header).expect("header"))?;
        for (i, entry) in index.entries().iter().enumerate() {
            let line = json!({
                "doc_id": entry.doc_id,
                "citation": entry.citation,
                "chunk_no": entry.chunk_no,
                "text": entry.text,
                "vector": encode_vector(index.vector(i)),
            });
            writeln!(w, "{}", serde_json::to_string(&line).expect("entry"))?;
        }
        if let Some(ivf) = index.ivf() {
            let record = json!({
                "ivf_clusters": ivf.clusters(),
                "ivf_nprobe": ivf.nprobe(),
                "ivf_centroids": encode_vector(ivf.centroids()),
                "ivf_assignments": encode_u32s(ivf.assignments()),
            });
            writeln!(w, "{}", serde_json::to_string(&record).expect("ivf record"))?;
            if let Some(sq8) = index.sq8() {
                // v3 only: the cluster-major permutation (redundant with
                // the assignments, stored as a layout cross-check) and the
                // SQ8 codebook (codes are recomputed on load).
                let perm = json!({ "perm": encode_u32s(ivf.perm()) });
                writeln!(w, "{}", serde_json::to_string(&perm).expect("perm record"))?;
                let record = json!({
                    "sq8_min": encode_vector(sq8.min()),
                    "sq8_scale": encode_vector(sq8.scale()),
                    "sq8_rerank_pool": sq8.rerank_pool(),
                });
                writeln!(w, "{}", serde_json::to_string(&record).expect("sq8 record"))?;
            }
        }
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Records the snapshot-load latency histogram on every exit path of
/// [`load_index`] (including the typed-error early returns).
struct LoadTimer {
    start: std::time::Instant,
}

impl Drop for LoadTimer {
    fn drop(&mut self) {
        let m = ioobserve::metrics();
        m.counter("snapshot.loads").inc();
        m.histogram("snapshot.load_ns")
            .record_duration(self.start.elapsed());
    }
}

/// Load a snapshot from `path`, verifying it against `expected`. Returns
/// the reconstructed index — bit-identical, entry for entry, to the index
/// that was saved — or a typed error telling the caller to rebuild.
pub fn load_index(path: &Path, expected: &IndexSpec) -> Result<VectorIndex, SnapshotError> {
    let load_start = std::time::Instant::now();
    let _span = ioobserve::tracer().span("snapshot.load");
    let _timer = LoadTimer { start: load_start };
    let raw = std::fs::read_to_string(path)?;
    let mut lines = raw.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| SnapshotError::Corrupt("empty snapshot file".into()))?;
    let header: Value = serde_json::from_str(header_line)
        .map_err(|e| SnapshotError::Corrupt(format!("unreadable header: {e}")))?;
    if header.get("magic").and_then(Value::as_str) != Some(MAGIC) {
        return Err(SnapshotError::Corrupt("missing magic marker".into()));
    }
    let found_version = header
        .get("format_version")
        .and_then(Value::as_i64)
        .unwrap_or(-1);
    if !(SNAPSHOT_MIN_FORMAT_VERSION..=SNAPSHOT_FORMAT_VERSION).contains(&found_version) {
        return Err(SnapshotError::FormatVersion {
            found: found_version,
        });
    }

    let header_usize = |field: &str| -> Result<usize, SnapshotError> {
        header
            .get(field)
            .and_then(Value::as_i64)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| SnapshotError::Corrupt(format!("header field {field:?} missing")))
    };
    let dim = header_usize("embedder_dim")?;
    let chunk_size = header_usize("chunk_size")?;
    let overlap = header_usize("overlap")?;
    if dim != expected.embedder_dim {
        return Err(SnapshotError::ConfigMismatch(format!(
            "embedder dim {dim} != expected {}",
            expected.embedder_dim
        )));
    }
    if chunk_size != expected.chunk_size || overlap != expected.overlap {
        return Err(SnapshotError::ConfigMismatch(format!(
            "chunking {chunk_size}/{overlap} != expected {}/{}",
            expected.chunk_size, expected.overlap
        )));
    }
    let corpus_hash = header
        .get("corpus_hash")
        .and_then(Value::as_str)
        .and_then(|s| s.strip_prefix("0x"))
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| SnapshotError::Corrupt("header corpus_hash missing".into()))?;
    if corpus_hash != expected.corpus_hash {
        return Err(SnapshotError::CorpusMismatch {
            found: corpus_hash,
            expected: expected.corpus_hash,
        });
    }
    let declared_entries = header_usize("entries")?;

    let mut entries: Vec<IndexEntry> = Vec::with_capacity(declared_entries);
    let mut arena = VectorArena::with_capacity(dim, declared_entries);
    // Consecutive chunks of one document share a single doc_id / citation
    // allocation, restoring the memory shape `add_document` builds.
    let mut shared: Option<(Arc<str>, Arc<str>)> = None;
    let mut ivf_record: Option<Value> = None;
    let mut perm_record: Option<Value> = None;
    let mut sq8_record: Option<Value> = None;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| SnapshotError::Corrupt(format!("unreadable entry: {e}")))?;
        if v.get("ivf_clusters").is_some() {
            // The (v2) clustering record trails every entry line.
            if found_version < IVF_RECORD_MIN_VERSION {
                return Err(SnapshotError::Corrupt(format!(
                    "IVF record in a v{found_version} snapshot \
                     (valid from v{IVF_RECORD_MIN_VERSION})"
                )));
            }
            if ivf_record.is_some() {
                return Err(SnapshotError::Corrupt("duplicate IVF record".into()));
            }
            if perm_record.is_some() || sq8_record.is_some() {
                return Err(SnapshotError::Corrupt(
                    "IVF record after a v3 trailing record".into(),
                ));
            }
            if entries.len() != declared_entries {
                return Err(SnapshotError::Corrupt(format!(
                    "IVF record after {} of {declared_entries} entries (torn middle?)",
                    entries.len()
                )));
            }
            ivf_record = Some(v);
            continue;
        }
        if v.get("perm").is_some() {
            // The (v3) permutation record trails the IVF record.
            if found_version < SQ8_RECORD_MIN_VERSION {
                return Err(SnapshotError::Corrupt(format!(
                    "permutation record in a v{found_version} snapshot \
                     (valid from v{SQ8_RECORD_MIN_VERSION})"
                )));
            }
            if perm_record.is_some() {
                return Err(SnapshotError::Corrupt(
                    "duplicate permutation record".into(),
                ));
            }
            if ivf_record.is_none() {
                return Err(SnapshotError::Corrupt(
                    "permutation record without a preceding IVF record".into(),
                ));
            }
            if sq8_record.is_some() {
                return Err(SnapshotError::Corrupt(
                    "permutation record after the SQ8 record".into(),
                ));
            }
            perm_record = Some(v);
            continue;
        }
        if v.get("sq8_min").is_some() {
            // The (v3) SQ8 codebook record trails the permutation record.
            if found_version < SQ8_RECORD_MIN_VERSION {
                return Err(SnapshotError::Corrupt(format!(
                    "SQ8 record in a v{found_version} snapshot \
                     (valid from v{SQ8_RECORD_MIN_VERSION})"
                )));
            }
            if sq8_record.is_some() {
                return Err(SnapshotError::Corrupt("duplicate SQ8 record".into()));
            }
            if perm_record.is_none() {
                return Err(SnapshotError::Corrupt(
                    "SQ8 record without a preceding permutation record".into(),
                ));
            }
            sq8_record = Some(v);
            continue;
        }
        if ivf_record.is_some() || perm_record.is_some() || sq8_record.is_some() {
            return Err(SnapshotError::Corrupt(
                "entry line after a trailing record".into(),
            ));
        }
        let field = |name: &str| -> Result<String, SnapshotError> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| SnapshotError::Corrupt(format!("entry field {name:?} missing")))
        };
        let chunk_no = v
            .get("chunk_no")
            .and_then(Value::as_i64)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| SnapshotError::Corrupt("entry field \"chunk_no\" missing".into()))?;
        let vector = decode_vector(&field("vector")?)?;
        if vector.len() != dim {
            return Err(SnapshotError::Corrupt(format!(
                "vector has {} lanes, header says {dim}",
                vector.len()
            )));
        }
        arena.push(&vector);
        let doc_id_s = field("doc_id")?;
        let citation_s = field("citation")?;
        let (doc_id, citation) = match &shared {
            Some((d, c)) if **d == *doc_id_s && **c == *citation_s => {
                (Arc::clone(d), Arc::clone(c))
            }
            _ => {
                let fresh = (Arc::<str>::from(doc_id_s), Arc::<str>::from(citation_s));
                shared = Some((Arc::clone(&fresh.0), Arc::clone(&fresh.1)));
                fresh
            }
        };
        entries.push(IndexEntry {
            doc_id,
            citation,
            chunk_no,
            text: field("text")?,
        });
    }
    if entries.len() != declared_entries {
        return Err(SnapshotError::Corrupt(format!(
            "snapshot holds {} entries, header declares {declared_entries} (torn tail?)",
            entries.len()
        )));
    }
    if found_version >= SQ8_RECORD_MIN_VERSION
        && (ivf_record.is_none() || perm_record.is_none() || sq8_record.is_none())
    {
        // save_index stamps the oldest representable version, so a v3
        // header promises all three trailing records; a missing one means
        // a torn tail.
        return Err(SnapshotError::Corrupt(
            "v3 snapshot missing its IVF, permutation, or SQ8 record (torn tail?)".into(),
        ));
    }
    let mut index = VectorIndex::from_parts(Embedder { dim }, chunk_size, overlap, entries, arena);
    if let Some(record) = ivf_record {
        let ivf = decode_ivf(&record, index.arena())?;
        index.attach_ivf(Arc::new(ivf));
        if let Some(record) = perm_record {
            let stored = decode_u32s(
                record.get("perm").and_then(Value::as_str).ok_or_else(|| {
                    SnapshotError::Corrupt("permutation field \"perm\" missing".into())
                })?,
                "permutation",
            )?;
            let derived = index.ivf().expect("IVF attached above").perm();
            if stored.as_slice() != derived {
                return Err(SnapshotError::Corrupt(
                    "permutation record does not match the clustering-derived \
                     cluster-major layout"
                        .into(),
                ));
            }
        }
        if let Some(record) = sq8_record {
            let field = |name: &str| -> Result<&str, SnapshotError> {
                record
                    .get(name)
                    .and_then(Value::as_str)
                    .ok_or_else(|| SnapshotError::Corrupt(format!("SQ8 field {name:?} missing")))
            };
            let min = decode_vector(field("sq8_min")?)?;
            let scale = decode_vector(field("sq8_scale")?)?;
            let pool = record
                .get("sq8_rerank_pool")
                .and_then(Value::as_i64)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| {
                    SnapshotError::Corrupt("SQ8 field \"sq8_rerank_pool\" missing".into())
                })?;
            index
                .attach_sq8(min, scale, pool)
                .map_err(|why| SnapshotError::Corrupt(format!("SQ8 record invalid: {why}")))?;
        }
    }
    Ok(index)
}

/// Reconstruct the quantizer from a v2 clustering record, byte-exactly
/// (the per-cluster packed scoring copy is derived from `arena`, not
/// stored).
fn decode_ivf(record: &Value, arena: &VectorArena) -> Result<vecindex::IvfIndex, SnapshotError> {
    let field = |name: &str| -> Result<&str, SnapshotError> {
        record
            .get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| SnapshotError::Corrupt(format!("IVF field {name:?} missing")))
    };
    let number = |name: &str| -> Result<usize, SnapshotError> {
        record
            .get(name)
            .and_then(Value::as_i64)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| SnapshotError::Corrupt(format!("IVF field {name:?} missing")))
    };
    let clusters = number("ivf_clusters")?;
    let nprobe = number("ivf_nprobe")?;
    let centroids = decode_vector(field("ivf_centroids")?)?;
    let assignments = decode_u32s(field("ivf_assignments")?, "IVF assignment")?;
    let ivf = vecindex::IvfIndex::from_parts(arena, nprobe, centroids, assignments)
        .map_err(|why| SnapshotError::Corrupt(format!("IVF record invalid: {why}")))?;
    if ivf.clusters() != clusters {
        return Err(SnapshotError::Corrupt(format!(
            "IVF record declares {clusters} clusters, centroid matrix holds {}",
            ivf.clusters()
        )));
    }
    Ok(ivf)
}

/// 8 hex digits per `u32` — used for cluster assignments and the
/// cluster-major permutation table.
fn encode_u32s(v: &[u32]) -> String {
    let mut out = String::with_capacity(v.len() * 8);
    for lane in v {
        out.push_str(&format!("{lane:08x}"));
    }
    out
}

fn decode_u32s(hex: &str, what: &str) -> Result<Vec<u32>, SnapshotError> {
    if !hex.len().is_multiple_of(8) {
        return Err(SnapshotError::Corrupt(format!(
            "{what} hex length not a multiple of 8"
        )));
    }
    hex.as_bytes()
        .chunks(8)
        .map(|lane| {
            std::str::from_utf8(lane)
                .ok()
                .and_then(|s| u32::from_str_radix(s, 16).ok())
                .ok_or_else(|| SnapshotError::Corrupt(format!("bad {what} hex")))
        })
        .collect()
}

/// Bit-exact hex encoding: 8 hex digits (`f32::to_bits`) per lane.
fn encode_vector(v: &[f32]) -> String {
    let mut out = String::with_capacity(v.len() * 8);
    for lane in v {
        out.push_str(&format!("{:08x}", lane.to_bits()));
    }
    out
}

fn decode_vector(hex: &str) -> Result<Vec<f32>, SnapshotError> {
    if !hex.len().is_multiple_of(8) {
        return Err(SnapshotError::Corrupt(
            "vector hex length not a multiple of 8".into(),
        ));
    }
    hex.as_bytes()
        .chunks(8)
        .map(|lane| {
            std::str::from_utf8(lane)
                .ok()
                .and_then(|s| u32::from_str_radix(s, 16).ok())
                .map(f32::from_bits)
                .ok_or_else(|| SnapshotError::Corrupt("bad vector hex lane".into()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn small_index() -> VectorIndex {
        let mut ix = VectorIndex::new(Embedder::default(), 64, 8);
        ix.add_document(
            "doc-a",
            "[A, V 2020]",
            "Lustre stripe count determines how many storage targets serve a file.",
        );
        ix.add_document(
            "doc-b",
            "[B, V 2021]",
            "Collective MPI-IO aggregates many small requests into large transfers.",
        );
        ix
    }

    fn spec(ix: &VectorIndex) -> IndexSpec {
        IndexSpec::of_index(ix, 0xfeed)
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let tmp = TempDir::new("snap-rt");
        let path = tmp.0.join("index.snap");
        let ix = small_index();
        save_index(&path, &ix, 0xfeed).unwrap();
        let loaded = load_index(&path, &spec(&ix)).unwrap();
        assert_eq!(loaded.len(), ix.len());
        for (i, (a, b)) in ix.entries().iter().zip(loaded.entries()).enumerate() {
            assert_eq!(a.doc_id, b.doc_id);
            assert_eq!(a.citation, b.citation);
            assert_eq!(a.chunk_no, b.chunk_no);
            assert_eq!(a.text, b.text);
            let bits_a: Vec<u32> = ix.vector(i).iter().map(|f| f.to_bits()).collect();
            let bits_b: Vec<u32> = loaded.vector(i).iter().map(|f| f.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "vectors must survive bit-exactly");
            assert_eq!(
                loaded.arena().norm(i).to_bits(),
                ioembed::norm(loaded.vector(i)).to_bits(),
                "loaded arena norms must match recomputation bit-exactly"
            );
        }
        // The load path restores Arc sharing: chunks of one document alias
        // one metadata allocation, as a fresh build does.
        for w in loaded.entries().windows(2) {
            if w[0].doc_id == w[1].doc_id {
                assert!(Arc::ptr_eq(&w[0].doc_id, &w[1].doc_id));
                assert!(Arc::ptr_eq(&w[0].citation, &w[1].citation));
            }
        }
        // Retrieval over the loaded index is identical.
        let q = "stripe count limits parallelism";
        let hits_a: Vec<(u32, usize)> = ix
            .search(q, 3)
            .into_iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        let hits_b: Vec<(u32, usize)> = loaded
            .search(q, 3)
            .into_iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        assert_eq!(hits_a, hits_b);
    }

    #[test]
    fn missing_snapshot_reports_missing() {
        let tmp = TempDir::new("snap-missing");
        let ix = small_index();
        let err = load_index(&tmp.0.join("nope.snap"), &spec(&ix)).unwrap_err();
        assert!(matches!(err, SnapshotError::Missing), "{err}");
    }

    #[test]
    fn corpus_change_invalidates() {
        let tmp = TempDir::new("snap-corpus");
        let path = tmp.0.join("index.snap");
        let ix = small_index();
        save_index(&path, &ix, 0xfeed).unwrap();
        let mut other = spec(&ix);
        other.corpus_hash = 0xbeef;
        let err = load_index(&path, &other).unwrap_err();
        assert!(matches!(err, SnapshotError::CorpusMismatch { .. }), "{err}");
    }

    #[test]
    fn embedder_config_change_invalidates() {
        let tmp = TempDir::new("snap-config");
        let path = tmp.0.join("index.snap");
        let ix = small_index();
        save_index(&path, &ix, 0xfeed).unwrap();
        let mut other = spec(&ix);
        other.embedder_dim = 128;
        assert!(matches!(
            load_index(&path, &other).unwrap_err(),
            SnapshotError::ConfigMismatch(_)
        ));
        let mut other = spec(&ix);
        other.chunk_size = 1024;
        assert!(matches!(
            load_index(&path, &other).unwrap_err(),
            SnapshotError::ConfigMismatch(_)
        ));
    }

    #[test]
    fn future_format_version_is_rejected() {
        let tmp = TempDir::new("snap-ver");
        let path = tmp.0.join("index.snap");
        let ix = small_index();
        save_index(&path, &ix, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let bumped = raw.replace("\"format_version\":1", "\"format_version\":9");
        assert_ne!(raw, bumped, "fixture must actually bump the version");
        std::fs::write(&path, bumped).unwrap();
        assert!(matches!(
            load_index(&path, &spec(&ix)).unwrap_err(),
            SnapshotError::FormatVersion { found: 9 }
        ));
    }

    /// A flat index is written as v1 — byte-compatible with the pre-IVF
    /// format, so a rolled-back binary can still serve it — and loads
    /// back without a quantizer. Clustering (and only clustering) bumps
    /// the header to v2.
    #[test]
    fn flat_snapshots_stay_v1_for_rollback() {
        let tmp = TempDir::new("snap-v1");
        let path = tmp.0.join("index.snap");
        let ix = small_index();
        save_index(&path, &ix, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(
            raw.contains("\"format_version\":1"),
            "flat snapshot must be v1"
        );
        assert!(!raw.contains("ivf_clusters"));
        let loaded = load_index(&path, &spec(&ix)).unwrap();
        assert!(loaded.ivf().is_none());
        assert_eq!(loaded.len(), ix.len());

        // Clustered → v2 with the trailing record; detaching the
        // quantizer and re-saving goes back to a v1 file.
        let mut clustered = small_index();
        clustered.enable_ivf(3, 2);
        save_index(&path, &clustered, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.contains("\"format_version\":2"));
        assert!(raw.contains("ivf_clusters"));
        clustered.disable_ivf();
        save_index(&path, &clustered, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(
            raw.contains("\"format_version\":1"),
            "flat re-save must downgrade"
        );
    }

    /// The v2 clustering record round-trips byte-exactly: the loaded
    /// quantizer has identical centroids, assignments, and probe width,
    /// and probed searches return identical hits.
    #[test]
    fn ivf_record_round_trips_byte_exactly() {
        let tmp = TempDir::new("snap-ivf");
        let path = tmp.0.join("index.snap");
        let mut ix = small_index();
        ix.enable_ivf(3, 2);
        save_index(&path, &ix, 0xfeed).unwrap();
        let loaded = load_index(&path, &spec(&ix)).unwrap();
        let (a, b) = (ix.ivf().unwrap(), loaded.ivf().unwrap());
        assert_eq!(a.clusters(), b.clusters());
        assert_eq!(a.nprobe(), b.nprobe());
        assert_eq!(a.assignments(), b.assignments());
        let bits_a: Vec<u32> = a.centroids().iter().map(|f| f.to_bits()).collect();
        let bits_b: Vec<u32> = b.centroids().iter().map(|f| f.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "centroids must survive bit-exactly");
        let q = "stripe count limits parallelism";
        let hits_a: Vec<(u32, usize)> = ix
            .search(q, 3)
            .into_iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        let hits_b: Vec<(u32, usize)> = loaded
            .search(q, 3)
            .into_iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        assert_eq!(hits_a, hits_b, "probed retrieval must be identical");
    }

    /// A corrupt clustering record must fail the load (typed, rebuildable)
    /// rather than silently serving a flat or half-clustered index.
    #[test]
    fn corrupt_ivf_record_is_rejected() {
        let tmp = TempDir::new("snap-ivf-corrupt");
        let path = tmp.0.join("index.snap");
        let mut ix = small_index();
        ix.enable_ivf(3, 2);
        save_index(&path, &ix, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        // Pad the assignment table to more rows than the snapshot holds.
        let broken = raw.replace("\"ivf_assignments\":\"", "\"ivf_assignments\":\"00000000");
        assert_ne!(raw, broken, "fixture must actually mutate the record");
        std::fs::write(&path, broken).unwrap();
        assert!(matches!(
            load_index(&path, &spec(&ix)).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    /// An SQ8-tiered index is written as v3 with the permutation and
    /// codebook records, and loads back with a byte-identical codebook,
    /// rerank pool, and probed search results.
    #[test]
    fn sq8_snapshots_are_v3_and_round_trip_byte_exactly() {
        let tmp = TempDir::new("snap-sq8");
        let path = tmp.0.join("index.snap");
        let mut ix = small_index();
        ix.enable_ivf(3, 2);
        ix.enable_sq8(16);
        save_index(&path, &ix, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.contains("\"format_version\":3"));
        assert!(raw.contains("\"perm\":"));
        assert!(raw.contains("\"sq8_min\":"));
        let loaded = load_index(&path, &spec(&ix)).unwrap();
        let (a, b) = (ix.sq8().unwrap(), loaded.sq8().unwrap());
        assert_eq!(a.rerank_pool(), b.rerank_pool());
        assert_eq!(a.code_bytes(), b.code_bytes());
        let bits = |v: &[f32]| -> Vec<u32> { v.iter().map(|f| f.to_bits()).collect() };
        assert_eq!(bits(a.min()), bits(b.min()), "codebook min must survive");
        assert_eq!(
            bits(a.scale()),
            bits(b.scale()),
            "codebook scale must survive"
        );
        let q = "stripe count limits parallelism";
        let hits_a: Vec<(u32, usize)> = ix
            .search(q, 3)
            .into_iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        let hits_b: Vec<(u32, usize)> = loaded
            .search(q, 3)
            .into_iter()
            .map(|h| (h.score.to_bits(), h.entry_idx))
            .collect();
        assert_eq!(hits_a, hits_b, "SQ8 retrieval must be identical");
        // Dropping the tier downgrades the re-save to v2, and dropping
        // the quantizer too goes all the way back to v1.
        ix.disable_sq8();
        save_index(&path, &ix, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(
            raw.contains("\"format_version\":2"),
            "sq8-less re-save must be v2"
        );
        assert!(!raw.contains("\"perm\":"));
    }

    /// A permutation record that disagrees with the layout derived from
    /// the assignment table means writer/reader drift — typed corrupt,
    /// never a silently mis-mapped index.
    #[test]
    fn perm_record_mismatch_is_corrupt() {
        let tmp = TempDir::new("snap-perm");
        let path = tmp.0.join("index.snap");
        let mut ix = small_index();
        ix.enable_ivf(3, 2);
        ix.enable_sq8(16);
        save_index(&path, &ix, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let perm = ix.ivf().unwrap().perm();
        let (a, b) = (perm[0], perm[1]);
        let swapped = raw.replace(
            &format!("\"perm\":\"{a:08x}{b:08x}"),
            &format!("\"perm\":\"{b:08x}{a:08x}"),
        );
        assert_ne!(raw, swapped, "fixture must actually swap two perm rows");
        std::fs::write(&path, swapped).unwrap();
        let err = load_index(&path, &spec(&ix)).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    /// The v3 records are only valid at v3: a v2-stamped snapshot that
    /// nevertheless carries them is corrupt, as is a v3-stamped snapshot
    /// missing them (torn tail).
    #[test]
    fn v3_records_obey_version_rules() {
        let tmp = TempDir::new("snap-v3-rules");
        let path = tmp.0.join("index.snap");
        let mut ix = small_index();
        ix.enable_ivf(3, 2);
        ix.enable_sq8(16);
        save_index(&path, &ix, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();

        let downgraded = raw.replace("\"format_version\":3", "\"format_version\":2");
        std::fs::write(&path, downgraded).unwrap();
        assert!(matches!(
            load_index(&path, &spec(&ix)).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));

        let torn: String = raw
            .lines()
            .take(raw.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&path, torn).unwrap();
        assert!(matches!(
            load_index(&path, &spec(&ix)).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    /// A malformed SQ8 codebook (here: truncated to the wrong number of
    /// lanes) fails the load with a typed corrupt error.
    #[test]
    fn corrupt_sq8_record_is_rejected() {
        let tmp = TempDir::new("snap-sq8-corrupt");
        let path = tmp.0.join("index.snap");
        let mut ix = small_index();
        ix.enable_ivf(3, 2);
        ix.enable_sq8(16);
        save_index(&path, &ix, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let min_hex = encode_vector(ix.sq8().unwrap().min());
        let broken = raw.replace(
            &format!("\"sq8_min\":\"{min_hex}\""),
            &format!("\"sq8_min\":\"{}\"", &min_hex[8..]),
        );
        assert_ne!(raw, broken, "fixture must actually truncate the codebook");
        std::fs::write(&path, broken).unwrap();
        assert!(matches!(
            load_index(&path, &spec(&ix)).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn torn_snapshot_is_corrupt_not_served() {
        let tmp = TempDir::new("snap-torn");
        let path = tmp.0.join("index.snap");
        let ix = small_index();
        save_index(&path, &ix, 0xfeed).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        let keep: String = raw
            .lines()
            .take(raw.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&path, keep).unwrap();
        assert!(matches!(
            load_index(&path, &spec(&ix)).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn vector_hex_round_trips_extremes() {
        let v = vec![0.0f32, -0.0, 1.0, -1.0, f32::MIN_POSITIVE, 0.1234567];
        let decoded = decode_vector(&encode_vector(&v)).unwrap();
        let bits_in: Vec<u32> = v.iter().map(|f| f.to_bits()).collect();
        let bits_out: Vec<u32> = decoded.iter().map(|f| f.to_bits()).collect();
        assert_eq!(bits_in, bits_out);
    }
}
