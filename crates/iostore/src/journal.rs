//! Append-only NDJSON journal of completed diagnoses.
//!
//! One record per line:
//!
//! ```json
//! {"v": 1, "trace": "0x9f2c…", "model": "gpt-4o",
//!  "config": "AgentConfig { … }", "tool": "ioagent-gpt-4o",
//!  "text": "…full report…", "issues": ["small_write"],
//!  "references": ["[…]"]}
//! ```
//!
//! The journal is the fleet-lifetime result map: every distinct
//! `(trace fingerprint, model, config)` key ever diagnosed, with the last
//! record for a key winning. Records are appended (and flushed) as jobs
//! complete; on open the whole file is replayed into an in-memory map.
//! Robustness rules:
//!
//! - A **torn final line** (crash mid-append) is skipped, not fatal.
//! - A corrupt or unknown-version line anywhere is skipped and counted.
//! - If any line was skipped — or the file does not end in a newline — the
//!   journal is compacted on open, so damage never accumulates and a torn
//!   tail can never swallow the next appended record.
//! - Appends of a key already stored with the same diagnosis are no-ops,
//!   and compaction rewrites one record per live key whenever the file
//!   grows past twice the live-entry count.

use crate::{fnv1a, FNV_OFFSET};
use serde_json::{json, Value};
use simllm::Diagnosis;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use tracebench::IssueLabel;

/// Journal record format version.
pub const JOURNAL_FORMAT_VERSION: i64 = 1;

/// Compaction is considered once the file holds this many raw records.
const COMPACT_MIN_RECORDS: usize = 64;

/// Key of one persisted result: the same triple the in-memory LRU uses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Stable FNV-1a hash of the canonical trace text.
    pub trace_hash: u64,
    /// Backbone model profile name.
    pub model: String,
    /// Full agent configuration rendered as a stable string.
    pub config: String,
}

impl ResultKey {
    /// Hash of the key itself (journal fingerprint, used in summaries).
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, &self.trace_hash.to_le_bytes());
        fnv1a(&mut h, self.model.as_bytes());
        fnv1a(&mut h, self.config.as_bytes());
        h
    }
}

/// Disk-backed map of completed diagnoses.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    writer: BufWriter<File>,
    entries: HashMap<ResultKey, Diagnosis>,
    /// Raw records currently in the file (≥ `entries.len()` until compaction).
    file_records: usize,
    /// Lines skipped while loading (torn tail and/or corrupt records).
    skipped_lines: usize,
}

impl ResultStore {
    /// Open a journal, replaying every intact record. Creates the file if
    /// missing. A torn final line or corrupt interior lines are skipped and
    /// healed by an immediate compaction; they never refuse the open.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        // Read *bytes*, not a String: a torn tail can split a multi-byte
        // UTF-8 character (diagnosis text is not ASCII-only), and
        // `read_to_string` would then fail the whole open instead of
        // skipping one line.
        let mut raw: Vec<u8> = Vec::new();
        match File::open(&path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        let mut entries = HashMap::new();
        let mut file_records = 0usize;
        let mut skipped_lines = 0usize;
        for line in raw.split(|&b| b == b'\n') {
            if line.iter().all(u8::is_ascii_whitespace) {
                continue;
            }
            match std::str::from_utf8(line).ok().and_then(parse_record) {
                Some((key, diagnosis)) => {
                    entries.insert(key, diagnosis);
                    file_records += 1;
                }
                None => skipped_lines += 1,
            }
        }

        let writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(&path)?);
        let mut store = ResultStore {
            path,
            writer,
            entries,
            file_records,
            skipped_lines,
        };
        // Heal damage at open time: skipped lines mean the file holds
        // garbage, and a missing trailing newline means the next append
        // would glue itself onto the torn record.
        if store.skipped_lines > 0 || (!raw.is_empty() && !raw.ends_with(b"\n")) {
            store.compact()?;
        }
        Ok(store)
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Distinct keys currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Raw records in the journal file (drops back to [`ResultStore::len`]
    /// after compaction).
    pub fn file_records(&self) -> usize {
        self.file_records
    }

    /// Lines skipped while loading the journal (torn tail / corruption).
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Current size of the journal file in bytes.
    pub fn journal_bytes(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }

    /// Look up a persisted diagnosis.
    pub fn get(&self, key: &ResultKey) -> Option<&Diagnosis> {
        self.entries.get(key)
    }

    /// Iterate all persisted results.
    pub fn iter(&self) -> impl Iterator<Item = (&ResultKey, &Diagnosis)> {
        self.entries.iter()
    }

    /// Persist one result: append a record and flush. Re-inserting a key
    /// with an unchanged diagnosis is a no-op; a changed diagnosis appends
    /// a superseding record (last record for a key wins on replay). The
    /// journal self-compacts once duplicates outnumber live entries.
    pub fn insert(&mut self, key: ResultKey, diagnosis: Diagnosis) -> io::Result<()> {
        if self.entries.get(&key) == Some(&diagnosis) {
            return Ok(());
        }
        let append_start = std::time::Instant::now();
        let _span = ioobserve::tracer().span("journal.append");
        let _timer = AppendTimer {
            start: append_start,
        };
        let line = render_record(&key, &diagnosis);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.entries.insert(key, diagnosis);
        self.file_records += 1;
        if self.file_records >= COMPACT_MIN_RECORDS && self.file_records > 2 * self.entries.len() {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrite the journal with exactly one record per live key (temp file
    /// + rename, so a crash mid-compaction leaves the old journal intact).
    pub fn compact(&mut self) -> io::Result<()> {
        let compact_start = std::time::Instant::now();
        let mut span = ioobserve::tracer().span("journal.compact");
        span.set_attr("live_entries", self.entries.len());
        ioobserve::metrics().counter("journal.compactions").inc();
        let tmp = self.path.with_extension("ndjson.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            // Deterministic record order keeps compacted journals diffable.
            let mut keys: Vec<&ResultKey> = self.entries.keys().collect();
            keys.sort_by(|a, b| {
                (a.trace_hash, &a.model, &a.config).cmp(&(b.trace_hash, &b.model, &b.config))
            });
            for key in keys {
                let diagnosis = &self.entries[key];
                w.write_all(render_record(key, diagnosis).as_bytes())?;
                w.write_all(b"\n")?;
            }
            w.flush()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.writer = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        self.file_records = self.entries.len();
        self.skipped_lines = 0;
        ioobserve::metrics()
            .histogram("journal.compact_ns")
            .record_duration(compact_start.elapsed());
        Ok(())
    }
}

/// Records the append-latency histogram on every exit path of
/// [`ResultJournal::insert`] (including `?` early returns).
struct AppendTimer {
    start: std::time::Instant,
}

impl Drop for AppendTimer {
    fn drop(&mut self) {
        let m = ioobserve::metrics();
        m.counter("journal.appends").inc();
        m.histogram("journal.append_ns")
            .record_duration(self.start.elapsed());
    }
}

fn render_record(key: &ResultKey, diagnosis: &Diagnosis) -> String {
    let issues: Vec<Value> = diagnosis.issues.iter().map(|i| json!(i.key())).collect();
    let record = json!({
        "v": JOURNAL_FORMAT_VERSION,
        "trace": format!("0x{:016x}", key.trace_hash),
        "model": key.model,
        "config": key.config,
        "tool": diagnosis.tool,
        "text": diagnosis.text,
        "issues": issues,
        "references": diagnosis.references,
    });
    serde_json::to_string(&record).expect("serialize journal record")
}

fn parse_record(line: &str) -> Option<(ResultKey, Diagnosis)> {
    let value: Value = serde_json::from_str(line).ok()?;
    if value.get("v").and_then(Value::as_i64) != Some(JOURNAL_FORMAT_VERSION) {
        return None;
    }
    let trace = value.get("trace").and_then(Value::as_str)?;
    let trace_hash = u64::from_str_radix(trace.strip_prefix("0x")?, 16).ok()?;
    let model = value.get("model").and_then(Value::as_str)?.to_string();
    let config = value.get("config").and_then(Value::as_str)?.to_string();
    let tool = value.get("tool").and_then(Value::as_str)?.to_string();
    let text = value.get("text").and_then(Value::as_str)?.to_string();
    let issues = match value.get("issues")? {
        Value::Array(items) => items
            .iter()
            .map(|i| i.as_str().and_then(|s| s.parse::<IssueLabel>().ok()))
            .collect::<Option<Vec<IssueLabel>>>()?,
        _ => return None,
    };
    let references = match value.get("references")? {
        Value::Array(items) => items
            .iter()
            .map(|r| r.as_str().map(str::to_string))
            .collect::<Option<Vec<String>>>()?,
        _ => return None,
    };
    Some((
        ResultKey {
            trace_hash,
            model,
            config,
        },
        Diagnosis {
            tool,
            text,
            issues,
            references,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn sample(n: u64) -> (ResultKey, Diagnosis) {
        (
            ResultKey {
                trace_hash: 0x1000 + n,
                model: "gpt-4o".into(),
                config: "AgentConfig { top_k: 15 }".into(),
            },
            Diagnosis {
                tool: "ioagent-gpt-4o".into(),
                text: format!("report {n}\nwith \"quotes\" and unicode — ✓"),
                issues: vec![IssueLabel::SmallWrite, IssueLabel::MisalignedWrite],
                references: vec!["[Striping, SC 2021]".into()],
            },
        )
    }

    #[test]
    fn round_trips_across_reopen() {
        let tmp = TempDir::new("journal-rt");
        let path = tmp.0.join("results.ndjson");
        {
            let mut store = ResultStore::open(&path).unwrap();
            for n in 0..5 {
                let (k, d) = sample(n);
                store.insert(k, d).unwrap();
            }
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 5);
        assert_eq!(store.skipped_lines(), 0);
        let (k, d) = sample(3);
        assert_eq!(store.get(&k), Some(&d));
    }

    #[test]
    fn duplicate_insert_is_a_noop_and_update_supersedes() {
        let tmp = TempDir::new("journal-dup");
        let path = tmp.0.join("results.ndjson");
        let mut store = ResultStore::open(&path).unwrap();
        let (k, d) = sample(1);
        store.insert(k.clone(), d.clone()).unwrap();
        store.insert(k.clone(), d.clone()).unwrap();
        assert_eq!(
            store.file_records(),
            1,
            "identical re-insert must not append"
        );
        let mut d2 = d.clone();
        d2.text.push_str("\nrevised");
        store.insert(k.clone(), d2.clone()).unwrap();
        assert_eq!(store.file_records(), 2);
        drop(store);
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.get(&k).unwrap().text, d2.text, "last record wins");
    }

    #[test]
    fn torn_final_line_is_skipped_and_healed() {
        let tmp = TempDir::new("journal-torn");
        let path = tmp.0.join("results.ndjson");
        {
            let mut store = ResultStore::open(&path).unwrap();
            for n in 0..3 {
                let (k, d) = sample(n);
                store.insert(k, d).unwrap();
            }
        }
        // Simulate a crash mid-append: truncate the file inside the last
        // record.
        let raw = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 25]).unwrap();

        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2, "intact records survive");
        // The open healed the file: a reopen sees a clean journal.
        drop(store);
        let store = ResultStore::open(&path).unwrap();
        assert_eq!((store.len(), store.skipped_lines()), (2, 0));
        assert_eq!(store.file_records(), 2);
    }

    #[test]
    fn torn_tail_splitting_a_utf8_character_is_not_fatal() {
        let tmp = TempDir::new("journal-torn-utf8");
        let path = tmp.0.join("results.ndjson");
        {
            let mut store = ResultStore::open(&path).unwrap();
            let (k, d) = sample(0);
            store.insert(k, d).unwrap();
            let (k, d) = sample(1); // sample text ends "— ✓" (multi-byte)
            store.insert(k, d).unwrap();
        }
        // Truncate one byte into the last "✓" (e2 9c 93), so the file is
        // no longer valid UTF-8 as a whole.
        let raw = std::fs::read(&path).unwrap();
        let check = [0xe2u8, 0x9c, 0x93];
        let cut = (0..raw.len() - 2)
            .rev()
            .find(|&i| raw[i..i + 3] == check)
            .expect("sample text contains a ✓")
            + 1;
        assert!(
            std::str::from_utf8(&raw[..cut]).is_err(),
            "cut must split a char"
        );
        std::fs::write(&path, &raw[..cut]).unwrap();

        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 1, "the intact record must survive");
        let (k, d) = sample(0);
        assert_eq!(store.get(&k), Some(&d));
        // Healed: reopen sees a clean single-record journal.
        drop(store);
        let store = ResultStore::open(&path).unwrap();
        assert_eq!((store.len(), store.skipped_lines()), (1, 0));
    }

    #[test]
    fn corrupt_interior_line_is_skipped_not_fatal() {
        let tmp = TempDir::new("journal-mid");
        let path = tmp.0.join("results.ndjson");
        {
            let mut store = ResultStore::open(&path).unwrap();
            let (k, d) = sample(0);
            store.insert(k, d).unwrap();
            let (k, d) = sample(1);
            store.insert(k, d).unwrap();
        }
        let raw = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = raw.lines().collect();
        lines.insert(1, "{this is not json");
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        let (k, d) = sample(0);
        assert_eq!(store.get(&k), Some(&d));
    }

    #[test]
    fn unknown_version_records_are_ignored() {
        let tmp = TempDir::new("journal-ver");
        let path = tmp.0.join("results.ndjson");
        std::fs::write(&path, "{\"v\": 99, \"trace\": \"0x1\"}\n").unwrap();
        let store = ResultStore::open(&path).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn compaction_collapses_superseded_records() {
        let tmp = TempDir::new("journal-compact");
        let path = tmp.0.join("results.ndjson");
        let mut store = ResultStore::open(&path).unwrap();
        let (k, d) = sample(0);
        // Supersede the same key many times; each revision appends.
        for rev in 0..COMPACT_MIN_RECORDS + 4 {
            let mut d = d.clone();
            d.text = format!("rev {rev}");
            store.insert(k.clone(), d).unwrap();
        }
        // 68 superseding appends, but auto-compaction keeps the file
        // bounded: it can never exceed the compaction threshold.
        assert!(
            store.file_records() <= COMPACT_MIN_RECORDS,
            "auto-compaction must bound journal growth, file has {} records",
            store.file_records()
        );
        assert!(
            store.file_records() < COMPACT_MIN_RECORDS + 4,
            "compaction must actually have run"
        );
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(&k).unwrap().text,
            format!("rev {}", COMPACT_MIN_RECORDS + 3)
        );
    }

    #[test]
    fn result_key_fingerprint_is_stable_and_distinct() {
        let (a, _) = sample(0);
        let (b, _) = sample(1);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
