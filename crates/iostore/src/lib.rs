#![warn(missing_docs)]
//! Persistent state layer for the diagnosis pipeline.
//!
//! The pipeline (preprocess → RAG per-fragment diagnosis → tree merge) is
//! deterministic end-to-end, which makes both of its expensive artifacts
//! perfectly cacheable across process lifetimes:
//!
//! - **Diagnosis results** ([`ResultStore`]): an append-only NDJSON journal
//!   of `(trace fingerprint × model × config) → Diagnosis` records. Loaded
//!   on start, read through by the in-memory LRU, compacted when duplicate
//!   records accumulate, and tolerant of a torn final line (a crash mid
//!   append skips the partial record instead of refusing to start).
//! - **The knowledge index** ([`snapshot`]): a versioned snapshot of the
//!   `VectorIndex` built over the 66-document expert corpus. The header
//!   carries a format version, the embedder configuration, the chunking
//!   hyper-parameters, and a corpus content hash, so a stale or mismatched
//!   snapshot is detected and rebuilt rather than silently served.
//!
//! Everything is plain newline-delimited JSON so state directories can be
//! inspected (and repaired) with standard text tools. Floating-point data
//! — embedding vectors — is stored as bit-exact hex, never decimal text,
//! so a snapshot-loaded index retrieves (and therefore diagnoses)
//! byte-identically to a freshly built one.

pub mod journal;
pub mod snapshot;

pub use journal::{ResultKey, ResultStore};
pub use snapshot::{load_index, save_index, IndexSpec, SnapshotError, SNAPSHOT_FORMAT_VERSION};

use std::io;
use std::path::{Path, PathBuf};

/// File name of the result journal inside a state directory.
pub const RESULTS_FILE: &str = "results.ndjson";
/// File name of the knowledge-index snapshot inside a state directory.
pub const INDEX_FILE: &str = "index.snap";

/// A daemon state directory: one directory holding the result journal and
/// the knowledge-index snapshot.
///
/// Layout:
///
/// ```text
/// <state-dir>/
///   results.ndjson   append-only (trace × model × config) → diagnosis journal
///   index.snap       versioned VectorIndex snapshot (header + entry lines)
/// ```
#[derive(Debug, Clone)]
pub struct StateDir {
    root: PathBuf,
}

impl StateDir {
    /// Open (creating if necessary) a state directory.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(StateDir { root })
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the knowledge-index snapshot.
    pub fn index_path(&self) -> PathBuf {
        self.root.join(INDEX_FILE)
    }

    /// Path of the result journal.
    pub fn results_path(&self) -> PathBuf {
        self.root.join(RESULTS_FILE)
    }

    /// Open the result journal, loading every intact record.
    pub fn open_results(&self) -> io::Result<ResultStore> {
        ResultStore::open(self.results_path())
    }
}

/// Stable FNV-1a over a byte stream, shared by the journal and snapshot
/// fingerprints (matches `simllm::rng::stable_hash` for `&str` input).
pub(crate) fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= *b as u64;
        *h = h.wrapping_mul(0x1000_0000_01b3);
    }
}

/// FNV-1a offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, self-cleaning temp directory (no tempfile crate offline).
    pub struct TempDir(pub PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("iostore-{tag}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_dir_paths_and_creation() {
        let tmp = testutil::TempDir::new("statedir");
        let nested = tmp.0.join("a/b");
        let state = StateDir::new(&nested).unwrap();
        assert!(nested.is_dir());
        assert_eq!(state.index_path(), nested.join(INDEX_FILE));
        assert_eq!(state.results_path(), nested.join(RESULTS_FILE));
        assert!(state.open_results().unwrap().is_empty());
    }

    #[test]
    fn fnv_matches_simllm_stable_hash() {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, b"collective buffering");
        assert_eq!(h, simllm::rng::stable_hash("collective buffering"));
    }
}
