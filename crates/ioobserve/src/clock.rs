//! Time sources for the tracer.
//!
//! Span timestamps flow through the [`Clock`] trait rather than calling
//! [`std::time::Instant::now`] directly, for one reason: tests. A
//! [`VirtualClock`] makes span start/end nanoseconds *exact*, so nesting
//! and ordering assertions are deterministic instead of sleep-and-hope.
//! Production tracers use [`MonotonicClock`], whose zero is the tracer's
//! construction instant — timestamps are ns-since-tracer-start, which is
//! all a single-process latency breakdown needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's epoch (its construction, for the
    /// monotonic clock; whatever the test set, for the virtual one).
    fn now_ns(&self) -> u64;
}

/// Real time: nanoseconds since the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose zero is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // A u64 of nanoseconds covers ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Test time: advances only when told to, shareable across threads.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at 0 ns.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Move time forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now_ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Set the absolute time.
    pub fn set(&self, ns: u64) {
        self.now_ns.store(ns, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

impl Clock for std::sync::Arc<VirtualClock> {
    fn now_ns(&self) -> u64 {
        self.as_ref().now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_advances_and_sets() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(250);
        assert_eq!(c.now_ns(), 250);
        c.advance(50);
        assert_eq!(c.now_ns(), 300);
        c.set(7);
        assert_eq!(c.now_ns(), 7);
    }
}
