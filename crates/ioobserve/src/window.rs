//! Rolling time-windowed metrics: a ring of slices rotated on a
//! [`Clock`] tick, merged on read.
//!
//! Lifetime histograms answer "what has this process seen since it
//! started", which is the wrong question for operating a service — a
//! latency regression five minutes ago is invisible under hours of good
//! samples. A [`WindowSpec`] attaches a ring of short **slices** (2.5 s
//! by default) to an instrument; each sample lands in both the lifetime
//! instrument and the slice covering "now", and a windowed read merges
//! the slices younger than the window into one summary via
//! [`Histogram::merge_into`]. No timers, no background threads: slices
//! are reclaimed lazily by the next writer that lands on an expired one
//! (epoch CAS), so an idle instrument costs nothing.
//!
//! # Precision and races
//!
//! A window of W ns with S-ns slices covers between W and W+S ns of
//! samples depending on where "now" falls inside the current slice —
//! windowed quantiles are operational signals, not ledgers. Likewise a
//! reader may observe a slice mid-reset and miss (or double-see) a
//! handful of samples; both are bounded by one slice and irrelevant at
//! monitoring timescales. Lifetime values are never affected.
//!
//! # Memory
//!
//! Each windowed histogram carries `slices × ~8 KiB` of buckets — with
//! the standard spec (2.5 s slices, 60 s max window, 25 slices) that is
//! ~200 KiB per histogram, paid once per named instrument.

use crate::clock::Clock;
use crate::metrics::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slice width for [`WindowSpec::standard`]: 2.5 s.
pub const DEFAULT_SLICE_NS: u64 = 2_500_000_000;
/// Windows for [`WindowSpec::standard`]: last 10 s and last 60 s.
pub const DEFAULT_WINDOWS_NS: [u64; 2] = [10_000_000_000, 60_000_000_000];

/// Epoch value marking a slice that has never been written.
const EMPTY_EPOCH: u64 = u64::MAX;

/// How an instrument's ring of slices is laid out: the clock that dates
/// samples, the slice width, and the windows offered on read.
#[derive(Clone)]
pub struct WindowSpec {
    clock: Arc<dyn Clock>,
    slice_ns: u64,
    windows_ns: Vec<u64>,
}

impl std::fmt::Debug for WindowSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowSpec")
            .field("slice_ns", &self.slice_ns)
            .field("windows_ns", &self.windows_ns)
            .finish()
    }
}

impl WindowSpec {
    /// A spec with explicit slice width and windows. Windows are sorted,
    /// deduplicated, and each is at least one slice wide.
    ///
    /// # Panics
    ///
    /// If `slice_ns` is 0 or `windows_ns` is empty.
    pub fn new(clock: Arc<dyn Clock>, slice_ns: u64, windows_ns: &[u64]) -> WindowSpec {
        assert!(slice_ns > 0, "slice width must be positive");
        assert!(!windows_ns.is_empty(), "at least one window required");
        let mut windows: Vec<u64> = windows_ns.iter().map(|&w| w.max(slice_ns)).collect();
        windows.sort_unstable();
        windows.dedup();
        WindowSpec {
            clock,
            slice_ns,
            windows_ns: windows,
        }
    }

    /// The standard service spec: 2.5 s slices, last-10s and last-60s
    /// windows (~25 slices).
    pub fn standard(clock: Arc<dyn Clock>) -> WindowSpec {
        WindowSpec::new(clock, DEFAULT_SLICE_NS, &DEFAULT_WINDOWS_NS)
    }

    /// The windows offered on read, ascending.
    pub fn windows_ns(&self) -> &[u64] {
        &self.windows_ns
    }

    /// Slice width.
    pub fn slice_ns(&self) -> u64 {
        self.slice_ns
    }

    /// Number of ring slices: enough to cover the largest window plus
    /// the partially-filled current slice.
    fn slice_count(&self) -> usize {
        let max = *self.windows_ns.last().expect("spec has windows");
        (max.div_ceil(self.slice_ns) + 1) as usize
    }

    /// The slice index of "now" on the spec's clock.
    fn epoch(&self) -> u64 {
        self.clock.now_ns() / self.slice_ns
    }
}

/// Claim the ring slot for `epoch`, lazily resetting it if it still
/// holds an older (or never-written) epoch. Returns whether the slot now
/// belongs to `epoch` — a lost CAS means another writer claimed it
/// (same epoch: fine, record anyway) so the answer is still yes.
fn claim_epoch(slot: &AtomicU64, epoch: u64, reset: impl FnOnce()) {
    let cur = slot.load(Ordering::Acquire);
    if cur != epoch
        && slot
            .compare_exchange(cur, epoch, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    {
        // Winner resets the recycled slice. A racing writer that already
        // loaded the new epoch can slip a sample in before the reset
        // finishes and lose it — bounded, monitoring-grade.
        reset();
    }
}

/// Is `epoch` within `window_ns` of `now_epoch`? Excludes slices from
/// the future (the clock jumped backwards) and never-written slices.
fn in_window(epoch: u64, now_epoch: u64, window_ns: u64, slice_ns: u64) -> bool {
    epoch != EMPTY_EPOCH && epoch <= now_epoch && now_epoch - epoch < window_ns.div_ceil(slice_ns)
}

/// Ring of per-slice histograms behind a windowed [`Histogram`].
#[derive(Debug)]
pub(crate) struct HistWindow {
    spec: WindowSpec,
    slices: Vec<HistSlice>,
}

#[derive(Debug)]
struct HistSlice {
    epoch: AtomicU64,
    hist: Histogram,
}

impl HistWindow {
    pub(crate) fn new(spec: WindowSpec) -> HistWindow {
        let slices = (0..spec.slice_count())
            .map(|_| HistSlice {
                epoch: AtomicU64::new(EMPTY_EPOCH),
                hist: Histogram::default(),
            })
            .collect();
        HistWindow { spec, slices }
    }

    pub(crate) fn record(&self, v: u64) {
        let epoch = self.spec.epoch();
        let slice = &self.slices[(epoch % self.slices.len() as u64) as usize];
        claim_epoch(&slice.epoch, epoch, || slice.hist.reset());
        slice.hist.record(v);
    }

    /// Merge every slice younger than `window_ns` into one summary.
    pub(crate) fn merged(&self, window_ns: u64) -> HistogramSnapshot {
        let now_epoch = self.spec.epoch();
        let out = Histogram::default();
        for slice in &self.slices {
            let e = slice.epoch.load(Ordering::Acquire);
            if in_window(e, now_epoch, window_ns, self.spec.slice_ns) {
                slice.hist.merge_into(&out);
            }
        }
        out.snapshot()
    }

    /// One merged summary per spec window, in [`WindowSpec::windows_ns`]
    /// order.
    pub(crate) fn snapshots(&self) -> Vec<HistogramSnapshot> {
        self.spec
            .windows_ns
            .iter()
            .map(|&w| self.merged(w))
            .collect()
    }
}

/// Ring of per-slice totals behind a windowed
/// [`Counter`](crate::metrics::Counter) — the source of rates
/// (events in the last W ns / W).
#[derive(Debug)]
pub(crate) struct CountWindow {
    spec: WindowSpec,
    slices: Vec<CountSlice>,
}

#[derive(Debug)]
struct CountSlice {
    epoch: AtomicU64,
    value: AtomicU64,
}

impl CountWindow {
    pub(crate) fn new(spec: WindowSpec) -> CountWindow {
        let slices = (0..spec.slice_count())
            .map(|_| CountSlice {
                epoch: AtomicU64::new(EMPTY_EPOCH),
                value: AtomicU64::new(0),
            })
            .collect();
        CountWindow { spec, slices }
    }

    pub(crate) fn add(&self, n: u64) {
        let epoch = self.spec.epoch();
        let slice = &self.slices[(epoch % self.slices.len() as u64) as usize];
        claim_epoch(&slice.epoch, epoch, || {
            slice.value.store(0, Ordering::Release)
        });
        slice.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Events recorded within the last `window_ns`.
    pub(crate) fn total(&self, window_ns: u64) -> u64 {
        let now_epoch = self.spec.epoch();
        self.slices
            .iter()
            .filter(|s| {
                in_window(
                    s.epoch.load(Ordering::Acquire),
                    now_epoch,
                    window_ns,
                    self.spec.slice_ns,
                )
            })
            .map(|s| s.value.load(Ordering::Relaxed))
            .sum()
    }

    /// One total per spec window, in [`WindowSpec::windows_ns`] order.
    pub(crate) fn totals(&self) -> Vec<u64> {
        self.spec
            .windows_ns
            .iter()
            .map(|&w| self.total(w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn spec(clock: &Arc<VirtualClock>) -> WindowSpec {
        // 1 s slices, 4 s and 10 s windows — small enough to reason about.
        WindowSpec::new(
            Arc::clone(clock) as Arc<dyn Clock>,
            1_000_000_000,
            &[4_000_000_000, 10_000_000_000],
        )
    }

    #[test]
    fn spec_normalizes_windows() {
        let clock: Arc<VirtualClock> = Arc::default();
        let s = WindowSpec::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            1_000,
            &[5_000, 2_000, 5_000, 10],
        );
        // Sorted, deduped, sub-slice window rounded up to one slice.
        assert_eq!(s.windows_ns(), &[1_000, 2_000, 5_000]);
        assert_eq!(s.slice_count(), 6);
    }

    #[test]
    fn samples_fall_out_of_the_window_as_slices_expire() {
        let clock = Arc::new(VirtualClock::new());
        let w = HistWindow::new(spec(&clock));
        w.record(100);
        clock.advance(1_000_000_000);
        w.record(200);
        assert_eq!(w.merged(4_000_000_000).count, 2);
        // Advance until the first sample's slice (epoch 0) leaves the 4 s
        // window but stays inside the 10 s one.
        clock.advance(3_000_000_000); // now at epoch 4
        let short = w.merged(4_000_000_000);
        assert_eq!(short.count, 1);
        assert_eq!(short.min, 200);
        assert_eq!(w.merged(10_000_000_000).count, 2);
        // And past the long window too (the last sample landed at t=1s,
        // so it ages out once the clock passes t=11s).
        clock.advance(7_000_000_000); // epoch 11
        assert_eq!(w.merged(10_000_000_000).count, 0);
    }

    #[test]
    fn ring_slots_are_recycled_for_new_epochs() {
        let clock = Arc::new(VirtualClock::new());
        let w = HistWindow::new(spec(&clock));
        // The ring has 11 slices; land on the same slot twice.
        w.record(1);
        clock.advance(11_000_000_000);
        w.record(2);
        let snap = w.merged(10_000_000_000);
        assert_eq!(snap.count, 1, "old occupant of the slot was reset");
        assert_eq!(snap.min, 2);
    }

    #[test]
    fn backward_clock_jump_excludes_future_slices() {
        let clock = Arc::new(VirtualClock::new());
        let w = HistWindow::new(spec(&clock));
        clock.set(5_000_000_000);
        w.record(500);
        // Clock jumps backwards: the epoch-5 slice is now "the future"
        // and must not pollute the window.
        clock.set(1_000_000_000);
        w.record(100);
        let snap = w.merged(10_000_000_000);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min, 100);
        // Jumping forward again brings the old slice back into view —
        // it was never erased, only excluded.
        clock.set(5_500_000_000);
        assert_eq!(w.merged(10_000_000_000).count, 2);
    }

    #[test]
    fn empty_window_reports_zero_count_not_fake_quantiles() {
        let clock = Arc::new(VirtualClock::new());
        let w = HistWindow::new(spec(&clock));
        let snap = w.merged(4_000_000_000);
        assert_eq!(
            (snap.count, snap.p50, snap.p999, snap.min, snap.max),
            (0, 0, 0, 0, 0),
            "renderers key off count == 0 to print '-'"
        );
    }

    #[test]
    fn snapshots_align_with_spec_windows() {
        let clock = Arc::new(VirtualClock::new());
        let w = HistWindow::new(spec(&clock));
        w.record(10);
        clock.advance(5_000_000_000);
        w.record(20);
        let snaps = w.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].count, 1, "4 s window sees only the new sample");
        assert_eq!(snaps[1].count, 2, "10 s window sees both");
    }

    #[test]
    fn count_window_rates_and_expiry() {
        let clock = Arc::new(VirtualClock::new());
        let c = CountWindow::new(spec(&clock));
        c.add(3);
        clock.advance(2_000_000_000);
        c.add(2);
        assert_eq!(c.total(4_000_000_000), 5);
        clock.advance(3_000_000_000);
        assert_eq!(c.total(4_000_000_000), 2, "first burst expired");
        assert_eq!(c.totals(), vec![2, 5]);
        clock.advance(20_000_000_000);
        assert_eq!(c.totals(), vec![0, 0]);
    }

    #[test]
    fn windowed_merge_matches_direct_histogram() {
        // Everything recorded within one window must summarize exactly
        // like a plain histogram fed the same samples.
        let clock = Arc::new(VirtualClock::new());
        let w = HistWindow::new(spec(&clock));
        let direct = Histogram::default();
        for i in 0..500u64 {
            let v = i * 37 % 9_001;
            w.record(v);
            direct.record(v);
            if i % 100 == 99 {
                clock.advance(500_000_000);
            }
        }
        assert_eq!(w.merged(10_000_000_000), direct.snapshot());
    }
}
